PYTHON ?= python
WORKERS ?= 2
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-parallel bench-parallel-quick chaos-quick fuzz-quick obs-quick verify-quick paper-benches

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_scaling.py

# Multi-host smoke: the same campaign dispatched to a localhost
# `python -m repro.parallel.worker` agent over TCP (SocketTransport);
# exits 1 on serial-vs-socket digest drift or a crash-isolation
# violation across the socket (docs/PARALLELISM.md, "Multi-host
# dispatch").
bench-parallel-quick:
	$(PYTHON) benchmarks/bench_parallel_scaling.py --quick-socket --workers $(WORKERS)

# Determinism smoke: same-seed replay + fast/slow-path digest parity,
# plus the batched datapath gates — ingest_batch wire/counter/stat
# parity vs scalar and farm-level batch-window determinism
# (docs/PERFORMANCE.md).  Exits 1 on any drift.
bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick
	$(PYTHON) benchmarks/bench_parallel_scaling.py --quick --workers $(WORKERS)

# Fault-matrix smoke: one CS crash, one shim partition, one CS hang
# scenario over resilient farm runs, asserting zero unverdicted-flow
# leaks and a same-cell determinism replay (docs/RESILIENCE.md).
chaos-quick:
	$(PYTHON) -m repro.experiments.fault_matrix --quick --workers $(WORKERS)

# Fuzz smoke: fixed-seed hostile inputs through every parser (twice,
# asserting a byte-identical corpus digest) and through a live farm
# trunk under both isolate and fail-stop malice policies, compared
# against the digests tracked in FUZZ_quick.json (docs/HARDENING.md).
fuzz-quick:
	$(PYTHON) -m repro.fuzz --quick

# Journal overhead gate: with the flight recorder off, farm digests
# must stay byte-identical to the ones tracked in BENCH_hotpath.json;
# with it on, digests are unchanged (observing never perturbs), the
# journal digest is seed-stable, and fast-path forwarding stays within
# 10% of the journal-off rate (docs/OBSERVABILITY.md).
obs-quick:
	$(PYTHON) benchmarks/bench_obs_overhead.py --quick

# Isolation-certificate gate: certify the golden-seed farm twice
# (exhaustive reachability over the compiled decision surface must be
# CONTAINED with a byte-stable certificate digest) plus one
# fault-matrix scenario, cross-validated against its own runtime
# journal and flow tables (docs/VERIFICATION.md).
verify-quick:
	$(PYTHON) -m repro.verify quick

paper-benches:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
