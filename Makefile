PYTHON ?= python
WORKERS ?= 2
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-parallel paper-benches

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py

bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_scaling.py

bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick
	$(PYTHON) benchmarks/bench_parallel_scaling.py --quick --workers $(WORKERS)

paper-benches:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
