PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick paper-benches

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py

bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick

paper-benches:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
