#!/usr/bin/env python3
"""Quickstart: build a farm, contain a specimen, read the evidence.

This walks the core API end to end:

1. Assemble a :class:`repro.Farm` (gateway, backbone, management net).
2. Create a subfarm with a catch-all sink.
3. Boot an inmate whose "malware" phones home over HTTP.
4. Contain it with the default-deny-to-sink development posture.
5. Inspect what the sink caught, then iterate the policy to open just
   the C&C lifeline — the §3 methodology in miniature.

Run:  python examples/quickstart.py
"""

from repro import Farm, FarmConfig
from repro.core.policy import ContainmentPolicy, ReflectAll
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.services.dhcp import DhcpClient

CNC_IP = "198.51.100.7"


def cnc_server(host):
    """A command-and-control server in the simulated outside world."""
    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for request in parser.feed(data):
                c.send(HttpResponse(
                    200, body=b'{"cmd": "sleep", "interval": 60}'
                ).to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(80, on_accept)


def phone_home_image(log):
    """An inmate image: DHCP, then periodically fetch C&C commands."""
    def image(host):
        def fetch(configured_host):
            conn = configured_host.tcp.connect(IPv4Address(CNC_IP), 80)
            parser = HttpParser("response")

            def on_data(c, data):
                for response in parser.feed(data):
                    log.append(("cnc-response", response.body))
                    c.close()

            conn.on_established = lambda c: c.send(
                HttpRequest("GET", "/gate.php?id=bot1",
                            {"Host": "cnc.example"}).to_bytes())
            conn.on_data = on_data
            configured_host.sim.schedule(30.0, lambda: fetch(configured_host))

        DhcpClient(host, on_configured=fetch).start()

    return image


def main() -> None:
    print(__doc__)

    # --- Phase 1: default-deny development posture ------------------
    farm = Farm(FarmConfig(seed=1))
    subfarm = farm.create_subfarm("development")
    sink = subfarm.add_catchall_sink()
    cnc_server(farm.add_external_host("cnc", CNC_IP))

    log = []
    subfarm.create_inmate(image_factory=phone_home_image(log),
                          policy=ReflectAll())
    farm.run(until=300)

    print("Phase 1 — everything reflected to the sink:")
    print(f"  sink connections : {sink.connections_accepted}")
    for port, count in sink.by_destination_port().items():
        payloads = sink.payloads_for_port(port)
        first = payloads[0].splitlines()[0] if payloads and payloads[0] \
            else b"(empty)"
        print(f"  port {port}: {count} flows, first payload {first!r}")
    print(f"  C&C responses the bot saw: {len(log)} (contained!)")

    # --- Phase 2: whitelist exactly the C&C shape -------------------
    class GatePolicy(ContainmentPolicy):
        """Forward only GET /gate.php — the observed C&C shape."""

        def decide(self, ctx):
            if ctx.flow.resp_port == 80:
                return None  # decide on content
            return self.reflect(ctx, "sink")

        def decide_content(self, ctx, data):
            if data.startswith(b"GET /gate.php"):
                return self.forward(ctx, annotation="C&C lifeline")
            if len(data) >= 16:
                return self.reflect(ctx, "sink")
            return None

    farm2 = Farm(FarmConfig(seed=1))
    subfarm2 = farm2.create_subfarm("deployment")
    subfarm2.add_catchall_sink()
    cnc_server(farm2.add_external_host("cnc", CNC_IP))
    log2 = []
    subfarm2.create_inmate(image_factory=phone_home_image(log2),
                           policy=GatePolicy())
    farm2.run(until=300)

    print("\nPhase 2 — C&C lifeline whitelisted:")
    print(f"  C&C responses the bot saw: {len(log2)}")
    print(f"  first response           : {log2[0][1]!r}" if log2 else "  -")
    counts = subfarm2.containment_server.verdict_counts
    print(f"  verdicts issued          : {counts}")
    print("\nDone: same specimen, contained first, understood, then "
          "granted exactly its C&C lifeline.")


if __name__ == "__main__":
    main()
