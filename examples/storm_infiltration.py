#!/usr/bin/env python3
"""Storm infiltration and the 'unexpected visitors' (§7.1).

Runs the 2008 scenario both ways: with the paper's tight policy
(reachability + HTTP C&C forwarded, everything else reflected) and
with the loose counterfactual that trusted Storm proxy bots to be
harmless.  The upstream botmaster pushes SOCKS-framed FTP
iframe-injection jobs through the bots either way; only the posture
decides whether a small business's website gets defaced.

Run:  python examples/storm_infiltration.py
"""

from repro.experiments.storm_infiltration import run_both


def main() -> None:
    print(__doc__)
    results = run_both(duration=900)

    for posture, result in results.items():
        print(f"Posture: {posture}")
        print(f"  overlay connections accepted : "
              f"{result.overlay_connections}")
        print(f"  SOCKS jobs executed by bots  : {result.socks_jobs}")
        print(f"  FTP attempts caught at sink  : "
              f"{result.ftp_attempts_at_sink}")
        print(f"  injection jobs that succeeded: {result.jobs_succeeded}"
              f" / {result.jobs_attempted}")
        print(f"  victim site defaced          : "
              f"{'YES' if result.site_defaced else 'no'}")
        print()

    tight = results["tight"]
    print("With tight containment, the analyst learns the same amount —")
    print(f"the sink recorded {tight.ftp_attempts_at_sink} FTP jobs, "
          "revealing the iframe-injection")
    print("capability nobody believed Storm proxies had — while the "
          "victim site survived.")


if __name__ == "__main__":
    main()
