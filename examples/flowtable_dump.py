#!/usr/bin/env python3
"""Match-action flow tables: dump the live rules of a running farm.

Every subfarm router compiles post-verdict flows into an exact-match
flow table (``docs/PERFORMANCE.md``).  Because the rules are pure data
— not closures — the table can be inspected like a switch's flow dump:

1. Build a farm with an idle timeout on the tables, so rules age out
   on the virtual clock.
2. Run one inmate through a talk / go-quiet / talk-again script: the
   quiet gap outlives the idle timeout, so its rules are evicted and
   then re-installed when the conversation resumes.
3. Print each table's statistics and a per-entry dump (match, action,
   hit counts, timeouts), the way ``ovs-ofctl dump-flows`` would.

Run:  python examples/flowtable_dump.py
"""

from repro import Farm, FarmConfig
from repro.core.policy import AllowAll
from repro.net.addresses import IPv4Address
from repro.services.dhcp import DhcpClient

ECHO_IP = "203.0.113.80"
ECHO_PORT = 7


def echo_server(host):
    def on_accept(conn):
        conn.on_data = lambda c, data: c.send(data)
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(ECHO_PORT, on_accept)


def chatty_image(host):
    """Inmate image: one long-lived connection that talks, goes quiet
    long enough for its flow-table rules to idle out, then resumes."""
    def start(configured_host):
        def connect():
            conn = configured_host.tcp.connect(
                IPv4Address(ECHO_IP), ECHO_PORT)

            def burst(tag, count):
                for index in range(count):
                    configured_host.sim.schedule(
                        index * 0.5, conn.send, b"%s-%d" % (tag, index))

            conn.on_established = lambda c: burst(b"early", 8)
            # Quiet for ~50s after the early burst: with a 20s idle
            # timeout the rules age out mid-conversation, then
            # re-install when this resumes.
            configured_host.sim.schedule(55.0, burst, b"late", 8)

        configured_host.sim.schedule(1.0, connect)

    DhcpClient(host, on_configured=start).start()


def dump(subfarm):
    table = subfarm.router.flowtable
    stats = table.stats()
    timeouts = stats["timeout_evictions"]
    print(f"\nSubfarm '{subfarm.name}' flow table:")
    print(f"  occupancy={stats['occupancy']} hits={stats['hits']} "
          f"misses={stats['misses']} installs={stats['installs']}")
    print(f"  evictions={stats['evictions']} "
          f"idle timeouts={timeouts['idle']} "
          f"hard timeouts={timeouts['hard']}")
    for entry in table.snapshot():
        match = entry["match"]
        where = (f"{IPv4Address(match['src'])}:{match['sport']} -> "
                 f"{IPv4Address(match['dst'])}:{match['dport']}")
        idle = entry["idle_timeout"]
        hard = entry["hard_expires_at"]
        print(f"    {entry['action']:<9} vlan={entry['vlan']} "
              f"verdict={entry['verdict']:<8} hits={entry['hits']:<4} "
              f"emit={entry['emit']:<8} {where}")
        print(f"      installed_at={entry['installed_at']:.3f} "
              f"idle_timeout={'-' if idle is None else idle} "
              f"hard_expires_at="
              f"{'-' if hard is None else f'{hard:.3f}'}")


def main():
    farm = Farm(FarmConfig(seed=11, flowtable_idle_timeout=20.0))
    sub = farm.create_subfarm("dump-demo")
    sub.set_default_policy(AllowAll())
    sub.add_catchall_sink()
    echo_server(farm.add_external_host("echo", ECHO_IP))
    sub.create_inmate(image_factory=chatty_image)

    # Mid-run dump: the early burst's rules are live.
    farm.run(until=40.0)
    print("t=40: after the early burst")
    dump(sub)

    # Past the quiet gap: the idle timeout evicted, the late burst
    # re-missed and re-installed fresh rules.
    farm.run(until=95.0)
    print("\nt=95: after idling out and resuming")
    dump(sub)


if __name__ == "__main__":
    main()
