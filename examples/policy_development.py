#!/usr/bin/env python3
"""Iterative containment development (§3), narrated.

Watch the default-deny loop converge for a family of your choice:
each round executes the specimen against the sink, "the analyst"
inspects what it tried, and exactly one narrow traffic shape gets
whitelisted — until the C&C lifeline is open and the harvest flows,
with zero harm escaping at any point.

Run:  python examples/policy_development.py [grum|rustock|megad]
"""

import sys

from repro.experiments.policy_iteration import develop_policy


def main() -> None:
    print(__doc__)
    family = sys.argv[1] if len(sys.argv) > 1 else "rustock"
    print(f"Developing a containment policy for: {family}\n")

    history = develop_policy(family, duration=400)
    for outcome in history:
        print(f"Iteration {outcome.iteration} "
              f"(whitelist rules so far: {len(outcome.rules)})")
        print(f"  specimen C&C fetches : {outcome.cnc_fetches}")
        print(f"  spam harvested       : {outcome.spam_harvested}")
        print(f"  harm escaped outside : {outcome.harm_outside}")
        if outcome.sink_classes:
            print("  sink saw (the analyst's view):")
            for port, token, count in outcome.sink_classes[:4]:
                print(f"    {count:>4} flows to port {port}: {token!r}")
        if outcome.fully_alive:
            print("  -> specimen fully alive under containment; done.")
        elif outcome.new_rule is not None:
            rule = outcome.new_rule
            print(f"  -> whitelisting port {rule.port} "
                  f"shape {rule.token!r}")
        print()

    final = history[-1]
    print(f"Converged after {len(history)} iterations with "
          f"{len(final.rules) + (0 if final.fully_alive else 1)} rules; "
          f"harm escaped across ALL iterations: "
          f"{sum(h.harm_outside for h in history)}")


if __name__ == "__main__":
    main()
