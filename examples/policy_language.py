#!/usr/bin/env python3
"""The containment policy language and its verification tool-chain.

Both are things the paper asked for (§8): a domain-specific language
("like in Bro") instead of raw Python policies, and "a traffic
generation tool that can automatically produce test cases for a given
concrete containment policy".

This example writes a Grum policy as a six-line program, enumerates
its decision surface with generated probes, checks safety invariants,
and finally verifies live enforcement against a real farm —
cross-checking the gateway's observable behaviour per flow against
the verdicts the containment server issued.

Run:  python examples/policy_language.py
"""

from repro.analysis.policy_testing import (
    check_invariants,
    enumerate_surface,
    verify_enforcement,
)
from repro.core.dsl import DslPolicy

PROGRAM = """
# Grum containment, as a policy program.
outbound port 25/tcp                         -> reflect smtp_sink
outbound port 80/tcp content ~ "GET /grum/"  -> forward
outbound port 6660-6669/tcp                  -> drop
default                                      -> reflect sink
"""


def main() -> None:
    print(__doc__)
    print("Policy program:")
    for line in PROGRAM.strip().splitlines():
        print(f"    {line}")

    policy = DslPolicy(PROGRAM)

    print("\n1. Decision surface (generated probes):")
    surface = enumerate_surface(policy)
    matrix = surface.verdict_matrix()
    interesting = [
        ("outbound", 25, "smtp-dialogue"),
        ("outbound", 80, "grum-cnc"),
        ("outbound", 80, "http-get"),
        ("outbound", 80, "sql-injection"),
        ("outbound", 6667, "irc-session"),
        ("outbound", 31337, "raw-binary"),
    ]
    for key in interesting:
        direction, port, tag = key
        print(f"    {direction} :{port:<5} {tag:<15} -> {matrix[key]}")
    print(f"    ({len(surface.outcomes)} probes total; "
          f"{len(surface.forwarded())} would leave the farm)")

    print("\n2. Safety invariants:")
    violations = check_invariants(surface)
    if violations:
        for name, outcome, message in violations:
            print(f"    VIOLATION [{name}] {outcome.probe}: {message}")
    else:
        print("    no violations: SMTP never escapes, nothing "
              "unrecognized is forwarded")

    print("\n3. Live enforcement verification (real farm):")
    summary, mismatches = verify_enforcement(lambda: DslPolicy(PROGRAM))
    print(f"    verdicts issued      : {summary['verdicts']}")
    print(f"    reached real network : ports {summary['witness_ports']}")
    print(f"    landed in sink       : ports {summary['sink_ports']}")
    print(f"    smtp sink sessions   : {summary['smtp_sink_sessions']}")
    if mismatches:
        for mismatch in mismatches:
            print(f"    MISMATCH: {mismatch}")
    else:
        print("    gateway enforcement matches every verdict, per flow")

    print("\nRule coverage after the live run:")
    for line, hits in policy.coverage():
        print(f"    {hits:>4}  {line}")


if __name__ == "__main__":
    main()
