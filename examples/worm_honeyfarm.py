#!/usr/bin/env python3
"""Worm honeyfarm: GQ in its original 2006 role (Table 1).

A wild infected host outside scans the farm's globally routable
addresses.  Inbound infection attempts are forwarded to honeypot
inmates; once a worm executes, its own propagation attempts are
redirected to fresh inmates inside the farm — the chain of infections
whose timing is Table 1's incubation period.

Run:  python examples/worm_honeyfarm.py [table-row-index]
"""

import sys

from repro.experiments.worm_capture import run_worm_capture
from repro.malware.worm_table import TABLE_1


def main() -> None:
    print(__doc__)
    index = int(sys.argv[1]) if len(sys.argv) > 1 else 5  # Welchia
    row = TABLE_1[index]
    print(f"Specimen: {row.executable} ({row.label or 'unclassified'})")
    print(f"Paper: {row.conns} connections per infection, "
          f"{row.incubation:.1f}s incubation\n")

    result = run_worm_capture(row, inmates=5, duration=3600, seed=index)

    print("Infection chain:")
    previous = None
    for event in result.events:
        gap = f" (+{event.timestamp - previous:.1f}s)" if previous else ""
        attacker = f" exploited by {event.attacker_ip}" \
            if event.attacker_ip else ""
        print(f"  t={event.timestamp:7.1f}  {event.host_name}"
              f"{attacker}{gap}")
        previous = event.timestamp

    print()
    print(f"Infections observed      : {result.event_count}")
    print(f"Connections per infection: {result.conns_per_infection} "
          f"(paper: {row.conns})")
    mean = result.mean_incubation
    if mean is not None:
        print(f"Measured incubation      : {mean:.1f}s "
              f"(paper: {row.incubation:.1f}s)")
    print(f"Propagations redirected into the farm: {result.redirects}")
    print("\nNo exploit traffic left the farm: the redirect policy kept")
    print("every propagation between honeypots.")


if __name__ == "__main__":
    main()
