#!/usr/bin/env python3
"""Farm telemetry: run a contained fetch, snapshot it, read it back.

This is the worked example behind ``docs/OBSERVABILITY.md``:

1. Build a farm with ``telemetry=True`` — the virtual clock drives
   every timestamp, so the snapshot is deterministic per seed.
2. Let one inmate boot over DHCP and fetch a file through the full
   containment path (bridge -> safety filter -> shim -> verdict).
3. Dump the registry + traces as JSON, then read the snapshot back
   the way an operator would: verdict mix, shim latency quantiles,
   and one flow's span-by-span timeline.

Run:  python examples/telemetry_snapshot.py
"""

import json

from repro import Farm, FarmConfig
from repro.core.policy import AllowAll
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.obs.export import to_json
from repro.services.dhcp import DhcpClient

WEB_IP = "203.0.113.80"


def web_server(host):
    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for _request in parser.feed(data):
                c.send(HttpResponse(200, body=b"PAYLOAD").to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(80, on_accept)


def fetch_image(host):
    """Inmate image: DHCP, then one HTTP fetch of the outside world."""
    def fetch(configured_host):
        def connect():
            conn = configured_host.tcp.connect(IPv4Address(WEB_IP), 80)
            parser = HttpParser("response")
            conn.on_established = lambda c: c.send(
                HttpRequest("GET", "/payload", {"Host": "evil"}).to_bytes())
            conn.on_data = lambda c, d: parser.feed(d)

        configured_host.sim.schedule(1.0, connect)

    DhcpClient(host, on_configured=fetch).start()


def main():
    # -- 1. run a telemetry-enabled farm ------------------------------
    farm = Farm(FarmConfig(seed=7, telemetry=True,
                           telemetry_snapshot_interval=30.0))
    sub = farm.create_subfarm("demo")
    sub.add_catchall_sink()
    web_server(farm.add_external_host("webserver", WEB_IP))
    sub.create_inmate(image_factory=fetch_image, policy=AllowAll())
    farm.run(until=60)

    # -- 2. write the snapshot exactly as a tool would ----------------
    text = to_json(farm.telemetry, indent=2)
    snap = json.loads(text)
    print(f"snapshot: schema={snap['schema']} "
          f"t={snap['time']} ({len(text)} bytes)")

    # -- 3. read it back ----------------------------------------------
    print("\nVerdict mix (router.flows.verdict):")
    for key, count in sorted(snap["counters"].items()):
        if key.startswith("router.flows.verdict"):
            print(f"  {key} = {count:.0f}")

    print("\nShim latency (router.shim.rtt):")
    for key, hist in sorted(snap["histograms"].items()):
        if key.startswith("router.shim.rtt"):
            print(f"  {key}: count={hist['count']:.0f} "
                  f"p50={hist['p50'] * 1000:.1f}ms "
                  f"p99={hist['p99'] * 1000:.1f}ms")

    print("\nOne flow, span by span:")
    trace_id, spans = next(
        (tid, spans) for tid, spans in sorted(snap["traces"].items())
        if any(s["name"] == "flow.verdict" for s in spans))
    print(f"  {trace_id}")
    for span in spans:
        end = "..." if span["end"] is None else f"{span['end']:8.3f}"
        labels = " ".join(f"{k}={v}" for k, v in span["labels"].items())
        print(f"    {span['start']:8.3f} -> {end}  "
              f"{span['name']:<14} {labels}")

    print(f"\nPeriodic snapshots on the virtual clock: "
          f"{[s['time'] for s in farm.telemetry_snapshots]}")


if __name__ == "__main__":
    main()
