#!/usr/bin/env python3
"""Spam campaign study: the paper's flagship workload.

Reproduces the deployment/development split the authors found
"exceedingly useful" (§4, Multiple experiments): one subfarm
continuously harvests spam from Grum and Rustock under mature,
Figure 6-configured policies; a second subfarm runs a freshly
obtained sample under reflect-everything while its policy is being
developed.  Ends with the Figure 7 activity report and a campaign
summary from the harvested spam.

Run:  python examples/spam_campaign_study.py
"""

from repro.core.config import ContainmentConfig, SampleLibrary, apply_config
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.reporting.report import ActivityReport, render_report
from repro.world.builder import ExternalWorld

CONFIG = """
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543
"""


def main() -> None:
    print(__doc__)
    farm = Farm(FarmConfig(seed=2011))
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=4, mailboxes_per_domain=40)

    # C&C infrastructure.
    rustock_campaign = world.default_campaign("rustock", batch_size=20,
                                              send_interval=0.8)
    rustock_cnc = world.add_http_cnc("rustock", "rustock-cc.example",
                                     rustock_campaign, port=443,
                                     path_prefix="/mod/")
    world.add_http_cnc("rustock-beacon", "rustock-cc.example",
                       rustock_campaign, port=80, path_prefix="/stat",
                       on_host=rustock_cnc.host)
    world.add_http_cnc("grum", "grum-cc.example",
                       world.default_campaign("grum", batch_size=20,
                                              send_interval=0.8),
                       path_prefix="/grum/")
    world.add_http_cnc("waledac", "waledac-cc.example",
                       world.default_campaign("waledac"),
                       path_prefix="/waledac/")

    # Deployment subfarm: mature policies from the config file.
    deployment = farm.create_subfarm("Botfarm")
    deployment.add_catchall_sink()
    deployment.add_smtp_sink(drop_probability=0.15)
    library = SampleLibrary()
    library.add("rustock.100921.a.exe", Sample("rustock"))
    library.add("grum.100818.a.exe", Sample("grum"))
    apply_config(ContainmentConfig.parse(CONFIG), deployment, library)
    for vlan in (16, 17, 18, 19):
        deployment.create_inmate(image_factory=autoinfect_image(),
                                 vlan=vlan)

    # Development subfarm: a fresh specimen, reflected while studied.
    development = farm.create_subfarm("Development")
    dev_sink = development.add_catchall_sink()
    fresh = development.create_inmate(image_factory=autoinfect_image())
    # Reflect-everything, except the auto-infection flow still needs
    # its REWRITE impersonation — exactly what ClassificationPolicy is.
    from repro.experiments.classification import ClassificationPolicy

    dev_policy = ClassificationPolicy()
    development.assign_policy(dev_policy, fresh.vlan)
    dev_policy.set_sample(fresh.vlan, fresh.vlan, Sample("waledac"))

    print("Running one simulated hour...")
    farm.run(until=3600)

    report = ActivityReport.from_subfarms(
        [deployment, development], world.blocklist)
    print(render_report(report))

    sink = deployment.sinks["smtp_sink"]
    print("Harvest summary (deployment subfarm):")
    print(f"  messages harvested : {sink.data_transfers}")
    print(f"  distinct campaigns : {len(sink.campaigns())}")
    for body, count in sorted(sink.campaigns().items(),
                              key=lambda kv: -kv[1])[:3]:
        subject = body.splitlines()[0].decode("latin-1", "replace")
        print(f"    {count:>6} x {subject}")
    print(f"  delivered outside  : {world.total_spam_delivered()} "
          "(containment held)" if world.total_spam_delivered() == 0
          else "  CONTAINMENT FAILURE")

    print("\nDevelopment subfarm observations (fresh Waledac sample):")
    for port, count in dev_sink.by_destination_port().items():
        print(f"  port {port}: {count} reflected flows")
    print("  -> next step: whitelist the POST /waledac/ctrl shape "
          "(see examples/policy_development.py)")


if __name__ == "__main__":
    main()
