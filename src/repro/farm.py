"""Top-level farm orchestration — the public API of the reproduction.

A :class:`Farm` assembles the whole of Figure 1 on one virtual clock:
the simulated Internet backbone, the central gateway with its upstream
and trunk interfaces, the inmate network switch, the management
network with the inmate controller, and any number of independent
:class:`Subfarm` habitats (Figure 3), each with its own packet router,
containment server, infrastructure services, and inmates.

Typical use::

    farm = Farm(FarmConfig(seed=1))
    sub = farm.create_subfarm("spam-study")
    sub.add_catchall_sink()
    sub.assign_policy_factory(ReflectAll)
    inmate = sub.create_inmate(image_factory=my_image)
    farm.run(until=3600)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.policy import ContainmentPolicy, DefaultDeny, PolicyMap
from repro.core.server import CS_DEFAULT_PORT, ContainmentServer
from repro.core.triggers import TriggerEngine
from repro.faults import FaultInjector, FaultPlan
from repro.gateway.gateway import Gateway
from repro.gateway.nat import AddressPool, InboundMode, NatTable
from repro.gateway.router import SubfarmRouter
from repro.gateway.safety import SafetyFilter
from repro.inmates.controller import (
    CONTROLLER_PORT,
    InmateController,
    LifecycleMessenger,
)
from repro.inmates.hosting import HostingBackend, ImageFactory, Inmate
from repro.inmates.vlan_pool import VlanPool
from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.host import Host
from repro.net.link import Link, Switch
from repro.net.router import Router
from repro.services.resolver import RecursiveResolver
from repro.services.sink import CatchAllSink
from repro.services.smtp_sink import SmtpSink
from repro.sim.engine import Simulator


class FarmConfig:
    """Deployment-wide knobs (defaults mirror the paper's §6.7 setup)."""

    def __init__(
        self,
        seed: int = 0,
        global_networks: Optional[List[str]] = None,
        control_network: str = "198.18.100.0/24",
        inbound_mode: InboundMode = InboundMode.FORWARD,
        safety_max_flows_per_window: int = 100000,
        safety_max_flows_per_destination: int = 50000,
        safety_window: float = 60.0,
        telemetry: bool = False,
        telemetry_snapshot_interval: Optional[float] = None,
        profile_callbacks: bool = False,
        journal: bool = False,
        journal_capacity: int = 65536,
        journal_sample_interval: Optional[float] = None,
        fault_plan: Optional[object] = None,
        verdict_deadline: Optional[float] = None,
        verdict_retries: int = 2,
        retry_backoff: float = 2.0,
        pending_policy: str = "drop",
        cs_probe_interval: float = 5.0,
        cs_failure_threshold: int = 2,
        lifecycle_retry_limit: int = 2,
        lifecycle_retry_backoff: float = 30.0,
        malice_policy: str = "isolate",
        quarantine_max_frames: int = 1024,
        flowtable_idle_timeout: Optional[float] = None,
        flowtable_hard_timeout: Optional[float] = None,
        batch_window: Optional[float] = None,
    ) -> None:
        self.seed = seed
        # Four /24s for the inmate population, one for control (§6.7).
        self.global_networks = [
            IPv4Network(cidr) for cidr in (
                global_networks
                or ["198.18.0.0/24", "198.18.1.0/24",
                    "198.18.2.0/24", "198.18.3.0/24"]
            )
        ]
        self.control_network = IPv4Network(control_network)
        self.inbound_mode = inbound_mode
        self.safety_max_flows_per_window = safety_max_flows_per_window
        self.safety_max_flows_per_destination = safety_max_flows_per_destination
        self.safety_window = safety_window
        self.telemetry = telemetry
        self.telemetry_snapshot_interval = telemetry_snapshot_interval
        self.profile_callbacks = profile_callbacks
        # Decision journal (repro.obs.journal, docs/OBSERVABILITY.md):
        # off by default so a plain run schedules no sampling events
        # and stays byte-identical to a build without the journal.
        self.journal = journal
        self.journal_capacity = journal_capacity
        self.journal_sample_interval = journal_sample_interval
        # Fault plane + shim resilience (repro.faults, docs/RESILIENCE.md).
        # An empty plan and verdict_deadline=None leave every run path
        # byte-identical to a build without the fault plane.
        self.fault_plan = FaultPlan.coerce(fault_plan)
        if pending_policy not in ("drop", "forward"):
            raise ValueError(
                f"pending_policy must be 'drop' or 'forward', "
                f"not {pending_policy!r}")
        self.verdict_deadline = verdict_deadline
        self.verdict_retries = verdict_retries
        self.retry_backoff = retry_backoff
        self.pending_policy = pending_policy
        self.cs_probe_interval = cs_probe_interval
        self.cs_failure_threshold = cs_failure_threshold
        self.lifecycle_retry_limit = lifecycle_retry_limit
        self.lifecycle_retry_backoff = lifecycle_retry_backoff
        # Malice barrier (docs/HARDENING.md): what happens when a
        # parser rejects ingested bytes — "isolate" aborts the
        # offending flow, "fail-stop" freezes the subfarm's ingest,
        # "count" only records.
        from repro.gateway.barrier import POLICIES

        if malice_policy not in POLICIES:
            raise ValueError(
                f"malice_policy must be one of {POLICIES}, "
                f"not {malice_policy!r}")
        self.malice_policy = malice_policy
        self.quarantine_max_frames = quarantine_max_frames
        # Match-action flow tables (docs/PERFORMANCE.md): entries for
        # flows idle longer than flowtable_idle_timeout (or older than
        # flowtable_hard_timeout) are evicted back to the slow path.
        # None (the default) leaves entries resident for the life of
        # the flow, matching the pre-timeout fast path byte-for-byte.
        self.flowtable_idle_timeout = flowtable_idle_timeout
        self.flowtable_hard_timeout = flowtable_hard_timeout
        # Batched trunk ingest: batch_window=None (default) keeps
        # per-frame delivery; 0.0 coalesces only naturally coincident
        # frames (timing untouched); a positive value quantizes trunk
        # delivery to window boundaries so concurrent inmates' frames
        # arrive together and run the struct-of-arrays datapath.
        if batch_window is not None and batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, not {batch_window}")
        self.batch_window = batch_window

    # ------------------------------------------------------------------
    # Serialization — ships configs to campaign workers
    # (repro.parallel) and logs the exact config a run used.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict that :meth:`from_dict` round-trips."""
        return {
            "seed": self.seed,
            "global_networks": [str(net) for net in self.global_networks],
            "control_network": str(self.control_network),
            "inbound_mode": self.inbound_mode.value,
            "safety_max_flows_per_window": self.safety_max_flows_per_window,
            "safety_max_flows_per_destination":
                self.safety_max_flows_per_destination,
            "safety_window": self.safety_window,
            "telemetry": self.telemetry,
            "telemetry_snapshot_interval": self.telemetry_snapshot_interval,
            "profile_callbacks": self.profile_callbacks,
            "journal": self.journal,
            "journal_capacity": self.journal_capacity,
            "journal_sample_interval": self.journal_sample_interval,
            "fault_plan": self.fault_plan.to_dict(),
            "verdict_deadline": self.verdict_deadline,
            "verdict_retries": self.verdict_retries,
            "retry_backoff": self.retry_backoff,
            "pending_policy": self.pending_policy,
            "cs_probe_interval": self.cs_probe_interval,
            "cs_failure_threshold": self.cs_failure_threshold,
            "lifecycle_retry_limit": self.lifecycle_retry_limit,
            "lifecycle_retry_backoff": self.lifecycle_retry_backoff,
            "malice_policy": self.malice_policy,
            "quarantine_max_frames": self.quarantine_max_frames,
            "flowtable_idle_timeout": self.flowtable_idle_timeout,
            "flowtable_hard_timeout": self.flowtable_hard_timeout,
            "batch_window": self.batch_window,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FarmConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys
        rejected so config drift fails loudly)."""
        known = {
            "seed", "global_networks", "control_network", "inbound_mode",
            "safety_max_flows_per_window",
            "safety_max_flows_per_destination", "safety_window",
            "telemetry", "telemetry_snapshot_interval",
            "profile_callbacks",
            "journal", "journal_capacity", "journal_sample_interval",
            "fault_plan", "verdict_deadline", "verdict_retries",
            "retry_backoff", "pending_policy", "cs_probe_interval",
            "cs_failure_threshold", "lifecycle_retry_limit",
            "lifecycle_retry_backoff", "malice_policy",
            "quarantine_max_frames", "flowtable_idle_timeout",
            "flowtable_hard_timeout", "batch_window",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FarmConfig keys: {sorted(unknown)}")
        kwargs = dict(data)
        if "inbound_mode" in kwargs:
            kwargs["inbound_mode"] = InboundMode(kwargs["inbound_mode"])
        return cls(**kwargs)

    def __repr__(self) -> str:
        return (f"<FarmConfig seed={self.seed} "
                f"inbound={self.inbound_mode.value} "
                f"telemetry={self.telemetry}>")


class Subfarm:
    """One independent habitat: router + containment server + services."""

    def __init__(self, farm: "Farm", name: str, index: int) -> None:
        self.farm = farm
        self.name = name
        self.index = index
        sim = farm.sim

        # Address plan: inmates in 10.(100+i).0.0/16, services in
        # 10.3.(i).0/24 (the paper's figures use 10.3.x service space).
        self.internal_network = IPv4Network(f"10.{100 + index}.0.0/16")
        self.gateway_ip = IPv4Address(f"10.{100 + index}.0.1")
        self.service_network = IPv4Network(f"10.3.{index}.0/24")
        self._next_service_host = 2

        internal_pool = AddressPool([self.internal_network],
                                    reserved=[self.gateway_ip])
        self.nat = NatTable(internal_pool, farm.global_pool,
                            inbound_mode=farm.config.inbound_mode,
                            telemetry=sim.telemetry, subfarm=name)
        self.safety = SafetyFilter(
            farm.config.safety_max_flows_per_window,
            farm.config.safety_max_flows_per_destination,
            farm.config.safety_window,
            telemetry=sim.telemetry, subfarm=name,
        )

        self.cs_ip = IPv4Address(f"10.3.{index}.1")
        self.dns_ip = IPv4Address(f"10.3.{index}.53")

        self.router = SubfarmRouter(
            sim=sim,
            name=name,
            vlan_ids=set(),
            nat=self.nat,
            safety=self.safety,
            cs_ip=self.cs_ip,
            cs_tcp_port=CS_DEFAULT_PORT,
            cs_udp_port=CS_DEFAULT_PORT,
            gateway_ip=self.gateway_ip,
            dns_ip=self.dns_ip,
            emit_to_vlan=farm.gateway.send_to_vlan,
            emit_to_service=farm.gateway.send_to_service,
            emit_upstream=farm.gateway.send_upstream,
            control_pool=farm.control_pool,
        )
        farm.gateway.add_router(self.router)
        self.router.flowtable_idle_timeout = \
            farm.config.flowtable_idle_timeout
        self.router.flowtable_hard_timeout = \
            farm.config.flowtable_hard_timeout
        self.router.barrier.policy = farm.config.malice_policy
        self.router.barrier.quarantine_max_frames = \
            farm.config.quarantine_max_frames

        # Containment server: a host on the service segment plus an
        # out-of-band interface on the management network (§5.5).
        self.cs_host = Host(sim, f"{name}-cs", ip=self.cs_ip)
        farm.gateway.attach_service_host(self.router, self.cs_host)
        self.cs_mgmt_host = farm.add_management_host(f"{name}-cs-mgmt")
        messenger = LifecycleMessenger(self.cs_mgmt_host,
                                       farm.controller_ip, CONTROLLER_PORT)

        self.policy_map = PolicyMap(default=DefaultDeny())
        self.services: Dict[str, Tuple[IPv4Address, int]] = {}
        self.containment_server = ContainmentServer(
            sim=sim,
            host=self.cs_host,
            policy_map=self.policy_map,
            services=self.services,
            lifecycle=messenger,
            subfarm=self,
        )
        self.trigger_engine = TriggerEngine(
            sim, lifecycle=self.containment_server.issue_lifecycle
        )
        self.containment_server.attach_triggers(self.trigger_engine)
        # Gateway and server drops land in one shared ledger.
        self.containment_server.barrier = self.router.barrier

        # DNS resolver service host (restricted broadcast domain).
        self.resolver_host = Host(sim, f"{name}-dns", ip=self.dns_ip)
        farm.gateway.attach_service_host(self.router, self.resolver_host,
                                         trusted=True)
        self.resolver = RecursiveResolver(
            self.resolver_host, upstream_ip=farm.authoritative_dns_ip
        )

        self.inmates: Dict[int, Inmate] = {}
        self.sinks: Dict[str, object] = {}
        self.extra_containment_servers: List[ContainmentServer] = []

        # Resilience (verdict deadlines, CS failover, fail-closed
        # pending policy): opt-in via config.verdict_deadline.
        self._cs_servers: Dict[IPv4Address, ContainmentServer] = {
            self.cs_ip: self.containment_server,
        }
        self.resilience = None
        if farm.config.verdict_deadline is not None:
            self._enable_resilience()

    # ------------------------------------------------------------------
    # Resilience (repro.gateway.failover)
    # ------------------------------------------------------------------
    def _enable_resilience(self) -> None:
        from repro.gateway.failover import (
            CsFailoverPool,
            ResilienceConfig,
            RouterResilience,
        )

        config = self.farm.config
        rconfig = ResilienceConfig(
            verdict_deadline=config.verdict_deadline,
            verdict_retries=config.verdict_retries,
            retry_backoff=config.retry_backoff,
            pending_policy=config.pending_policy,
            probe_interval=config.cs_probe_interval,
            failure_threshold=config.cs_failure_threshold,
        )
        pool = CsFailoverPool(self.farm.sim, self.router, rconfig,
                              prober=self._probe_cs)
        self.resilience = RouterResilience(
            self.farm.sim, self.router, rconfig, pool, self.name,
            trigger_engine=self.trigger_engine,
        )
        self.router.resilience = self.resilience

    def _probe_cs(self, ip: IPv4Address) -> bool:
        """Health probe: would this containment server answer now?"""
        server = self._cs_servers.get(ip)
        return server is not None and server.responsive()

    def set_pending_policy(self, policy: str) -> None:
        """Per-subfarm override of what happens to flows whose verdict
        never arrives: ``"drop"`` (fail closed, default) or
        ``"forward"`` (fail open — for subfarms whose study would lose
        more from dropped flows than from briefly unconstrained ones;
        the safety filter stays authoritative either way)."""
        if policy not in ("drop", "forward"):
            raise ValueError(
                f"pending policy must be 'drop' or 'forward', "
                f"not {policy!r}")
        if self.resilience is None:
            raise RuntimeError(
                "resilience is not enabled (set config.verdict_deadline)")
        self.resilience.config.pending_policy = policy

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def _allocate_service_ip(self) -> IPv4Address:
        ip = IPv4Address(
            self.service_network.network + self._next_service_host
        )
        self._next_service_host += 1
        return ip

    def add_service_host(self, name: str, trusted: bool = False,
                         accept_any_ip: bool = False) -> Host:
        """Create and wire a bare service host; callers attach apps."""
        host = Host(self.farm.sim, f"{self.name}-{name}",
                    ip=self._allocate_service_ip())
        host.accept_any_ip = accept_any_ip
        self.farm.gateway.attach_service_host(self.router, host,
                                              trusted=trusted)
        return host

    def register_service(self, name: str, ip: IPv4Address,
                         port: int) -> None:
        """Expose a service to policies by name (Figure 6 sections)."""
        self.services[name] = (IPv4Address(ip), port)

    def add_catchall_sink(self, name: str = "sink") -> CatchAllSink:
        host = self.add_service_host(name, accept_any_ip=True)
        sink = CatchAllSink(host)
        host.udp.bind_any(sink._datagram)
        self.sinks[name] = sink
        self.register_service(name, host.ip, 0)
        return sink

    def set_cs_service_time(self, service_time: float) -> None:
        """Enable the §7.2 processing model on every containment
        server in this subfarm."""
        self.containment_server.service_time = service_time
        for server in self.extra_containment_servers:
            server.service_time = service_time

    def add_containment_servers(self, count: int,
                                service_time: float = 0.0):
        """Grow the subfarm into containment-cluster mode (§7.2).

        Adds ``count`` additional servers sharing this subfarm's
        policy map and services; the router spreads inmates across the
        cluster (sticky per VLAN).  Returns the full cluster.
        """
        from repro.core.cluster import ContainmentServerCluster

        self.containment_server.service_time = service_time
        for index in range(count):
            host = self.add_service_host(
                f"cs{index + 2}", trusted=False)
            server = ContainmentServer(
                sim=self.farm.sim,
                host=host,
                policy_map=self.policy_map,
                services=self.services,
                lifecycle=self.containment_server.lifecycle,
                subfarm=self,
                service_time=service_time,
            )
            server.attach_triggers(self.trigger_engine)
            server.barrier = self.router.barrier
            self.extra_containment_servers.append(server)
            self.router.add_containment_server(host.ip)
            self._cs_servers[host.ip] = server
            injector = self.farm.fault_injector
            if injector is not None:
                injector.attach_server(self, server, len(
                    self.extra_containment_servers))
        return ContainmentServerCluster(
            [self.containment_server] + self.extra_containment_servers
        )

    def add_smtp_sink(self, name: str = "smtp_sink",
                      **kwargs) -> SmtpSink:
        host = self.add_service_host(name, accept_any_ip=True)
        sink = SmtpSink(host, **kwargs)
        self.sinks[name] = sink
        self.register_service(name, host.ip, 0)
        return sink

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def assign_policy(self, policy: ContainmentPolicy,
                      first_vlan: int, last_vlan: Optional[int] = None) -> None:
        policy.services = self.services
        self.policy_map.assign(first_vlan, last_vlan or first_vlan, policy)

    def set_default_policy(self, policy: ContainmentPolicy) -> None:
        policy.services = self.services
        self.policy_map.default = policy

    # ------------------------------------------------------------------
    # Inmates
    # ------------------------------------------------------------------
    def create_inmate(
        self,
        image_factory: ImageFactory,
        backend: Optional[HostingBackend] = None,
        policy: Optional[ContainmentPolicy] = None,
        autostart: bool = True,
        vlan: Optional[int] = None,
    ) -> Inmate:
        if vlan is None:
            vlan = self.farm.vlan_pool.allocate()
        else:
            self.farm.vlan_pool.allocate_specific(vlan)
        self.router.vlan_ids.add(vlan)
        self.farm.gateway._router_by_vlan[vlan] = self.router
        inmate = Inmate(self.farm.sim, vlan, self.farm.inmate_switch,
                        image_factory, backend)
        self.inmates[vlan] = inmate
        self.farm.controller.register(inmate)
        if self.farm.fault_injector is not None:
            self.farm.fault_injector.attach_inmate(self, inmate)
        if policy is not None:
            self.assign_policy(policy, vlan)
        if autostart:
            inmate.start()
        return inmate

    def export_traces(self, directory: str) -> Dict[str, str]:
        """Write this subfarm's inmate-side trace (and the gateway's
        upstream trace) as real pcap files — §5.6's two-pronged
        recording, ready for sharing.  The inmate-side capture uses
        the unroutable internal addresses, giving the "immediate
        anonymity" the paper leans on for data sharing."""
        import os

        from repro.net.capture import write_pcap

        os.makedirs(directory, exist_ok=True)
        paths = {}
        inmate_path = os.path.join(directory, f"{self.name}-inmate.pcap")
        write_pcap(inmate_path, self.router.trace.records)
        paths["inmate"] = inmate_path
        upstream_path = os.path.join(directory, "upstream.pcap")
        write_pcap(upstream_path, self.farm.gateway.upstream_trace.records)
        paths["upstream"] = upstream_path
        if self.router.barrier.quarantine:
            quarantine_path = os.path.join(
                directory, f"{self.name}-quarantine.pcap")
            self.router.barrier.export_quarantine(quarantine_path)
            paths["quarantine"] = quarantine_path
        return paths

    def remove_inmate(self, vlan: int) -> None:
        inmate = self.inmates.pop(vlan, None)
        if inmate is None:
            return
        inmate.terminate()
        self.farm.controller.unregister(vlan)
        self.router.forget_inmate(vlan)
        self.router.vlan_ids.discard(vlan)
        self.farm.gateway._router_by_vlan.pop(vlan, None)
        self.farm.vlan_pool.release(vlan)
        self.nat.unbind(vlan)

    def __repr__(self) -> str:
        return f"<Subfarm {self.name} inmates={len(self.inmates)}>"


class Farm:
    """The complete GQ deployment."""

    def __init__(self, config: Optional[FarmConfig] = None) -> None:
        self.config = config or FarmConfig()
        self.sim = Simulator(seed=self.config.seed)

        # Telemetry must attach before any component binds instruments:
        # everything downstream discovers it through sim.telemetry.
        self.telemetry_snapshots: List[dict] = []
        if self.config.telemetry:
            from repro.obs.telemetry import Telemetry

            self.sim.attach_telemetry(
                Telemetry(clock=lambda: self.sim.now),
                profile_callbacks=self.config.profile_callbacks,
            )
            interval = self.config.telemetry_snapshot_interval
            if interval is not None and interval > 0:
                self._schedule_snapshot(interval)

        # Decision journal (the flight recorder): like telemetry, it
        # must attach before any component is built — routers, barriers
        # and servers capture sim.journal at construction.  A live
        # journal records flow-level decisions only (never per-packet
        # work) and, when journal_sample_interval is set, schedules a
        # periodic gauge/counter sampler into fixed-interval rings.
        if self.config.journal:
            from repro.obs.journal import Journal

            self.sim.attach_journal(Journal(
                clock=lambda: self.sim.now,
                capacity=self.config.journal_capacity,
            ))
            interval = self.config.journal_sample_interval
            if interval is not None and interval > 0:
                self._schedule_journal_samples(interval)

        # Fault plane: built only for a non-empty plan so a default
        # farm registers no fault telemetry, draws no RNG streams, and
        # schedules no events — digests stay byte-identical.
        plan = self.config.fault_plan
        self.fault_injector: Optional[FaultInjector] = (
            None if plan.is_empty else FaultInjector(self.sim, plan)
        )

        self.backbone = Router(self.sim, "internet")
        self.gateway = Gateway(self.sim)
        self.inmate_switch = Switch(self.sim, "inmate-net")
        self.gateway.attach_trunk(self.inmate_switch)
        # Batched trunk ingest (docs/PERFORMANCE.md): opt-in, so the
        # default farm's delivery schedule is untouched.
        if self.config.batch_window is not None:
            self.gateway.trunk_port.coalesce = self.sim
            if self.config.batch_window > 0:
                self.gateway.trunk_port.link.batch_window = \
                    self.config.batch_window
        self.gateway.attach_upstream(
            self.backbone,
            self.config.global_networks + [self.config.control_network],
        )

        self.global_pool = AddressPool(self.config.global_networks)
        self.control_pool = AddressPool([self.config.control_network])
        self.vlan_pool = VlanPool(first=2)

        # Management network: controller host plus containment-server
        # management interfaces, all on one switch behind the gateway.
        self.mgmt_switch = Switch(self.sim, "mgmt-net")
        self._next_mgmt_host = 2
        self.controller_ip = IPv4Address("172.16.0.1")
        self.controller_host = Host(self.sim, "inmate-controller",
                                    ip=self.controller_ip, prefix_len=16)
        Link(self.sim, self.controller_host.attach_port(),
             self.mgmt_switch.attach_port(access_vlan=1))
        self.controller = InmateController(
            self.sim,
            on_action=self._on_lifecycle,
            retry_limit=self.config.lifecycle_retry_limit,
            retry_backoff=self.config.lifecycle_retry_backoff,
        )
        self.controller.bind(self.controller_host)

        # The simulated external universe's authoritative DNS: wired in
        # lazily by repro.world; None means resolvers answer only from
        # their static zones.
        self.authoritative_dns_ip: Optional[IPv4Address] = None

        self.subfarms: Dict[str, Subfarm] = {}

    # ------------------------------------------------------------------
    def create_subfarm(self, name: str) -> Subfarm:
        if name in self.subfarms:
            raise ValueError(f"subfarm {name!r} already exists")
        subfarm = Subfarm(self, name, index=len(self.subfarms))
        self.subfarms[name] = subfarm
        if self.fault_injector is not None:
            self.fault_injector.attach_subfarm(subfarm)
        return subfarm

    def add_management_host(self, name: str) -> Host:
        ip = IPv4Address(f"172.16.0.{self._next_mgmt_host}")
        self._next_mgmt_host += 1
        host = Host(self.sim, name, ip=ip, prefix_len=16)
        Link(self.sim, host.attach_port(),
             self.mgmt_switch.attach_port(access_vlan=1))
        return host

    def add_external_host(self, name: str, ip: str,
                          latency: float = 0.02) -> Host:
        """Create a host in the simulated outside world."""
        host = Host(self.sim, name, ip=IPv4Address(ip))
        self.backbone.attach_host(host, latency=latency)
        return host

    def add_gre_tunnel(self, donated_cidr: str, pop_ip: str):
        """Grow the farm's global address space through a GRE tunnel
        to a third-party point of presence (§7.2).

        Returns (gateway endpoint, PoP).  The donated prefix joins the
        global NAT pool; new inmates draw from it once the original
        /24s are exhausted.
        """
        from repro.gateway.tunnel import GreTunnelEndpoint
        from repro.world.gre_pop import GrePop

        donated = IPv4Network(donated_cidr)
        tunnel_local = self.control_pool.allocate()
        endpoint = GreTunnelEndpoint(tunnel_local, IPv4Address(pop_ip),
                                     [donated])
        self.gateway.add_tunnel(endpoint)
        pop = GrePop(self.sim, self.backbone, IPv4Address(pop_ip),
                     [donated], tunnel_local)
        self.global_pool.add_network(donated)
        return endpoint, pop

    def _on_lifecycle(self, action: str, vlan: int) -> None:
        """Clear gateway state when an inmate is recycled."""
        journal = self.sim.journal
        if journal.enabled:
            journal.record("lifecycle", vlan=vlan, action=action)
        if action in ("revert", "terminate", "stop"):
            router = self.gateway.router_for_vlan(vlan)
            if router is not None:
                router.forget_inmate(vlan)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The farm-wide telemetry domain (a no-op stub when the
        ``telemetry`` config flag is off)."""
        return self.sim.telemetry

    def telemetry_snapshot(self, include_traces: bool = True) -> dict:
        """Capture a point-in-time snapshot of every metric, trace,
        and hub event (see repro.obs.export)."""
        from repro.obs.export import snapshot

        return snapshot(self.sim.telemetry, include_traces=include_traces)

    def _schedule_snapshot(self, interval: float) -> None:
        def capture() -> None:
            self.telemetry_snapshots.append(self.telemetry_snapshot())
            self.sim.schedule(interval, capture, label="telemetry-snapshot")

        self.sim.schedule(interval, capture, label="telemetry-snapshot")

    # ------------------------------------------------------------------
    # Decision journal
    # ------------------------------------------------------------------
    @property
    def journal(self):
        """The farm-wide decision journal (NULL_JOURNAL when the
        ``journal`` config flag is off)."""
        return self.sim.journal

    def journal_snapshot(self) -> dict:
        """JSON-safe view of the decision journal (schema
        ``gq.journal/1``); see repro.obs.journal."""
        return self.sim.journal.snapshot()

    def _schedule_journal_samples(self, interval: float) -> None:
        """Periodic time-series sampling of key farm gauges/counters
        into the journal's fixed-interval rings.  Only scheduled when
        the journal is live, so disabled runs see no extra events."""
        def sample() -> None:
            journal = self.sim.journal
            journal.sample("sim.events", self.sim.events_processed)
            journal.sample("sim.queue.depth", self.sim.pending)
            journal.sample("journal.recorded", journal.recorded)
            for name in sorted(self.subfarms):
                counters = self.subfarms[name].router.counters
                journal.sample(f"router.{name}.flows_created",
                               counters.get("flows_created", 0))
                journal.sample(f"router.{name}.packets_relayed",
                               counters.get("packets_relayed", 0))
            self.sim.schedule(interval, sample, label="journal-sample")

        self.sim.schedule(interval, sample, label="journal-sample")

    # ------------------------------------------------------------------
    def run(self, until: float, max_events: Optional[int] = None) -> float:
        """Advance the whole deployment to virtual time ``until``."""
        return self.sim.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return f"<Farm subfarms={list(self.subfarms)} t={self.sim.now:.1f}>"
