"""Hostile trunk traffic × malice policy: what does the barrier cost?

GQ's gateway must assume inmates are adversarial all the way down to
the framing layer (docs/HARDENING.md).  This experiment runs the same
benign streaming workload while a deterministic hostile-frame stream
(:func:`repro.fuzz.generators.hostile_frame`) hits the subfarm trunk,
once per malice policy:

* ``isolate`` — malformed frames are dropped, counted, quarantined;
  the offending flow (when attributable) is evicted.  The benign
  workload must be unaffected.
* ``fail-stop`` — the first malformed frame latches the subfarm shut;
  everything after it is dropped unparsed.  Benign throughput collapses
  by design (the conservative prison posture).
* ``count`` — accounting only.

The run digest covers the barrier summary plus router counters, so
identical seeds reproduce identical cells (asserted by tests).
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, Iterable, Optional

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.fuzz.generators import hostile_frame
from repro.gateway.barrier import POLICIES
from repro.parallel.tasks import TARGET_IP, _echo_server, _streaming_image

__all__ = ["run_cell", "run_hostile_traffic"]


def run_cell(policy: str, seed: int = 11, frames: int = 200,
             inmates: int = 2, duration: float = 120.0) -> dict:
    """One policy cell: benign streaming workload + hostile frames."""
    rng = random.Random(seed ^ 0xBADF)
    farm = Farm(FarmConfig(seed=seed, malice_policy=policy))
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    sub = farm.create_subfarm("hostile")
    sub.set_default_policy(AllowAll())
    for _ in range(inmates):
        sub.create_inmate(image_factory=_streaming_image(20))

    # Hostile frames arrive throughout the middle of the run, so the
    # benign workload is already established when the abuse starts.
    router = sub.router
    start, stop = duration * 0.2, duration * 0.8
    for index in range(frames):
        when = start + (stop - start) * index / max(1, frames - 1)
        data = hostile_frame(rng)
        vlan = rng.randrange(1, 31)
        farm.sim.schedule(when,
                          lambda v=vlan, d=data: router.ingest_wire(v, d),
                          label="hostile-frame")
    farm.run(until=duration)

    counters = dict(sub.router.counters)
    barrier = router.barrier.summary()
    digest = hashlib.sha256()
    digest.update(json.dumps(counters, sort_keys=True).encode())
    digest.update(json.dumps(barrier, sort_keys=True).encode())
    return {
        "policy": policy,
        "seed": seed,
        "frames": frames,
        "flows_created": counters.get("flows_created", 0),
        "packets_relayed": counters.get("packets_relayed", 0),
        "barrier": barrier,
        "digest": digest.hexdigest(),
    }


def run_hostile_traffic(seed: int = 11, frames: int = 200,
                        inmates: int = 2, duration: float = 120.0,
                        policies: Optional[Iterable[str]] = None) -> dict:
    """The full policy sweep plus cross-policy sanity findings."""
    cells: Dict[str, dict] = {}
    for policy in (policies or POLICIES):
        cells[policy] = run_cell(policy, seed=seed, frames=frames,
                                 inmates=inmates, duration=duration)

    findings = []
    isolate = cells.get("isolate")
    failstop = cells.get("fail-stop")
    if isolate and not isolate["barrier"]["parse_errors"]:
        findings.append("isolate cell saw no malformed frames")
    if isolate and failstop:
        if not failstop["barrier"]["fail_stopped"]:
            findings.append("fail-stop cell never latched")
        if failstop["packets_relayed"] >= isolate["packets_relayed"]:
            findings.append(
                "fail-stop relayed no fewer packets than isolate — "
                "the latch is not actually stopping traffic")
    return {
        "experiment": "hostile-traffic",
        "cells": cells,
        "findings": findings,
    }
