"""Experiment harnesses regenerating the paper's tables and figures.

Each module builds a complete scenario on a fresh :class:`~repro.farm.
Farm`, runs it on the virtual clock, and returns structured results
that the benchmark drivers in ``benchmarks/`` print in the paper's
format.  Tests reuse the same harnesses, so what the benchmarks report
is continuously verified.
"""
