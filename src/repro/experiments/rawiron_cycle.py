"""§6.4 raw-iron reimaging timings.

"This process takes around 6 minutes per reimaging cycle" (network
boot + image transfer), and the hidden-partition alternative is
"slightly slower (around 10 minutes) but supports efficient reimaging
of all raw-iron systems simultaneously".  The experiment reimages a
pool both ways and reports per-machine cycle times plus the
whole-pool turnaround, which is where the local-partition variant
wins.
"""

from __future__ import annotations

from typing import Dict, List

from repro.inmates.rawiron import RawIronController
from repro.sim.engine import Simulator


class RawIronResult:
    def __init__(self, strategy: str, machines: int) -> None:
        self.strategy = strategy
        self.machines = machines
        self.cycle_times: List[float] = []
        self.pool_turnaround = 0.0

    @property
    def mean_cycle(self) -> float:
        if not self.cycle_times:
            return 0.0
        return sum(self.cycle_times) / len(self.cycle_times)

    def __repr__(self) -> str:
        return (
            f"<RawIron {self.strategy}: cycle={self.mean_cycle:.0f}s "
            f"pool={self.pool_turnaround:.0f}s>"
        )


def run_network_reimage(machines: int = 4, seed: int = 0) -> RawIronResult:
    """Sequential network reimaging (one controller, one TFTP path)."""
    sim = Simulator(seed=seed)
    controller = RawIronController(sim)
    for index in range(machines):
        controller.add_machine(f"ri{index}")

    pending = list(controller.machines)

    def next_machine(_finished=None) -> None:
        if pending:
            controller.reimage(pending.pop(0), on_done=next_machine)

    next_machine()
    started = sim.now
    sim.run(until=machines * 1200.0)
    result = RawIronResult("network-boot", machines)
    result.cycle_times = controller.cycle_times()
    result.pool_turnaround = (controller.reimage_log[-1][2] - started
                              if controller.reimage_log else 0.0)
    return result


def run_local_restore(machines: int = 4, seed: int = 0) -> RawIronResult:
    """Simultaneous hidden-partition restore across the pool."""
    sim = Simulator(seed=seed)
    controller = RawIronController(sim)
    for index in range(machines):
        controller.add_machine(f"ri{index}")
    controller.restore_all_from_local_partition()
    started = sim.now
    sim.run(until=3600.0)
    result = RawIronResult("local-partition", machines)
    result.cycle_times = controller.cycle_times()
    result.pool_turnaround = (
        max(end for _id, _start, end in controller.reimage_log) - started
        if controller.reimage_log else 0.0
    )
    return result


def run_comparison(machines: int = 4) -> Dict[str, RawIronResult]:
    return {
        "network-boot": run_network_reimage(machines),
        "local-partition": run_local_restore(machines),
    }
