"""``python -m repro.experiments`` — run experiments from the shell.

Every experiment that fans out over independent whole-farm runs takes
``--workers N`` (sharded across a spawn-safe worker pool, see
docs/PARALLELISM.md) and prints a JSON summary to stdout::

    python -m repro.experiments list
    python -m repro.experiments gateway-load-sweep --workers 4 --seeds 0..7
    python -m repro.experiments smtp-strictness --workers 2 --duration 300
    python -m repro.experiments containment-tradeoff --workers 4
    python -m repro.experiments streaming-farm --workers 2 --seeds 1..4

``--seeds a..b`` is an inclusive range; a comma list (``1,5,9``) also
works.

``--hosts h1:9000,h2:9000`` dispatches shards to running
``python -m repro.parallel.worker`` agents instead of the local pool;
``--scheduler static`` swaps adaptive work stealing for contiguous
chunks; ``--topology farm.json`` (streaming-farm) compiles a
FarmTopology file into a placement and derives the campaign — and the
agent endpoints — from it.

``--snapshot PATH`` writes the experiment's merged telemetry snapshot
to a JSON file; ``--journal PATH`` writes the merged decision journal
(docs/OBSERVABILITY.md) — on ``streaming-farm`` it also turns shard
journaling on.  Both files feed ``python -m repro.obs`` (``why``,
``grep``, ``diff``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def parse_seeds(text: str) -> List[int]:
    """``"0..7"`` (inclusive) or ``"1,5,9"`` or a single ``"4"``."""
    text = text.strip()
    if ".." in text:
        low, _, high = text.partition("..")
        first, last = int(low), int(high)
        if last < first:
            raise ValueError(f"empty seed range: {text!r}")
        return list(range(first, last + 1))
    return [int(part) for part in text.split(",") if part.strip()]


def _campaign_summary(result) -> dict:
    summary = result.to_dict()
    # Per-shard telemetry/journal snapshots make CLI output unwieldy;
    # the merged labeled views stay.
    for shard in summary["shards"]:
        if shard["payload"]:
            shard["payload"].pop("telemetry", None)
            shard["payload"].pop("journal", None)
    return summary


def _extract_artifact(summary: dict, key: str) -> Optional[dict]:
    """Find a telemetry/journal dict at the top level or under
    ``merged`` (campaign summaries)."""
    if not isinstance(summary, dict):
        return None
    value = summary.get(key)
    if isinstance(value, dict):
        return value
    merged = summary.get("merged")
    if isinstance(merged, dict) and isinstance(merged.get(key), dict):
        return merged[key]
    return None


def _write_json(path: str, doc: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _export_artifacts(args, summary: dict) -> None:
    """Honour ``--snapshot`` / ``--journal`` for any experiment."""
    for flag, key in (("snapshot", "telemetry"), ("journal", "journal")):
        path = getattr(args, flag, None)
        if not path:
            continue
        doc = _extract_artifact(summary, key)
        if doc is None:
            print(f"--{flag}: experiment produced no {key} data; "
                  f"nothing written to {path}", file=sys.stderr)
            continue
        _write_json(path, doc)
        print(f"wrote {key} to {path}", file=sys.stderr)


# ----------------------------------------------------------------------
# Experiment runners
# ----------------------------------------------------------------------
def _run_gateway_load_sweep(args) -> dict:
    from repro.experiments.scalability import run_gateway_load_sweep

    result = run_gateway_load_sweep(
        seeds=args.seeds, count=args.count, base_seed=args.seed,
        subfarms=args.subfarms, inmates_per=args.inmates_per,
        duration=args.duration, workers=args.workers,
        hosts=args.hosts, scheduler=args.scheduler)
    return _campaign_summary(result)


def _load_topology(path: str):
    """``--topology FILE`` → a compiled Placement (compile errors are
    structured and fatal)."""
    from repro.parallel.topology import FarmTopology

    with open(path, "r", encoding="utf-8") as handle:
        return FarmTopology.from_dict(json.load(handle)).compile()


def _run_streaming_farm(args) -> dict:
    from repro.parallel import Campaign, run_campaign

    hosts = args.hosts
    if args.topology:
        placement = _load_topology(args.topology)
        campaign = placement.campaign(
            "repro.parallel.tasks:streaming_farm_shard",
            params={"duration": args.duration,
                    "journal": bool(getattr(args, "journal", None))},
            base_seed=args.seed)
        # The compiled placement names the worker agents; an explicit
        # --hosts still wins (e.g. re-running a placement locally).
        hosts = hosts or (placement.endpoints() or None)
    else:
        campaign = Campaign.seed_sweep(
            "streaming-farm-sweep",
            "repro.parallel.tasks:streaming_farm_shard",
            params={"subfarms": args.subfarms,
                    "inmates": args.inmates_per,
                    "duration": args.duration,
                    # --journal turns shard journaling on so the
                    # campaign merge has journals to fold (determinism
                    # digests are unchanged either way).
                    "journal": bool(getattr(args, "journal", None))},
            seeds=args.seeds,
            count=None if args.seeds is not None else args.count,
            base_seed=args.seed)
    return _campaign_summary(run_campaign(
        campaign, workers=args.workers, hosts=hosts,
        scheduler=args.scheduler))


def _run_smtp_strictness(args) -> dict:
    from repro.experiments.smtp_strictness import run_matrix

    matrix = run_matrix(duration=args.duration, seed=args.seed,
                        workers=args.workers, hosts=args.hosts,
                        scheduler=args.scheduler)
    return {
        "experiment": "smtp-strictness",
        "duration": args.duration,
        "cells": {
            f"{family}/{strictness}": {
                "sessions": cell.sessions,
                "data_transfers": cell.data_transfers,
                "content_ratio": round(cell.content_ratio, 4),
            }
            for (family, strictness), cell in sorted(matrix.items())
        },
    }


def _run_containment_tradeoff(args) -> dict:
    from repro.experiments.containment_tradeoff import run_all_regimes

    regimes = run_all_regimes(duration=args.duration, seed=args.seed,
                              workers=args.workers, hosts=args.hosts,
                              scheduler=args.scheduler)
    return {
        "experiment": "containment-tradeoff",
        "duration": args.duration,
        "regimes": {
            name: {
                "behaviour_score": result.behaviour_score,
                "harm_score": result.harm_score,
                "families_active": result.families_active,
                "spam_harvested": result.spam_harvested,
                "inmates_blacklisted": result.inmates_blacklisted,
            }
            for name, result in sorted(regimes.items())
        },
    }


def _run_fault_matrix(args) -> dict:
    from repro.experiments.fault_matrix import run_matrix, summarize

    result = run_matrix(seeds=args.seeds, base_seed=args.seed,
                        duration=args.duration, workers=args.workers,
                        timeout=600.0, hosts=args.hosts,
                        scheduler=args.scheduler)
    return summarize(result)


def _run_hostile_traffic(args) -> dict:
    from repro.experiments.hostile_traffic import run_hostile_traffic

    return run_hostile_traffic(seed=args.seed, duration=args.duration)


EXPERIMENTS = {
    "gateway-load-sweep": (
        _run_gateway_load_sweep,
        "seed sweep of §7.2 gateway-load farm runs (scalability)",
        {"duration": 120.0, "seed": 6},
    ),
    "streaming-farm": (
        _run_streaming_farm,
        "seed sweep of streaming whole-farm runs (the parallel "
        "benchmark workload)",
        {"duration": 120.0, "seed": 11},
    ),
    "smtp-strictness": (
        _run_smtp_strictness,
        "§7.1 sink strictness × spambot dialect matrix",
        {"duration": 600.0, "seed": 11},
    ),
    "containment-tradeoff": (
        _run_containment_tradeoff,
        "§3/§8 behaviour-vs-harm regimes over the mixed population",
        {"duration": 900.0, "seed": 77},
    ),
    "hostile-traffic": (
        _run_hostile_traffic,
        "malice-policy sweep under a deterministic hostile-frame "
        "stream (docs/HARDENING.md)",
        {"duration": 120.0, "seed": 11},
    ),
    "fault-matrix": (
        _run_fault_matrix,
        "chaos scenarios × seeds over resilient farm runs "
        "(docs/RESILIENCE.md)",
        {"duration": 120.0, "seed": 11},
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list runnable experiments")
    for name, (_, help_text, defaults) in EXPERIMENTS.items():
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = serial in-process)")
        cmd.add_argument("--hosts", default=None, metavar="H:P,H:P",
                         help="comma-separated worker-agent endpoints "
                              "(python -m repro.parallel.worker); "
                              "shards dispatch over TCP instead of "
                              "the local pool")
        cmd.add_argument("--scheduler", choices=("steal", "static"),
                         default="steal",
                         help="shard scheduler: adaptive work "
                              "stealing (default) or static "
                              "contiguous chunks")
        cmd.add_argument("--topology", metavar="FILE", default=None,
                         help="compile a FarmTopology JSON file into "
                              "a placement and derive the campaign "
                              "from it (streaming-farm only)")
        cmd.add_argument("--seeds", type=parse_seeds, default=None,
                         metavar="A..B",
                         help="inclusive seed range or comma list")
        cmd.add_argument("--count", type=int, default=8,
                         help="shards when --seeds is not given "
                              "(sweep experiments)")
        cmd.add_argument("--seed", type=int, default=defaults["seed"],
                         help="base seed")
        cmd.add_argument("--duration", type=float,
                         default=defaults["duration"],
                         help="virtual seconds per farm run")
        cmd.add_argument("--subfarms", type=int, default=3)
        cmd.add_argument("--inmates-per", type=int, default=4)
        cmd.add_argument("--indent", type=int, default=2)
        cmd.add_argument("--snapshot", metavar="PATH",
                         help="write the merged telemetry snapshot "
                              "to this JSON file")
        cmd.add_argument("--journal", metavar="PATH",
                         help="write the merged decision journal to "
                              "this JSON file (enables shard "
                              "journaling where supported)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        for name, (_, help_text, _defaults) in EXPERIMENTS.items():
            print(f"{name:<22} {help_text}")
        return 0
    runner = EXPERIMENTS[args.command][0]
    summary = runner(args)
    _export_artifacts(args, summary)
    print(json.dumps(summary, indent=args.indent, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
