"""§7.1 "Exploratory containment": decoding delivery-report error codes.

"In preparing for our infiltration of Storm, we tried to understand
the meaning of the error codes returned in Storm's delivery reports
using a dual approach of live experimentation, in which we exposed the
samples to specific error conditions during SMTP transactions, and
binary analysis."

The model: a reporting drone translates SMTP delivery failures into an
opaque internal code table and reports the codes to its C&C.  The
experiment is the live-experimentation half of the paper's dual
approach — run the drone against a sink scripted to fail at exactly
one stage, observe which code shows up at the C&C, and recover the
code table condition by condition (zero harm throughout: the sink is
inside the farm, only the report reaches the real C&C).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.base import register_specimen
from repro.malware.corpus import Sample
from repro.malware.spambots import SpambotSpecimen
from repro.net.addresses import IPv4Address
from repro.policies.spambot import SpambotPolicy
from repro.world.builder import ExternalWorld

# The drone's firmware table — what binary analysis would eventually
# dig out of the unpacked sample.  The experiment must recover it
# without looking.
FIRMWARE_ERROR_TABLE: Dict[str, int] = {
    "mail": 17,    # sender rejected
    "rcpt": 23,    # recipient rejected
    "data": 9,     # DATA refused
    "body": 31,    # message body bounced
    "connect": 4,  # connection failed outright
}

CONDITIONS: Dict[str, Optional[dict]] = {
    "reject-at-mail": {"stage": "mail", "code": 550},
    "reject-at-rcpt": {"stage": "rcpt", "code": 550},
    "reject-at-data": {"stage": "data", "code": 554},
    "reject-body": {"stage": "body", "code": 452},
    "refuse-connection": None,  # modelled via sink drop_probability=1
}

# Which firmware stage each injected condition exercises.
CONDITION_TO_STAGE = {
    "reject-at-mail": "mail",
    "reject-at-rcpt": "rcpt",
    "reject-at-data": "data",
    "reject-body": "body",
    "refuse-connection": "connect",
}


@register_specimen
class ReportingDrone(SpambotSpecimen):
    """A spam drone that reports delivery outcomes to its C&C using
    the opaque firmware code table."""

    family = "reportingdrone"
    helo = "drone.pool.example"
    cnc_domain = "drone-cc.example"

    def _speak_cnc(self, cnc_ip: IPv4Address) -> None:
        self._cnc_ip = cnc_ip
        self._http_cnc_request(
            cnc_ip, 80, f"/drone/cmd?id={self.sample_id[:8]}",
            lambda body: self._campaign_received(self._parse_campaign(body)),
        )

    def _report(self, code: int) -> None:
        self.bump("reports")
        self._http_cnc_request(
            self._cnc_ip, 80,
            f"/drone/report?id={self.sample_id[:8]}&err={code}",
            lambda body: None,
        )

    def _session_done(self, conn, engine) -> None:
        for phase in engine.failure_phases:
            code = FIRMWARE_ERROR_TABLE.get(phase)
            if code is not None:
                self._report(code)
        super()._session_done(conn, engine)

    def _session_failed(self) -> None:
        self._report(FIRMWARE_ERROR_TABLE["connect"])
        super()._session_failed()


class ErrorCodeResult:
    def __init__(self) -> None:
        # condition -> observed internal codes at the C&C
        self.observed: Dict[str, List[int]] = {}
        self.recovered: Dict[str, Optional[int]] = {}
        self.harm_outside = 0

    def __repr__(self) -> str:
        return f"<ErrorCodes recovered={self.recovered}>"


def run_condition(condition: str, duration: float = 300.0,
                  seed: int = 141) -> List[int]:
    """Run the drone under one injected condition; return the internal
    codes its reports carried."""
    fault = CONDITIONS[condition]
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("errorstudy")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=10)
    cnc = world.add_http_cnc(
        "reportingdrone", "drone-cc.example",
        world.default_campaign("reportingdrone", batch_size=5,
                               send_interval=1.0),
        path_prefix="/drone/")

    sub.add_catchall_sink()
    sub.add_smtp_sink(
        fault=fault,
        drop_probability=0.999 if condition == "refuse-connection" else 0.0,
    )

    class DronePolicy(SpambotPolicy):
        name = "ReportingDrone"

        def decide_cnc(self, ctx):
            if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
                return None
            return self.fallthrough(ctx)

        def decide_other_content(self, ctx, data):
            if data.startswith(b"GET /drone/"):
                return self.forward(ctx, annotation="C&C")
            if len(data) >= 16:
                return self.fallthrough(ctx)
            return None

    policy = DronePolicy()
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, Sample("reportingdrone"))
    farm.run(until=duration)

    codes: List[int] = []
    for request in cnc.requests_served:
        if request.path.startswith("/drone/report"):
            for piece in request.path.split("?", 1)[-1].split("&"):
                key, _, value = piece.partition("=")
                if key == "err" and value.isdigit():
                    codes.append(int(value))
    assert world.total_spam_delivered() == 0, "the experiment must be safe"
    return codes


def run_error_code_study(duration: float = 300.0,
                         seed: int = 141) -> ErrorCodeResult:
    result = ErrorCodeResult()
    for condition in CONDITIONS:
        codes = run_condition(condition, duration, seed)
        result.observed[condition] = codes
        result.recovered[condition] = (
            max(set(codes), key=codes.count) if codes else None
        )
    return result


def recovered_table(result: ErrorCodeResult) -> Dict[str, Optional[int]]:
    """The analyst's reconstructed stage -> code table."""
    return {
        CONDITION_TO_STAGE[condition]: code
        for condition, code in result.recovered.items()
    }
