"""The §3 methodology: iterative default-deny policy development.

"Beginning from a complete default-deny of interaction with the
outside world, we execute the specimen in a subfarm providing a 'sink
server' ...  We can then whitelist traffic believed-safe for outside
interaction, in the most narrow fashion possible ...  We then iterate
the process over repeated executions of the specimen until we arrive
at a containment policy that allows just the C&C lifeline onto the
Internet, while containing malicious activity inside GQ."

The analyst is modelled mechanically: after each execution, inspect
the sink's records, pick the most frequent non-SMTP traffic class
(destination port + normalized payload prefix), and whitelist exactly
that shape.  The loop ends when the specimen is fully alive (C&C
fetched, payload behaviour observed in the farm) — and the run
history shows zero harm escaped at *every* iteration, which is the
methodology's point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.fingerprint import normalize_payload
from repro.core.policy import PolicyContext
from repro.core.verdicts import ContainmentDecision
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.policies.autoinfect import AutoInfectionPolicy
from repro.world.builder import ExternalWorld

SMTP_PORT = 25


class WhitelistRule:
    """One narrowly whitelisted traffic shape."""

    __slots__ = ("port", "token")

    def __init__(self, port: int, token: bytes) -> None:
        self.port = port
        self.token = token

    def matches(self, port: int, payload: bytes) -> bool:
        return port == self.port and normalize_payload(payload) == self.token

    def __repr__(self) -> str:
        return f"<Rule port={self.port} token={self.token!r}>"


class IterativePolicy(AutoInfectionPolicy):
    """Default-deny-to-sink plus the analyst's accumulated whitelist."""

    name = "Iterative"

    def __init__(self, rules: Optional[List[WhitelistRule]] = None,
                 services=None, config=None) -> None:
        super().__init__(services, config)
        self.rules = list(rules or [])

    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == SMTP_PORT:
            # Malicious activity stays inside, always.
            service = "smtp_sink" if ctx.has_service("smtp_sink") else "sink"
            return self.reflect(ctx, service, annotation="SMTP containment")
        if any(rule.port == ctx.flow.resp_port for rule in self.rules):
            return None  # a whitelist may apply: check content
        return self.reflect(ctx, "sink", annotation="default-deny to sink")

    def decide_other_content(self, ctx: PolicyContext, data: bytes
                             ) -> Optional[ContainmentDecision]:
        for rule in self.rules:
            if rule.matches(ctx.flow.resp_port, data):
                return self.forward(ctx, annotation="whitelisted C&C shape")
        if len(data) >= 8:
            return self.reflect(ctx, "sink",
                                annotation="content mismatch to sink")
        return None


class IterationOutcome:
    """What one execution under the current policy revealed."""

    def __init__(self, iteration: int) -> None:
        self.iteration = iteration
        self.rules: List[WhitelistRule] = []
        self.cnc_fetches = 0
        self.spam_harvested = 0
        self.harm_outside = 0
        self.sink_classes: List[Tuple[int, bytes, int]] = []
        self.new_rule: Optional[WhitelistRule] = None

    @property
    def fully_alive(self) -> bool:
        return self.cnc_fetches > 0 and self.spam_harvested > 0

    def __repr__(self) -> str:
        return (
            f"<Iteration {self.iteration}: rules={len(self.rules)} "
            f"cnc={self.cnc_fetches} harvest={self.spam_harvested} "
            f"harm={self.harm_outside}>"
        )


def _analyst_step(sink_records, existing: List[WhitelistRule]
                  ) -> Tuple[List[Tuple[int, bytes, int]],
                             Optional[WhitelistRule]]:
    """Inspect the sink and propose the next narrow whitelist rule."""
    classes: Dict[Tuple[int, bytes], int] = {}
    for record in sink_records:
        if record.proto != "tcp" or record.dst_port == SMTP_PORT:
            continue
        payload = bytes(record.payload)
        if not payload:
            continue
        key = (record.dst_port, normalize_payload(payload))
        classes[key] = classes.get(key, 0) + 1
    ranked = sorted(classes.items(), key=lambda item: -item[1])
    summary = [(port, token, count) for (port, token), count in ranked]
    for (port, token), _count in ranked:
        if not any(r.port == port and r.token == token for r in existing):
            return summary, WhitelistRule(port, token)
    return summary, None


def run_iteration(family: str, rules: List[WhitelistRule],
                  iteration: int, duration: float = 400.0,
                  seed: int = 31) -> IterationOutcome:
    farm = Farm(FarmConfig(seed=seed + iteration))
    sub = farm.create_subfarm("development")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=20)
    campaign = world.default_campaign(family, batch_size=10,
                                      send_interval=1.0)
    if family == "rustock":
        cnc = world.add_http_cnc("rustock", "rustock-cc.example", campaign,
                                 port=443, path_prefix="/mod/")
        world.add_http_cnc("rustock-beacon", "rustock-cc.example", campaign,
                           port=80, path_prefix="/stat", on_host=cnc.host)
    elif family == "megad":
        world.add_megad_cnc(campaign=campaign)
    else:
        world.add_http_cnc(family, f"{family}-cc.example", campaign,
                           path_prefix=f"/{family}/")

    sink = sub.add_catchall_sink()
    smtp_sink = sub.add_smtp_sink()
    policy = IterativePolicy(rules)
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, Sample(family))
    farm.run(until=duration)

    outcome = IterationOutcome(iteration)
    outcome.rules = list(rules)
    specimen = getattr(inmate.host, "specimen", None) if inmate.host else None
    if specimen is not None:
        outcome.cnc_fetches = specimen.stats.get("cnc_fetches", 0)
    outcome.spam_harvested = smtp_sink.data_transfers
    outcome.harm_outside = world.total_spam_delivered()
    outcome.sink_classes, outcome.new_rule = _analyst_step(
        sink.records, rules)
    return outcome


def develop_policy(family: str = "grum", max_iterations: int = 6,
                   duration: float = 400.0,
                   seed: int = 31) -> List[IterationOutcome]:
    """Run the full development loop; returns the iteration history."""
    rules: List[WhitelistRule] = []
    history: List[IterationOutcome] = []
    for iteration in range(max_iterations):
        outcome = run_iteration(family, rules, iteration, duration, seed)
        history.append(outcome)
        if outcome.fully_alive:
            break
        if outcome.new_rule is None:
            break  # nothing left to whitelist
        rules.append(outcome.new_rule)
    return history
