"""§7.2 system scalability.

Three constraints the paper names, each measured here:

1. VLAN IDs are 12 bits — at most 4,094 inmates per inmate network.
2. A single containment server must interpose on every flow in its
   subfarm; under load its verdict queue grows.  A cluster managed by
   the packet router (sticky per-inmate selection) divides the load.
3. The central gateway carries everything; the paper's one machine
   ran 5-6 subfarms with a handful to a dozen inmates each.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.inmates.vlan_pool import VlanPool, VlanPoolExhausted
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.services.dhcp import DhcpClient

WEB_IP = "203.0.113.80"


def flowgen_image(interval: float, target: str = WEB_IP,
                  port: int = 80):
    """An inmate that opens one short HTTP flow every ``interval``."""

    def image(host):
        def configured(configured_host):
            def tick():
                conn = configured_host.tcp.connect(IPv4Address(target), port)
                parser = HttpParser("response")

                def on_data(c, data):
                    if parser.feed(data):
                        c.close()

                conn.on_established = lambda c: c.send(
                    HttpRequest("GET", "/ping").to_bytes())
                conn.on_data = on_data
                configured_host.sim.schedule(
                    interval * configured_host.rng.uniform(0.7, 1.3),
                    tick, label="flowgen")

            configured_host.sim.schedule(1.0, tick, label="flowgen-start")

        DhcpClient(host, on_configured=configured).start()

    return image


def _web_server(host):
    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for _request in parser.feed(data):
                c.send(HttpResponse(200, body=b"pong").to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(80, on_accept)


class CsLoadResult:
    def __init__(self, inmates: int, cluster_size: int) -> None:
        self.inmates = inmates
        self.cluster_size = cluster_size
        self.verdicts = 0
        self.mean_queue_delay = 0.0
        self.max_queue_delay = 0.0
        self.load_balance: List[int] = []

    def __repr__(self) -> str:
        return (
            f"<CsLoad inmates={self.inmates} cluster={self.cluster_size} "
            f"mean_delay={self.mean_queue_delay * 1000:.1f}ms>"
        )


def run_cs_load(
    inmates: int,
    cluster_size: int = 1,
    service_time: float = 0.05,
    flow_interval: float = 2.0,
    duration: float = 300.0,
    seed: int = 5,
) -> CsLoadResult:
    """Measure containment-server queueing under flow load."""
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("load")
    web = farm.add_external_host("webserver", WEB_IP)
    _web_server(web)
    cluster = sub.add_containment_servers(cluster_size - 1,
                                          service_time=service_time)
    sub.set_default_policy(AllowAll())
    for _ in range(inmates):
        sub.create_inmate(image_factory=flowgen_image(flow_interval))
    farm.run(until=duration)

    result = CsLoadResult(inmates, cluster_size)
    result.verdicts = cluster.total_verdicts()
    result.mean_queue_delay = cluster.mean_queue_delay()
    result.max_queue_delay = cluster.max_queue_delay()
    result.load_balance = cluster.load_balance()
    return result


class GatewayLoadResult:
    def __init__(self, subfarms: int, inmates_per: int) -> None:
        self.subfarms = subfarms
        self.inmates_per = inmates_per
        self.packets_relayed = 0
        self.flows_created = 0
        self.events_processed = 0
        self.simulated_seconds = 0.0

    @property
    def flows_per_simulated_second(self) -> float:
        if not self.simulated_seconds:
            return 0.0
        return self.flows_created / self.simulated_seconds

    def __repr__(self) -> str:
        return (
            f"<GatewayLoad {self.subfarms}x{self.inmates_per}: "
            f"{self.flows_created} flows, "
            f"{self.packets_relayed} packets relayed>"
        )


def run_gateway_load(
    subfarms: int = 6,
    inmates_per: int = 12,
    flow_interval: float = 5.0,
    duration: float = 300.0,
    seed: int = 6,
) -> GatewayLoadResult:
    """The paper's operating point: 5-6 subfarms, up to a dozen
    inmates each, all through one gateway."""
    farm = Farm(FarmConfig(seed=seed))
    web = farm.add_external_host("webserver", WEB_IP)
    _web_server(web)
    subs = []
    for index in range(subfarms):
        sub = farm.create_subfarm(f"subfarm-{index}")
        sub.set_default_policy(AllowAll())
        for _ in range(inmates_per):
            sub.create_inmate(image_factory=flowgen_image(flow_interval))
        subs.append(sub)
    farm.run(until=duration)

    result = GatewayLoadResult(subfarms, inmates_per)
    result.simulated_seconds = farm.sim.now
    result.events_processed = farm.sim.events_processed
    for sub in subs:
        result.packets_relayed += sub.router.counters["packets_relayed"]
        result.flows_created += sub.router.counters["flows_created"]
    return result


# ----------------------------------------------------------------------
# Sharded campaign wiring (repro.parallel)
# ----------------------------------------------------------------------
def gateway_load_shard(seed: int, subfarms: int = 3, inmates_per: int = 4,
                       flow_interval: float = 5.0,
                       duration: float = 120.0) -> dict:
    """Shard task: one gateway-load farm run, digested.

    Module-level and JSON-in/JSON-out so spawn-started campaign
    workers can import it by name
    (``"repro.experiments.scalability:gateway_load_shard"``).
    """
    import hashlib
    import json as _json

    result = run_gateway_load(subfarms=subfarms, inmates_per=inmates_per,
                              flow_interval=flow_interval,
                              duration=duration, seed=seed)
    digest = hashlib.sha256()
    digest.update(_json.dumps({
        "seed": seed,
        "packets_relayed": result.packets_relayed,
        "flows_created": result.flows_created,
        "events": result.events_processed,
        "simulated": result.simulated_seconds,
    }, sort_keys=True).encode())
    return {
        "seed": seed,
        "subfarms": subfarms,
        "inmates_per": inmates_per,
        "metrics": {
            "packets_relayed": result.packets_relayed,
            "flows_created": result.flows_created,
            "events": result.events_processed,
        },
        "flows_per_simulated_second":
            result.flows_per_simulated_second,
        "digest": digest.hexdigest(),
    }


def run_gateway_load_sweep(
    seeds=None,
    count: int = 8,
    base_seed: int = 6,
    subfarms: int = 3,
    inmates_per: int = 4,
    flow_interval: float = 5.0,
    duration: float = 120.0,
    workers: int = 1,
    hosts=None,
    scheduler: str = "steal",
):
    """The paper's operating point as a seed sweep: N independent
    whole-farm gateway-load runs fanned out across a worker pool
    (``workers=1`` = hermetic serial fallback; ``hosts`` = worker-agent
    endpoints for multi-host dispatch) and merged deterministically —
    see docs/PARALLELISM.md."""
    from repro.parallel import Campaign, run_campaign

    campaign = Campaign.seed_sweep(
        "gateway-load-sweep",
        "repro.experiments.scalability:gateway_load_shard",
        params={
            "subfarms": subfarms,
            "inmates_per": inmates_per,
            "flow_interval": flow_interval,
            "duration": duration,
        },
        seeds=seeds,
        count=None if seeds is not None else count,
        base_seed=base_seed,
    )
    return run_campaign(campaign, workers=workers, hosts=hosts,
                        scheduler=scheduler)


def vlan_capacity_demo() -> Dict[str, int]:
    """The 802.1Q 12-bit ceiling, §7.2 constraint number one."""
    pool = VlanPool()
    allocated = 0
    try:
        while True:
            pool.allocate()
            allocated += 1
    except VlanPoolExhausted:
        pass
    return {"capacity": pool.capacity, "allocated": allocated}
