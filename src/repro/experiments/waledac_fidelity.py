"""§7.1 "Mysterious blacklisting" + "Satisfying fidelity", end to end.

Three containment configurations for Waledac, matching the paper's
chronology:

* ``test-message`` — the early policy: all SMTP reflected to the plain
  sink, except a single test exchange with the GMail-like provider
  allowed out.  Outcome in the paper: the inmates appeared on the CBL,
  because Google recognized the ``wergvan`` HELO and reported them.
* ``plain-sink`` — the obvious fix: reflect *everything*, default
  banner.  Outcome: the bots cease activity (they never see the
  banner they expect), so no spam is harvested.
* ``banner-grabbing`` — the sink fetches genuine greeting banners from
  the intended destinations.  Outcome: bots stay active, spam is
  harvested, and nothing is blacklisted.
"""

from __future__ import annotations

from repro.core.policy import PolicyContext
from repro.core.verdicts import ContainmentDecision
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.net.addresses import IPv4Address
from repro.policies.spambot import Waledac as WaledacPolicy
from repro.world.builder import ExternalWorld

MODES = ("test-message", "plain-sink", "banner-grabbing")


class WaledacEarlyPolicy(WaledacPolicy):
    """The pre-lesson policy: permit the GMail test exchange."""

    name = "WaledacEarly"

    def __init__(self, gmail_mx_ip: IPv4Address, services=None,
                 config=None) -> None:
        super().__init__(services, config)
        self.gmail_mx_ip = IPv4Address(gmail_mx_ip)

    def smtp_decision(self, ctx: PolicyContext) -> ContainmentDecision:
        if ctx.flow.resp_ip == self.gmail_mx_ip:
            return self.forward(ctx, annotation="permitted test message")
        return super().smtp_decision(ctx)


class WaledacResult:
    """Everything the operator would look at afterwards."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.bot_alive = False
        self.messages_sent = 0
        self.banner_rejections = 0
        self.sink_data_transfers = 0
        self.spam_delivered_outside = 0
        self.inmate_blacklisted = False
        self.banner_fetches = 0

    def __repr__(self) -> str:
        return (
            f"<Waledac {self.mode}: alive={self.bot_alive} "
            f"harvested={self.sink_data_transfers} "
            f"blacklisted={self.inmate_blacklisted}>"
        )


def run_waledac(mode: str, duration: float = 900.0,
                seed: int = 2009) -> WaledacResult:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("waledac-study")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=3, mailboxes_per_domain=20)
    world.add_http_cnc("waledac", "waledac-cc.example",
                       world.default_campaign("waledac", batch_size=10,
                                              send_interval=1.0),
                       path_prefix="/waledac/")

    sub.add_catchall_sink()
    sub.add_smtp_sink(
        banner_grabbing=(mode == "banner-grabbing"),
        default_banner="sink.gq.example ESMTP ready",
    )

    gmail = world.mx_for_domain("gmail.example")
    if mode == "test-message":
        policy = WaledacEarlyPolicy(gmail.mx.host.ip)
        sample = Sample("waledac",
                        params={"test_recipient": "probe@gmail.example"})
    else:
        policy = WaledacPolicy()
        sample = Sample("waledac")

    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, sample)

    farm.run(until=duration)

    result = WaledacResult(mode)
    specimen = getattr(inmate.host, "specimen", None) if inmate.host else None
    if specimen is not None:
        result.bot_alive = specimen.alive
        result.messages_sent = specimen.stats.get("messages_sent", 0)
        result.banner_rejections = specimen.stats.get("banner_rejections", 0)
    sink = sub.sinks["smtp_sink"]
    result.sink_data_transfers = sink.data_transfers
    result.banner_fetches = sink.banner_fetches
    result.spam_delivered_outside = world.total_spam_delivered()
    global_ip = sub.nat.global_for(inmate.vlan)
    if global_ip is not None:
        result.inmate_blacklisted = world.blocklist.listed(global_ip)
    return result


def run_all(duration: float = 900.0, seed: int = 2009):
    return {mode: run_waledac(mode, duration, seed) for mode in MODES}
