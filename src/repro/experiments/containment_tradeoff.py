"""The containment trade-off: behaviour elicited vs harm inflicted.

The crux of §3 and §8: unconstrained execution maximizes both insight
and harm; full isolation minimizes both; static rule sets (Botlab)
land awkwardly in between — leaking harm on unprivileged ports while
killing C&C on privileged ones; GQ's per-family policies elicit
near-unconstrained behaviour at near-zero harm.

Workload: a mixed population — Grum, Rustock, MegaD spambots and a
clickbot — running for the same duration under each regime, against
the same external universe.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.policies import (
    BotlabStaticPolicy,
    FullIsolationPolicy,
    UnconstrainedPolicy,
)
from repro.core.policy import ContainmentPolicy
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.policies.clickbot import ClickbotPolicy
from repro.policies.spambot import GrumPolicy, MegadPolicy, RustockPolicy
from repro.world.builder import ExternalWorld

REGIMES = ("unconstrained", "isolation", "botlab-static", "gq")

FAMILIES = ("grum", "rustock", "megad", "clickbot")

GQ_POLICIES = {
    "grum": GrumPolicy,
    "rustock": RustockPolicy,
    "megad": MegadPolicy,
    "clickbot": ClickbotPolicy,
}


class RegimeResult:
    """Outcome of one regime over the mixed population."""

    def __init__(self, regime: str) -> None:
        self.regime = regime
        # Behaviour elicited (what the analyst learns):
        self.cnc_fetches = 0
        self.spam_sessions_attempted = 0
        self.spam_harvested = 0           # messages in OUR sink
        self.clicks_attempted = 0
        self.families_active = 0
        # Harm inflicted (what the outside world suffers):
        self.spam_delivered_outside = 0
        self.clicks_on_real_publishers = 0
        self.inmates_blacklisted = 0

    @property
    def behaviour_score(self) -> int:
        """Coarse insight metric: activity observable by the analyst."""
        return (self.cnc_fetches + self.spam_sessions_attempted
                + self.clicks_attempted)

    @property
    def harm_score(self) -> int:
        return (self.spam_delivered_outside
                + self.clicks_on_real_publishers
                + self.inmates_blacklisted)

    def __repr__(self) -> str:
        return (
            f"<Regime {self.regime}: behaviour={self.behaviour_score} "
            f"harm={self.harm_score} harvested={self.spam_harvested}>"
        )


def _policy_for(regime: str, family: str) -> ContainmentPolicy:
    if regime == "unconstrained":
        return UnconstrainedPolicy()
    if regime == "isolation":
        return FullIsolationPolicy()
    if regime == "botlab-static":
        return BotlabStaticPolicy()
    return GQ_POLICIES[family]()


def run_regime(regime: str, duration: float = 900.0,
               seed: int = 77) -> RegimeResult:
    if regime not in REGIMES:
        raise ValueError(f"regime must be one of {REGIMES}")
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("tradeoff")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=3, mailboxes_per_domain=30)

    # C&C infrastructure for every family.
    rustock_campaign = world.default_campaign("rustock", batch_size=15,
                                              send_interval=1.0)
    rustock_cnc = world.add_http_cnc("rustock", "rustock-cc.example",
                                     rustock_campaign, port=443,
                                     path_prefix="/mod/")
    world.add_http_cnc("rustock-beacon", "rustock-cc.example",
                       rustock_campaign, port=80, path_prefix="/stat",
                       on_host=rustock_cnc.host)
    world.add_http_cnc("grum", "grum-cc.example",
                       world.default_campaign("grum", batch_size=15,
                                              send_interval=1.0),
                       path_prefix="/grum/")
    world.add_megad_cnc(campaign=world.default_campaign(
        "megad", batch_size=15, send_interval=1.0))
    # Publishers: one on port 80, one on 8080 (static privileged-port
    # rules do nothing for the latter — the Botlab leak).
    publisher80 = world.add_publisher("news-portal.example", port=80)
    publisher8080 = world.add_publisher("ad-network.example", port=8080)
    world.add_click_cnc("clickbot-cc.example", tasks=[
        {"host": "news-portal.example", "path": f"/article/{i}",
         "referer": "http://search.example/q"} for i in range(5)
    ] + [
        {"host": "ad-network.example", "port": 8080,
         "path": f"/click?ad={i}", "referer": "http://news-portal.example/"}
        for i in range(5)
    ], interval=3.0)

    sub.add_catchall_sink()
    sink = sub.add_smtp_sink()

    inmates = {}
    for family in FAMILIES:
        policy = _policy_for(regime, family)
        inmate = sub.create_inmate(image_factory=autoinfect_image(),
                                   policy=policy)
        policy.set_sample(inmate.vlan, inmate.vlan, Sample(family))
        inmates[family] = inmate

    farm.run(until=duration)

    result = RegimeResult(regime)
    for family, inmate in inmates.items():
        specimen = getattr(inmate.host, "specimen", None) \
            if inmate.host else None
        if specimen is None:
            continue
        stats = specimen.stats
        fetches = stats.get("cnc_fetches", 0)
        result.cnc_fetches += fetches
        result.spam_sessions_attempted += stats.get("smtp_sessions", 0)
        result.clicks_attempted += stats.get("clicks", 0) \
            + stats.get("request_failures", 0)
        if fetches:
            result.families_active += 1
    result.spam_harvested = sink.data_transfers
    result.spam_delivered_outside = world.total_spam_delivered()
    result.clicks_on_real_publishers = (publisher80.click_count
                                        + publisher8080.click_count)
    for inmate in inmates.values():
        global_ip = sub.nat.global_for(inmate.vlan)
        if global_ip is not None and world.blocklist.listed(global_ip):
            result.inmates_blacklisted += 1
    return result


_REGIME_FIELDS = (
    "cnc_fetches", "spam_sessions_attempted", "spam_harvested",
    "clicks_attempted", "families_active", "spam_delivered_outside",
    "clicks_on_real_publishers", "inmates_blacklisted",
)


def regime_shard(regime: str, duration: float = 900.0,
                 seed: int = 77) -> dict:
    """Shard task: one regime over the mixed population, as a
    JSON-safe dict — importable by spawn-started campaign workers."""
    result = run_regime(regime, duration, seed)
    payload = {"regime": regime}
    payload.update({field: getattr(result, field)
                    for field in _REGIME_FIELDS})
    payload["metrics"] = {
        "behaviour_score": result.behaviour_score,
        "harm_score": result.harm_score,
        "spam_harvested": result.spam_harvested,
    }
    return payload


def _regime_from_payload(payload: dict) -> RegimeResult:
    result = RegimeResult(payload["regime"])
    for field in _REGIME_FIELDS:
        setattr(result, field, payload[field])
    return result


def run_all_regimes(duration: float = 900.0, seed: int = 77,
                    workers: int = 1, hosts=None,
                    scheduler: str = "steal"
                    ) -> Dict[str, RegimeResult]:
    """Every regime against the same universe — four independent farm
    runs, fanned out across a campaign worker pool (``workers=1`` =
    hermetic serial fallback)."""
    from repro.parallel import Campaign, run_campaign

    campaign = Campaign.config_sweep(
        "containment-tradeoff",
        "repro.experiments.containment_tradeoff:regime_shard",
        [{"regime": regime, "duration": duration, "seed": seed}
         for regime in REGIMES],
        base_seed=seed,
        labels=list(REGIMES),
    )
    result = run_campaign(campaign, workers=workers, hosts=hosts,
                          scheduler=scheduler)
    if not result.ok:
        raise RuntimeError(
            f"containment-tradeoff shards failed: {result.failures}")
    return {payload["regime"]: _regime_from_payload(payload)
            for payload in result.payloads()}
