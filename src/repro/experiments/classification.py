"""§7.1 "Unclear phylogenies": fingerprint-based batch classification.

The batch setup: every sample runs briefly in a classification subfarm
whose policy reflects all outgoing activity to the catch-all sink
(auto-infection excepted); the sink's record of the initial activity
trace becomes the sample's network-level fingerprint.  A classifier
trained on a few ground-truth executions per family then labels the
batch — the approach GQ used on roughly 10,000 unique samples from
pay-per-install distribution servers.

The experiment also reproduces the split-personality observation: a
specimen that sometimes talks MegaD and sometimes Grum classifies
differently across reverted executions, and label noise shows up as
disagreement between AV labels and behavioural classes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.analysis.fingerprint import (
    Fingerprint,
    FingerprintClassifier,
    fingerprint_from_sink,
)
from repro.core.policy import PolicyContext, register_policy
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample, generate_corpus
from repro.policies.autoinfect import AutoInfectionPolicy
from repro.world.builder import ExternalWorld

DEFAULT_FAMILIES = ["rustock", "grum", "waledac", "megad", "clickbot"]


@register_policy
class ClassificationPolicy(AutoInfectionPolicy):
    """Reflect everything except the auto-infection flow."""

    name = "Classification"

    def decide_other(self, ctx: PolicyContext):
        return self.reflect(ctx, "sink", annotation="classification sweep")

    def decide_other_content(self, ctx, data):
        return self.reflect(ctx, "sink", annotation="classification sweep")


def fingerprint_sample(sample: Sample, duration: float = 180.0,
                       seed: int = 0) -> Fingerprint:
    """Run one sample in a fresh classification subfarm and return the
    fingerprint of its reflected initial activity."""
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("classify")
    # DNS must resolve C&C names or HTTP-based families never emit
    # their distinctive request — the world supplies the names, but no
    # actual C&C servers are needed (everything reflects anyway).
    world = ExternalWorld(farm)
    for family in DEFAULT_FAMILIES:
        domain = {
            "rustock": "rustock-cc.example",
            "grum": "grum-cc.example",
            "waledac": "waledac-cc.example",
            "megad": "megad-ctrl.example",
            "clickbot": "clickbot-cc.example",
        }[family]
        world.dns.add_a(domain, world.allocate_ip("198.51.100.0"))

    sink = sub.add_catchall_sink()
    policy = ClassificationPolicy()
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, sample)
    farm.run(until=duration)
    return fingerprint_from_sink(sink.records)


class ClassificationResult:
    def __init__(self) -> None:
        self.total = 0
        self.correct = 0
        self.unknown = 0
        self.label_disagreements = 0
        self.confusion: Dict[Tuple[str, Optional[str]], int] = {}

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def __repr__(self) -> str:
        return (
            f"<Classification {self.correct}/{self.total} correct, "
            f"{self.unknown} unknown, "
            f"{self.label_disagreements} label disagreements>"
        )


def run_classification(
    corpus_size: int = 60,
    families: Optional[List[str]] = None,
    label_noise: float = 0.15,
    duration: float = 180.0,
    seed: int = 3,
) -> ClassificationResult:
    """Train on one clean execution per family, then classify a
    synthetic pay-per-install corpus."""
    families = families or DEFAULT_FAMILIES
    rng = random.Random(seed)

    classifier = FingerprintClassifier()
    for index, family in enumerate(families):
        prototype = fingerprint_sample(Sample(family), duration,
                                       seed=1000 + index)
        classifier.train(family, prototype)

    corpus = generate_corpus(corpus_size, rng, families, label_noise)
    result = ClassificationResult()
    for index, sample in enumerate(corpus):
        fingerprint = fingerprint_sample(sample, duration,
                                         seed=2000 + index)
        predicted, _score = classifier.classify(fingerprint)
        result.total += 1
        key = (sample.family, predicted)
        result.confusion[key] = result.confusion.get(key, 0) + 1
        if predicted is None:
            result.unknown += 1
        elif predicted == sample.family:
            result.correct += 1
        if predicted is not None and predicted != sample.label:
            result.label_disagreements += 1
    return result


def run_split_personality(executions: int = 8, duration: float = 180.0,
                          seed: int = 9) -> List[Optional[str]]:
    """Fingerprint the same split-personality binary across reverted
    executions; returns the per-execution classifications."""
    classifier = FingerprintClassifier()
    for index, family in enumerate(("megad", "grum")):
        classifier.train(family, fingerprint_sample(
            Sample(family), duration, seed=3000 + index))

    sample = Sample("split-personality", label="megad")
    outcomes: List[Optional[str]] = []
    for execution in range(executions):
        fingerprint = fingerprint_sample(sample, duration,
                                         seed=4000 + execution)
        predicted, _ = classifier.classify(fingerprint)
        outcomes.append(predicted)
    return outcomes
