"""Figure 7 regeneration: the "Botfarm" activity report.

The scenario behind the paper's report excerpt: a subfarm running
Grum and Rustock inmates under their family policies with
auto-infection, an SMTP sink configured to drop connections
probabilistically, the whole thing driven from a Figure 6-style
configuration file.  The run produces the same report structure —
FORWARD C&C rows, REFLECT "full SMTP containment" rows dwarfing them,
REWRITE auto-infection rows carrying sample MD5s, and SMTP
session/DATA-transfer totals that differ because of the sink's
probabilistic drops.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import ContainmentConfig, SampleLibrary, apply_config
from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.reporting.report import ActivityReport, render_report
from repro.world.builder import ExternalWorld

BOTFARM_CONFIG = """
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543
"""


class Figure7Result:
    def __init__(self) -> None:
        self.report: ActivityReport = None  # type: ignore[assignment]
        self.rendered = ""
        self.verdict_totals: Dict[str, int] = {}
        self.smtp_sessions = 0
        self.smtp_data_transfers = 0
        self.sink_sessions_dropped = 0
        self.spam_delivered_outside = 0
        self.sample_md5s: Dict[str, str] = {}

    def __repr__(self) -> str:
        return (
            f"<Figure7 verdicts={self.verdict_totals} "
            f"smtp={self.smtp_sessions}/{self.smtp_data_transfers}>"
        )


def run_figure7(duration: float = 1200.0, seed: int = 7,
                drop_probability: float = 0.2,
                send_interval: float = 0.5) -> Figure7Result:
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("Botfarm")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=3, mailboxes_per_domain=40)

    rustock_campaign = world.default_campaign(
        "rustock", batch_size=20, send_interval=send_interval)
    rustock_cnc = world.add_http_cnc("rustock", "rustock-cc.example",
                                     rustock_campaign, port=443,
                                     path_prefix="/mod/")
    world.add_http_cnc("rustock-beacon", "rustock-cc.example",
                       rustock_campaign, port=80, path_prefix="/stat",
                       on_host=rustock_cnc.host)
    world.add_http_cnc("grum", "grum-cc.example",
                       world.default_campaign("grum", batch_size=20,
                                              send_interval=send_interval),
                       path_prefix="/grum/")

    sub.add_catchall_sink()
    sub.add_smtp_sink(drop_probability=drop_probability)

    rustock_sample = Sample("rustock")
    grum_sample = Sample("grum")
    library = SampleLibrary()
    library.add("rustock.100921.a.exe", rustock_sample)
    library.add("grum.100818.a.exe", grum_sample)

    config = ContainmentConfig.parse(BOTFARM_CONFIG)
    apply_config(config, sub, library)

    for vlan in (16, 17, 18, 19):
        sub.create_inmate(image_factory=autoinfect_image(), vlan=vlan)

    # Bro-style streaming analysis: the analyzers see every frame as
    # it is captured, so the stored trace can rotate — day-scale runs
    # stay in bounded memory (§6.5's hourly/daily reporting model).
    from repro.reporting.analyzer import ShimAnalyzer, SmtpActivityAnalyzer

    shims = ShimAnalyzer.streaming(sub.router.trace)
    smtp = SmtpActivityAnalyzer.streaming(sub.router.trace)
    sub.router.trace.max_records = 50_000

    farm.run(until=duration)

    result = Figure7Result()
    result.report = ActivityReport()
    result.report.add_subfarm(sub, world.blocklist, shims=shims, smtp=smtp)
    result.rendered = render_report(result.report)
    result.verdict_totals = result.report.verdict_totals()
    sink = sub.sinks["smtp_sink"]
    result.smtp_sessions = sink.sessions_accepted + sink.sessions_dropped
    result.smtp_data_transfers = sink.data_transfers
    result.sink_sessions_dropped = sink.sessions_dropped
    result.spam_delivered_outside = world.total_spam_delivered()
    result.sample_md5s = {"rustock": rustock_sample.md5,
                          "grum": grum_sample.md5}
    return result
