"""Fault-matrix sweep: chaos scenarios × seeds over whole-farm runs.

Each cell runs :func:`fault_farm_shard` — the streaming whole-farm
workload with the resilience layer enabled (verdict deadlines, CS
failover pool, fail-closed pending policy) under one named fault
scenario from :data:`SCENARIOS`.  Every cell proves the fail-closed
property in-shard two ways: an **isolation certificate**
(:func:`repro.verify.certify_farm` — the static decision surface,
fault windows included, explored exhaustively) and a runtime sweep
(an unverdicted flow must never appear on the upstream trace; any
that does is reported with its (vlan, dst, proto) tuple and checked
against the certificate's grant table).  Because the fault plane
draws all randomness from named RNG streams off the farm seed,
identical seed + identical scenario ⇒ identical digest, which
``--quick`` asserts by running one cell twice.

CLI::

    python -m repro.experiments fault-matrix --workers 4
    python -m repro.experiments.fault_matrix --quick   # make chaos-quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Dict, List, Optional

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.parallel import Campaign, ShardSpec, run_campaign
from repro.parallel.tasks import TARGET_IP, TARGET_PORT, _echo_server, \
    _streaming_image

__all__ = [
    "SCENARIOS",
    "build_fault_farm",
    "fault_farm_shard",
    "build_matrix_campaign",
    "run_matrix",
]

# Named chaos scenarios.  ``trigger`` installs an absence-of-activity
# revert trigger so the life-cycle fault kinds have reverts to fail.
SCENARIOS: Dict[str, dict] = {
    "baseline": {
        "specs": [],
    },
    "cs_crash": {
        "specs": [{"kind": "cs_crash", "at": 30.0}],
    },
    "cs_crash_restore": {
        "specs": [{"kind": "cs_crash", "at": 30.0, "restore_after": 40.0}],
    },
    "shim_partition": {
        "specs": [{"kind": "shim_partition", "start": 20.0, "end": 50.0}],
    },
    "cs_hang": {
        "specs": [{"kind": "cs_hang", "start": 20.0, "end": 60.0}],
    },
    "shim_degraded": {
        "specs": [
            {"kind": "shim_drop", "probability": 0.3,
             "start": 10.0, "end": 80.0},
            {"kind": "shim_delay", "delay": 0.05, "jitter": 0.05,
             "start": 10.0, "end": 80.0},
        ],
    },
    "revert_fail": {
        "specs": [{"kind": "revert_fail", "count": 1}],
        "trigger": True,
        # The absence trigger first fires on the t=120 sweep; the
        # failed revert, its backoff retry, and the eventual reboot
        # need the longer horizon.
        "duration": 260.0,
    },
}

#: The smoke subset ``make chaos-quick`` runs: one crash, one
#: partition, one hang.
QUICK_SCENARIOS = ("cs_crash", "shim_partition", "cs_hang")


def _flow_seen_upstream(record, nat_global, upstream_records) -> bool:
    """Did any upstream frame carry this flow's NAT'd originator tuple?"""
    orig = record.orig
    for rec in upstream_records:
        ip = rec.ip
        if ip is None or ip.proto != orig.proto:
            continue
        if ip.src != nat_global or ip.dst != orig.resp_ip:
            continue
        if ip.proto == PROTO_TCP:
            sport, dport = ip.tcp.sport, ip.tcp.dport
        elif ip.proto == PROTO_UDP:
            sport, dport = ip.udp.sport, ip.udp.dport
        else:
            continue
        if sport == orig.orig_port and dport == orig.resp_port:
            return True
    return False


def _leak_details(farm, subs) -> List[dict]:
    """Fail-closed property, runtime half: flows that never received a
    verdict (or were closed out by the fail-closed pending policy)
    must not appear upstream.  Each violation is returned with the
    leaking flow's (vlan, dst, proto) tuple so the matrix summary can
    name the path, not just count it."""
    upstream = farm.gateway.upstream_trace.records
    leaks: List[dict] = []
    for sub in subs:
        for record in sub.router._flows:
            decision = record.decision
            unverdicted = decision is None or (
                decision.policy == "fail-closed")
            if not unverdicted or not record.inmate_is_originator:
                continue
            nat_global = sub.nat.global_for(record.vlan)
            if nat_global is None:
                continue
            if _flow_seen_upstream(record, nat_global, upstream):
                leaks.append({
                    "subfarm": sub.name,
                    "vlan": record.vlan,
                    "dst": str(record.orig.resp_ip),
                    "proto": ("tcp" if record.orig.proto == PROTO_TCP
                              else "udp"),
                    "dport": record.orig.resp_port,
                })
    return leaks


def build_fault_farm(seed: int, scenario: str = "baseline",
                     subfarms: int = 2, inmates: int = 3,
                     rounds: int = 30, duration: float = 120.0,
                     extra_cs: int = 1,
                     verdict_deadline: float = 5.0,
                     pending_policy: str = "drop",
                     telemetry: bool = True):
    """Build and run one resilient fault-scenario farm; returns the
    completed farm (subfarms under ``farm.subfarms``).  Shared by
    :func:`fault_farm_shard` and ``python -m repro.verify``."""
    cell = SCENARIOS[scenario]
    duration = cell.get("duration", duration)
    config = FarmConfig(
        seed=seed,
        telemetry=telemetry,
        fault_plan={"specs": cell["specs"]},
        verdict_deadline=verdict_deadline,
        pending_policy=pending_policy,
    )
    farm = Farm(config)
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    for index in range(subfarms):
        sub = farm.create_subfarm(f"fault-sub-{index}")
        sub.set_default_policy(AllowAll())
        if extra_cs > 0:
            sub.add_containment_servers(extra_cs)
        vlans = set()
        for _ in range(inmates):
            inmate = sub.create_inmate(
                image_factory=_streaming_image(rounds))
            vlans.add(inmate.vlan)
        if cell.get("trigger"):
            sub.trigger_engine.add_text(
                f"*:{TARGET_PORT}/tcp / 30s < 1 -> revert", vlans)
    farm.run(until=duration)
    return farm


def fault_farm_shard(seed: int, scenario: str = "baseline",
                     subfarms: int = 2, inmates: int = 3,
                     rounds: int = 30, duration: float = 120.0,
                     extra_cs: int = 1,
                     verdict_deadline: float = 5.0,
                     pending_policy: str = "drop",
                     telemetry: bool = True) -> dict:
    """One resilient farm run under one named fault scenario.

    Same workload and digest recipe as
    :func:`repro.parallel.tasks.streaming_farm_shard`, plus: the
    scenario's fault plan installed, ``extra_cs`` standby containment
    servers per subfarm, the certificate-backed leak check,
    per-subfarm resilience summaries, and the rendered report's
    degradation section.  The payload's determinism digest predates
    the certificate fields, so certifying does not perturb replay
    parity.
    """
    farm = build_fault_farm(
        seed, scenario=scenario, subfarms=subfarms, inmates=inmates,
        rounds=rounds, duration=duration, extra_cs=extra_cs,
        verdict_deadline=verdict_deadline, pending_policy=pending_policy,
        telemetry=telemetry)
    subs = list(farm.subfarms.values())  # creation order, digest-stable

    digest = hashlib.sha256()
    counters = {}
    flows_created = packets_relayed = 0
    for sub in subs:
        sub_counters = dict(sub.router.counters)
        counters[sub.name] = sub_counters
        flows_created += sub_counters.get("flows_created", 0)
        packets_relayed += sub_counters.get("packets_relayed", 0)
        digest.update(json.dumps({sub.name: sub_counters},
                                 sort_keys=True).encode())
        for entry in sub.router.flow_log:
            digest.update(
                f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
                f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    snapshot = farm.telemetry_snapshot(include_traces=False)
    digest.update(json.dumps(snapshot, sort_keys=True).encode())

    resilience = {sub.name: sub.resilience.summary() for sub in subs
                  if sub.resilience is not None}
    for name in sorted(resilience):
        digest.update(json.dumps({name: resilience[name]},
                                 sort_keys=True).encode())

    from repro.reporting.report import ActivityReport, render_report
    from repro.verify import certify_farm, check_farm

    certificate = certify_farm(farm, label=f"{scenario}/s{seed}")
    coverage = check_farm(certificate, farm)

    report = ActivityReport.from_subfarms(subs)
    report.attach_certificate(certificate, coverage=coverage.to_dict())
    rendered = render_report(report)

    leak_flows = _leak_details(farm, subs)
    return {
        "seed": seed,
        "scenario": scenario,
        "virtual_seconds": farm.sim.now,
        "metrics": {
            "events": farm.sim.events_processed,
            "flows_created": flows_created,
            "packets_relayed": packets_relayed,
        },
        "counters": counters,
        "resilience": resilience,
        "leaks": len(leak_flows),
        "leak_flows": leak_flows,
        # The proof artifact rides in the payload (outside the replay
        # digest) so merge_results can fold shard certificates into
        # one campaign certificate.
        "certificate": certificate,
        "coverage": coverage.to_dict(),
        "lifecycle": {
            "retries": len(farm.controller.retries_scheduled),
            "abandoned": len(farm.controller.abandoned),
        },
        "degradation_reported": "Containment degradation" in rendered,
        "telemetry": snapshot,
        "digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def build_matrix_campaign(scenarios=None, seeds=None, base_seed: int = 11,
                          subfarms: int = 2, inmates: int = 3,
                          rounds: int = 30, duration: float = 120.0,
                          timeout: Optional[float] = None) -> Campaign:
    scenarios = list(scenarios or SCENARIOS)
    seeds = list(seeds or [base_seed])
    shards = []
    for scenario in scenarios:
        for seed in seeds:
            shards.append(ShardSpec(
                index=len(shards),
                task="repro.experiments.fault_matrix:fault_farm_shard",
                params={"seed": seed, "scenario": scenario,
                        "subfarms": subfarms, "inmates": inmates,
                        "rounds": rounds, "duration": duration},
                timeout=timeout,
                label=f"{scenario}/s{seed}"))
    return Campaign("fault-matrix", shards, base_seed=base_seed,
                    metadata={"scenarios": scenarios, "seeds": seeds})


def run_matrix(scenarios=None, seeds=None, base_seed: int = 11,
               subfarms: int = 2, inmates: int = 3, rounds: int = 30,
               duration: float = 120.0, workers: int = 1,
               timeout: Optional[float] = None, hosts=None,
               scheduler: str = "steal"):
    campaign = build_matrix_campaign(
        scenarios, seeds, base_seed=base_seed, subfarms=subfarms,
        inmates=inmates, rounds=rounds, duration=duration,
        timeout=timeout)
    return run_campaign(campaign, workers=workers, hosts=hosts,
                        scheduler=scheduler)


def summarize(result) -> dict:
    cells = {}
    violations: List[str] = []
    for shard in result.shard_results:
        if not shard.ok:
            violations.append(f"{shard.label}: shard failed "
                              f"({(shard.error or {}).get('kind')})")
            continue
        payload = shard.payload
        certificate = payload.get("certificate") or {}
        coverage = payload.get("coverage") or {}
        cells[shard.label] = {
            "digest": payload["digest"],
            "flows_created": payload["metrics"]["flows_created"],
            "leaks": payload["leaks"],
            "certificate": {
                "result": certificate.get("result"),
                "digest": certificate.get("digest"),
                "exact": certificate.get("exact"),
                "grants": len(certificate.get("grants", [])),
            },
            "coverage": {key: coverage.get(key, 0)
                         for key in ("checked", "covered")},
            "degradation_reported": payload["degradation_reported"],
            "resilience": {
                name: {key: summary[key] for key in
                       ("fail_closed", "fail_open", "retries",
                        "failovers", "degraded_refusals",
                        "degraded_seconds")}
                for name, summary in payload["resilience"].items()
            },
        }
        if payload["leaks"]:
            paths = "; ".join(
                f"(vlan={leak['vlan']}, dst={leak['dst']}:{leak['dport']}, "
                f"proto={leak['proto']})"
                for leak in payload.get("leak_flows", []))
            violations.append(
                f"{shard.label}: {payload['leaks']} unverdicted flow(s) "
                f"leaked upstream{': ' + paths if paths else ''}")
        if certificate.get("result") not in (None, "CONTAINED"):
            path = (certificate.get("counterexample") or {}).get("path", {})
            violations.append(
                f"{shard.label}: isolation certificate is "
                f"{certificate.get('result')} "
                f"(src_vlan={path.get('src_vlan')}, dst={path.get('dst')}, "
                f"proto={path.get('proto')})")
        for entry in coverage.get("violations", []):
            violations.append(
                f"{shard.label}: uncovered {entry.get('source')} "
                f"observation (vlan={entry.get('vlan')}, "
                f"dst={entry.get('destination') or entry.get('dst')}, "
                f"proto={entry.get('proto')})")
        if not payload["degradation_reported"]:
            violations.append(
                f"{shard.label}: report missing degradation section")

    from repro.verify import merge_certificates

    campaign_certificate = merge_certificates(
        [shard.payload.get("certificate")
         for shard in result.shard_results if shard.ok],
        label="fault-matrix")
    return {
        "experiment": "fault-matrix",
        "campaign_digest": result.digest,
        "cells": cells,
        "certificate": campaign_certificate,
        "violations": violations,
    }


def run_quick(workers: int = 1, base_seed: int = 11) -> dict:
    """The ``make chaos-quick`` smoke: one crash, one partition, one
    hang scenario, plus a same-cell determinism replay."""
    result = run_matrix(scenarios=QUICK_SCENARIOS, base_seed=base_seed,
                        workers=workers, timeout=300.0)
    summary = summarize(result)

    # Determinism: the same cell run twice must produce the same digest.
    replay = run_matrix(scenarios=QUICK_SCENARIOS[:1], base_seed=base_seed,
                        workers=1, timeout=300.0)
    first = f"{QUICK_SCENARIOS[0]}/s{base_seed}"
    original = summary["cells"].get(first, {}).get("digest")
    replay_shard = replay.shard_results[0]
    replayed = (replay_shard.payload or {}).get("digest") \
        if replay_shard.ok else None
    summary["determinism"] = {
        "cell": first,
        "match": original is not None and original == replayed,
    }
    if not summary["determinism"]["match"]:
        summary["violations"].append(
            f"{first}: replay digest mismatch ({original} != {replayed})")
    return summary


# ----------------------------------------------------------------------
# CLI (also reachable as ``python -m repro.experiments fault-matrix``)
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fault_matrix",
        description="chaos scenarios x seeds over resilient farm runs")
    parser.add_argument("--quick", action="store_true",
                        help="crash+partition+hang smoke with a "
                             "determinism replay (make chaos-quick)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--indent", type=int, default=2)
    args = parser.parse_args(argv)

    if args.quick:
        summary = run_quick(workers=args.workers, base_seed=args.seed)
    else:
        result = run_matrix(base_seed=args.seed, duration=args.duration,
                            workers=args.workers, timeout=600.0)
        summary = summarize(result)
    print(json.dumps(summary, indent=args.indent, sort_keys=True))
    if summary["violations"]:
        print(f"FAULT-MATRIX VIOLATIONS: {len(summary['violations'])}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
