"""§7.1 "Protocol violations": sink strictness vs spambot dialects.

"Our spam harvest accounting looked healthy at the connection level
(since many connections ensued), but, upon closer inspection, meager
at the content level (since for some bot families no actual message
body transmission occurred)."  The SMTP sink followed the RFC too
closely; repeated HELO/EHLO greetings and loose address formats never
reached the DATA stage.

The experiment crosses a protocol-clean family (MegaD) and a
dialect-quirky family (Grum: repeated HELOs, missing colons, bare
addresses) with a strict and a lenient sink, measuring both the
connection level (sessions) and the content level (DATA transfers).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.farm import Farm, FarmConfig
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.net.smtp import Strictness
from repro.policies.spambot import GrumPolicy, MegadPolicy
from repro.world.builder import ExternalWorld

FAMILIES = ("grum", "megad")
STRICTNESS = (Strictness.STRICT, Strictness.LENIENT)


class StrictnessCell:
    """One (family, strictness) cell of the matrix."""

    def __init__(self, family: str, strictness: Strictness) -> None:
        self.family = family
        self.strictness = strictness
        self.sessions = 0
        self.data_transfers = 0
        self.syntax_errors = 0

    @property
    def content_ratio(self) -> float:
        """DATA transfers per session — the healthy/meager signal."""
        return self.data_transfers / self.sessions if self.sessions else 0.0

    def __repr__(self) -> str:
        return (
            f"<Cell {self.family}/{self.strictness.value}: "
            f"{self.sessions} sessions, {self.data_transfers} transfers>"
        )


def run_cell(family: str, strictness: Strictness,
             duration: float = 600.0, seed: int = 11) -> StrictnessCell:
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("strictness")
    world = ExternalWorld(farm)
    world.add_standard_victims(domains=2, mailboxes_per_domain=20)
    campaign = world.default_campaign(family, batch_size=15,
                                      send_interval=1.0)
    if family == "megad":
        world.add_megad_cnc(campaign=campaign)
        policy = MegadPolicy()
    else:
        world.add_http_cnc(family, f"{family}-cc.example", campaign,
                           path_prefix=f"/{family}/")
        policy = GrumPolicy()

    sub.add_catchall_sink()
    sink = sub.add_smtp_sink(strictness=strictness)
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, Sample(family))
    farm.run(until=duration)

    cell = StrictnessCell(family, strictness)
    cell.sessions = sink.sessions_accepted
    cell.data_transfers = sink.data_transfers
    return cell


def strictness_cell_shard(family: str, strictness: str,
                          duration: float = 600.0,
                          seed: int = 11) -> dict:
    """Shard task: one (family, strictness) cell as a JSON-safe dict —
    importable by spawn-started campaign workers."""
    cell = run_cell(family, Strictness(strictness), duration, seed)
    return {
        "family": cell.family,
        "strictness": strictness,
        "sessions": cell.sessions,
        "data_transfers": cell.data_transfers,
        "metrics": {
            "sessions": cell.sessions,
            "data_transfers": cell.data_transfers,
        },
    }


def _cell_from_payload(payload: dict) -> StrictnessCell:
    cell = StrictnessCell(payload["family"],
                          Strictness(payload["strictness"]))
    cell.sessions = payload["sessions"]
    cell.data_transfers = payload["data_transfers"]
    return cell


def run_matrix(duration: float = 600.0, seed: int = 11,
               workers: int = 1, hosts=None,
               scheduler: str = "steal"
               ) -> Dict[Tuple[str, str], StrictnessCell]:
    """The full family × strictness matrix, one farm per cell.

    Cells are independent whole-farm runs, so they fan out across a
    campaign worker pool; ``workers=1`` (the default, and what tests
    use) runs every cell serially in-process.  Either way the cells
    are built from identical per-shard payloads.
    """
    from repro.parallel import Campaign, run_campaign

    grid = [
        {"family": family, "strictness": strictness.value,
         "duration": duration, "seed": seed}
        for family in FAMILIES for strictness in STRICTNESS
    ]
    campaign = Campaign.config_sweep(
        "smtp-strictness-matrix",
        "repro.experiments.smtp_strictness:strictness_cell_shard",
        grid,
        base_seed=seed,
        labels=[f"{cell['family']}/{cell['strictness']}" for cell in grid],
    )
    result = run_campaign(campaign, workers=workers, hosts=hosts,
                          scheduler=scheduler)
    if not result.ok:
        raise RuntimeError(
            f"strictness matrix shards failed: {result.failures}")
    out: Dict[Tuple[str, str], StrictnessCell] = {}
    for payload in result.payloads():
        cell = _cell_from_payload(payload)
        out[(cell.family, cell.strictness.value)] = cell
    return out
