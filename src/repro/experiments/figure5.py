"""Figure 5: the REWRITE packet ladder, regenerated from a live run.

Reproduces the paper's exact walkthrough: an inmate requests
``bot.exe`` over HTTP; the containment server rewrites the request to
``cleanup.exe`` on its way to the real target and turns the target's
200 into a 404 on the way back.  The harness captures the inmate-side
and containment-side traces and renders the annotated ladder.
"""

from __future__ import annotations

from typing import List

from repro.core.policy import ContainmentPolicy, Rewriter
from repro.farm import Farm, FarmConfig
from repro.net.http import HttpParser, HttpRequest, HttpResponse
from repro.net.packet import PROTO_TCP
from repro.net.addresses import IPv4Address
from repro.services.dhcp import DhcpClient

WEB_IP = "192.150.187.12"  # the figure's target address


class _Fig5Rewriter(Rewriter):
    def on_client_data(self, proxy, data):
        proxy.send_to_server(
            data.replace(b"GET /bot.exe", b"GET /cleanup.exe"))

    def on_server_data(self, proxy, data):
        if data.startswith(b"HTTP/1.1 200"):
            proxy.send_to_client(HttpResponse(404).to_bytes())
        else:
            proxy.send_to_client(data)


class Figure5Policy(ContainmentPolicy):
    name = "Figure5"

    def decide(self, ctx):
        return self.rewrite(ctx, annotation="fig5 rewrite")

    def make_rewriter(self, ctx):
        return _Fig5Rewriter()


class Figure5Result:
    def __init__(self) -> None:
        self.ladder: List[str] = []
        self.request_on_wire = ""
        self.response_to_inmate = ""
        self.seq_bump_observed = False
        self.shim_lengths: List[int] = []

    def rendered(self) -> str:
        return "\n".join(self.ladder)


def run_figure5(seed: int = 9, duration: float = 120.0) -> Figure5Result:
    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("fig5")
    web = farm.add_external_host("webserver", WEB_IP)
    served = []

    def on_accept(conn):
        parser = HttpParser("request")

        def on_data(c, data):
            for request in parser.feed(data):
                served.append(request)
                c.send(HttpResponse(200, body=b"CLEANUP-BYTES").to_bytes())

        conn.on_data = on_data
        conn.on_remote_close = lambda c: c.close()

    web.tcp.listen(80, on_accept)

    responses = []

    def image(host):
        def fetch(configured_host):
            conn = configured_host.tcp.connect(IPv4Address(WEB_IP), 80)
            parser = HttpParser("response")

            def on_data(c, data):
                for response in parser.feed(data):
                    responses.append(response)

            conn.on_established = lambda c: c.send(
                HttpRequest("GET", "/bot.exe",
                            {"Host": "badguys.example"}).to_bytes())
            conn.on_data = on_data

        DhcpClient(host, on_configured=fetch).start()

    sub.create_inmate(image_factory=image, policy=Figure5Policy())
    farm.run(until=duration)

    result = Figure5Result()
    result.request_on_wire = served[0].path if served else "(never arrived)"
    result.response_to_inmate = (
        f"{responses[0].status} {responses[0].reason}" if responses
        else "(none)"
    )

    from repro.core.shim import SHIM_MAGIC

    for record in sub.router.trace.records:
        ip = record.ip
        if ip is None or ip.proto != PROTO_TCP:
            continue
        segment = ip.tcp
        if segment.dport in (67, 68) or segment.sport in (67, 68):
            continue
        note = ""
        payload = segment.payload
        if len(payload) >= 8 and int.from_bytes(payload[:4], "big") == SHIM_MAGIC:
            kind = "REQ SHIM" if payload[6] == 1 else "RSP SHIM"
            note = f"  <-- {kind} ({len(payload)} bytes in sequence space)"
            result.shim_lengths.append(len(payload))
            result.seq_bump_observed = True
        elif payload.startswith(b"GET "):
            note = f"  <-- {payload.splitlines()[0].decode('latin-1')!r}"
        elif payload.startswith(b"HTTP/"):
            note = f"  <-- {payload.splitlines()[0].decode('latin-1')!r}"
        result.ladder.append(
            f"t={record.timestamp:9.4f} [{record.point:11s}] "
            f"{ip.src}:{segment.sport} -> {ip.dst}:{segment.dport} "
            f"{segment.flag_string():11s} seq={segment.seq:<10d} "
            f"ack={segment.ack:<10d} len={len(payload):<5d}{note}"
        )
    return result
