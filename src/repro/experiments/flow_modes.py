"""Figure 2: the six flow-manipulation modes, observed end to end.

One inmate flow per mode; the result records what each party saw, so
the benchmark can print the Figure 2 semantics as a table: where the
flow went, whether contents changed, and what the originator
experienced.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.policy import (
    AllowAll,
    ContainmentPolicy,
    DefaultDeny,
    ReflectAll,
    Rewriter,
)
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.net.http import HttpResponse

WEB_IP = "203.0.113.80"
ALT_IP = "203.0.113.99"

MODES = ("forward", "rate-limit", "drop", "redirect", "reflect", "rewrite")


class ModeObservation:
    """What each party saw for one Figure 2 mode."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.reached_real_target = False
        self.reached_alternate = False
        self.reached_sink = False
        self.client_saw_response: Optional[bytes] = None
        self.client_reset = False
        self.completion_time: Optional[float] = None

    def __repr__(self) -> str:
        return f"<Mode {self.mode}: response={self.client_saw_response!r}>"


class _RedirectPolicy(ContainmentPolicy):
    def decide(self, ctx):
        return self.redirect(ctx, IPv4Address(ALT_IP), 80,
                             annotation="figure2 redirect")


class _LimitPolicy(ContainmentPolicy):
    def decide(self, ctx):
        return self.limit(ctx, rate=2000.0, annotation="figure2 rate-limit")


class _RewritePolicy(ContainmentPolicy):
    class _Rw(Rewriter):
        # Same-length substitution: a naive rewriter must not break
        # the Content-Length framing it passes through untouched.
        def on_server_data(self, proxy, data):
            proxy.send_to_client(data.replace(b"REAL", b"FAKE"))

    def decide(self, ctx):
        return self.rewrite(ctx, annotation="figure2 rewrite")

    def make_rewriter(self, ctx):
        return self._Rw()


POLICIES = {
    "forward": AllowAll,
    "rate-limit": _LimitPolicy,
    "drop": DefaultDeny,
    "redirect": _RedirectPolicy,
    "reflect": ReflectAll,
    "rewrite": _RewritePolicy,
}


def observe_mode(mode: str, duration: float = 120.0,
                 seed: int = 2) -> ModeObservation:
    from repro.inmates.images import autoinfect_image  # noqa: F401 (doc)
    from repro.net.http import HttpParser, HttpRequest
    from repro.services.dhcp import DhcpClient

    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("fig2")
    sub.add_catchall_sink()

    observation = ModeObservation(mode)

    web = farm.add_external_host("webserver", WEB_IP)

    def serve(host, marker):
        def on_accept(conn):
            parser = HttpParser("request")

            def on_data(c, data):
                for _request in parser.feed(data):
                    if marker == b"REAL":
                        observation.reached_real_target = True
                    else:
                        observation.reached_alternate = True
                    c.send(HttpResponse(200, body=marker).to_bytes())

            conn.on_data = on_data
            conn.on_remote_close = lambda c: c.close()

        host.tcp.listen(80, on_accept)

    serve(web, b"REAL")
    alt = farm.add_external_host("altserver", ALT_IP)
    serve(alt, b"ALTERNATE")

    def image(host):
        def fetch(configured_host):
            conn = configured_host.tcp.connect(IPv4Address(WEB_IP), 80)
            parser = HttpParser("response")

            def on_data(c, data):
                for response in parser.feed(data):
                    observation.client_saw_response = response.body
                    observation.completion_time = farm.sim.now

            conn.on_established = lambda c: c.send(
                HttpRequest("GET", "/payload").to_bytes())
            conn.on_data = on_data
            conn.on_reset = lambda c: setattr(observation, "client_reset",
                                              True)

        DhcpClient(host, on_configured=fetch).start()

    policy = POLICIES[mode]()
    sub.create_inmate(image_factory=image, policy=policy)
    farm.run(until=duration)
    observation.reached_sink = \
        sub.sinks["sink"].connections_accepted > 0
    return observation


def observe_all_modes(duration: float = 120.0,
                      seed: int = 2) -> Dict[str, ModeObservation]:
    return {mode: observe_mode(mode, duration, seed) for mode in MODES}
