"""Table 1 regeneration: worm capture in the honeyfarm configuration.

Scenario: GQ in its original worm-era role.  A "wild" infected host in
the external universe scans the farm's globally routable space; the
inbound infection attempt is forwarded to a honeypot inmate
(traditional honeyfarm model); the executed worm incubates, scans out,
and the containment policy redirects its propagation attempts to
fresh inmates — producing the infection chain whose inter-infection
delays are Table 1's incubation periods and whose per-propagation flow
counts are its connection counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.farm import Farm, FarmConfig
from repro.gateway.nat import InboundMode
from repro.inmates.images import honeypot_image
from repro.malware.base import md5_like
from repro.malware.worm_table import WormRow, vuln_ports_for
from repro.malware.worms import WormSpecimen
from repro.net.host import Host
from repro.policies.worm import WormHoneyfarmPolicy

# The wild host concentrates its scanning on a /28 so first contact
# happens within simulated minutes; the farm's behaviour is identical
# for sparser scanning, just slower.
WILD_SCAN_NETWORKS = ["198.18.0.0/28"]


class InfectionEvent:
    __slots__ = ("timestamp", "host_name", "host_ip", "vlan", "sample_id",
                 "attacker_ip", "conns")

    def __init__(self, timestamp: float, host: Host, sample_id: str,
                 attacker_ip=None, conns: int = 0) -> None:
        self.timestamp = timestamp
        self.host_name = host.name
        self.host_ip = host.ip
        self.vlan = getattr(host, "vlan", -1)
        self.sample_id = sample_id
        self.attacker_ip = attacker_ip
        self.conns = conns

    def __repr__(self) -> str:
        return f"<Infection t={self.timestamp:.1f} {self.host_name}>"


class WormCaptureResult:
    """Measured analogue of one Table 1 row."""

    def __init__(self, row: WormRow) -> None:
        self.row = row
        self.events: List[InfectionEvent] = []
        self.redirects = 0
        self.flows_per_propagation: Optional[float] = None
        self.duration = 0.0

    @property
    def event_count(self) -> int:
        return len(self.events)

    @property
    def incubations(self) -> List[float]:
        """Per-worm incubation: each infected inmate's delay from its
        own infection to its first successful onward propagation —
        Table 1's "delay from initial infection in our farm to
        subsequent infection of the next inmate"."""
        infected_at = {}
        for event in self.events:
            if event.host_ip is not None:
                infected_at.setdefault(event.host_ip, event.timestamp)
        gaps = []
        credited = set()
        for event in self.events:
            attacker = event.attacker_ip
            if attacker is None or attacker in credited:
                continue
            if attacker in infected_at:
                credited.add(attacker)
                gaps.append(event.timestamp - infected_at[attacker])
        return gaps

    @property
    def conns_per_infection(self) -> Optional[int]:
        """Exploit connections per completed propagation (# CONNS)."""
        counts = [e.conns for e in self.events if e.conns]
        return counts[0] if counts else None

    @property
    def mean_incubation(self) -> Optional[float]:
        gaps = self.incubations
        return sum(gaps) / len(gaps) if gaps else None

    def __repr__(self) -> str:
        return (
            f"<WormCapture {self.row.label or self.row.executable} "
            f"events={self.event_count} "
            f"incubation={self.mean_incubation}>"
        )


def run_worm_capture(
    row: WormRow,
    inmates: int = 5,
    duration: float = 3600.0,
    seed: int = 0,
    scan_interval: float = 3.0,
) -> WormCaptureResult:
    """Run the capture scenario for one Table 1 row."""
    farm = Farm(FarmConfig(seed=seed, inbound_mode=InboundMode.FORWARD))
    sub = farm.create_subfarm("honeyfarm")
    sub.add_catchall_sink()
    policy = WormHoneyfarmPolicy()
    sub.set_default_policy(policy)

    result = WormCaptureResult(row)
    sample_id = md5_like(f"{row.executable}/{row.label}/{seed}")
    worm_params = {
        "scan_networks": WILD_SCAN_NETWORKS,
        "scan_interval": scan_interval,
    }

    def on_infected(host: Host, family_key: str, wire_sample: str,
                    params: dict) -> None:
        result.events.append(InfectionEvent(
            farm.sim.now, host, wire_sample,
            attacker_ip=params.get("attacker_ip"),
            conns=params.get("conns", 0),
        ))
        worm = WormSpecimen.from_row(host, row, sample_id=wire_sample,
                                     extra_params=worm_params)
        worm.start()

    ports = vuln_ports_for(row.label)
    for _ in range(inmates):
        sub.create_inmate(
            image_factory=honeypot_image(on_infected, ports=ports),
        )

    # The wild infected host outside: same worm, scanning toward us.
    # Capped at one successful propagation so the measured chain is
    # in-farm (wild re-infections would mask slow incubations).
    wild_host = farm.add_external_host("wild-infectee", "203.0.113.66")
    wild = WormSpecimen.from_row(
        wild_host, row, sample_id=sample_id,
        extra_params=dict(worm_params, incubation=1.0, max_propagations=1),
    )
    wild.start()

    farm.run(until=duration)
    result.duration = farm.sim.now
    result.redirects = policy.redirects_issued
    if result.event_count > 1:
        # Connections per in-farm propagation, from the flow log: the
        # REDIRECT verdicts carried the exploit connections.
        in_farm = result.event_count - 1
        result.flows_per_propagation = result.redirects / max(in_farm, 1)
    return result


def run_table1(
    rows: List[WormRow],
    inmates: int = 5,
    duration: float = 3600.0,
    seed: int = 0,
) -> List[WormCaptureResult]:
    return [
        run_worm_capture(row, inmates=inmates, duration=duration,
                         seed=seed + index)
        for index, row in enumerate(rows)
    ]
