"""§7.1 "Unexpected visitors": Storm proxy bots and the FTP surprise.

Two containment postures around the same infiltration:

* ``tight`` — the paper's actual policy: preserve inbound
  reachability, forward the HTTP-borne C&C, reflect all other
  outgoing activity to the sink.  The botmaster's SOCKS-framed FTP
  iframe-injection jobs land at the sink; the victim site survives;
  the sink's records are how GQ noticed the jobs at all.
* ``loose`` — the counterfactual the paper warns about ("articles on
  Storm frequently stated that its proxy bots did not themselves
  engage in malicious activity, and a correspondingly loose
  containment policy would have allowed these attacks to proceed
  unhindered"): outbound FTP forwarded.  The site gets defaced.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import PolicyContext
from repro.core.verdicts import ContainmentDecision
from repro.farm import Farm, FarmConfig
from repro.gateway.nat import InboundMode
from repro.inmates.images import autoinfect_image
from repro.malware.corpus import Sample
from repro.malware.storm import StormBotmaster
from repro.policies.storm import StormPolicy
from repro.world.builder import ExternalWorld

POSTURES = ("tight", "loose")

FTP_CREDENTIALS = ("webmaster", "hunter2")


class StormLoosePolicy(StormPolicy):
    """The counterfactual: trust that proxy bots are harmless."""

    name = "StormLoose"

    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.inmate_is_originator and ctx.flow.resp_port == 21:
            return self.forward(ctx, annotation="loose: FTP believed benign")
        return super().decide_other(ctx)


class StormResult:
    def __init__(self, posture: str) -> None:
        self.posture = posture
        self.jobs_attempted = 0
        self.jobs_succeeded = 0
        self.site_defaced = False
        self.ftp_attempts_at_sink = 0
        self.overlay_connections = 0
        self.socks_jobs = 0

    def __repr__(self) -> str:
        return (
            f"<Storm {self.posture}: jobs={self.jobs_attempted} "
            f"defaced={self.site_defaced} "
            f"sink_ftp={self.ftp_attempts_at_sink}>"
        )


def run_storm(posture: str, duration: float = 900.0,
              seed: int = 2008) -> StormResult:
    if posture not in POSTURES:
        raise ValueError(f"posture must be one of {POSTURES}")
    farm = Farm(FarmConfig(seed=seed, inbound_mode=InboundMode.FORWARD))
    sub = farm.create_subfarm("storm-study")
    world = ExternalWorld(farm)
    site = world.add_ftp_site("smallbiz.example", *FTP_CREDENTIALS)

    sub.add_catchall_sink()
    policy = StormLoosePolicy() if posture == "loose" else StormPolicy()
    sample = Sample("storm")
    inmate = sub.create_inmate(image_factory=autoinfect_image(),
                               policy=policy)
    policy.set_sample(inmate.vlan, inmate.vlan, sample)

    # Let the bot boot and get its global address, then aim the
    # upstream botmaster at it.
    farm.run(until=60)
    global_ip = sub.nat.global_for(inmate.vlan)
    assert global_ip is not None, "inmate failed to come up"
    botmaster_host = farm.add_external_host("storm-upstream", "203.0.113.99")
    botmaster = StormBotmaster(
        farm.sim, botmaster_host,
        bot_addresses=[global_ip],
        ftp_target=site.host.ip,
        ftp_credentials=FTP_CREDENTIALS,
        job_interval=60.0,
    )
    botmaster.start()
    farm.run(until=duration)

    result = StormResult(posture)
    result.jobs_attempted = botmaster.jobs_attempted
    result.jobs_succeeded = botmaster.jobs_succeeded
    result.site_defaced = site.defaced
    specimen = getattr(inmate.host, "specimen", None) if inmate.host else None
    if specimen is not None:
        result.overlay_connections = specimen.stats.get("overlay_connections", 0)
        result.socks_jobs = specimen.stats.get("socks_jobs", 0)
    sink = sub.sinks["sink"]
    result.ftp_attempts_at_sink = sum(
        1 for record in sink.records if record.dst_port == 21
    )
    return result


def run_both(duration: float = 900.0, seed: int = 2008):
    return {posture: run_storm(posture, duration, seed)
            for posture in POSTURES}
