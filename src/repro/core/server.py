"""The containment server (§5.4, §6.2).

Both a machine and an application server: it runs on a host inside the
subfarm, listens on one fixed TCP and UDP port, and — through the shim
protocol — issues the containment verdict for every flow entering or
leaving the inmate network.  For REWRITE verdicts it stays in the path
as a transparent application-layer proxy, optionally opening an onward
connection through its per-flow nonce port.

Beyond flow verdicts, the server also controls inmate life-cycles: it
witnesses all network activity, so its :class:`~repro.core.triggers.
TriggerEngine` can react to the presence — and absence — of network
events by reverting, rebooting, or terminating inmates through the
inmate controller on the management network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.policy import (
    ContainmentPolicy,
    FlowProxy,
    PolicyContext,
    PolicyMap,
    Rewriter,
)
from repro.core.shim import (
    REQUEST_SHIM_LEN,
    RequestShim,
    ResponseShim,
)
from repro.core.verdicts import ContainmentDecision, Verdict
from repro.net.addresses import IPv4Address
from repro.net.errors import ParseError
from repro.net.flow import FiveTuple
from repro.net.host import Host
from repro.net.packet import IPv4Packet, PROTO_UDP, UDPDatagram
from repro.net.tcp import TcpConnection
from repro.sim.engine import Simulator

LifecycleCallback = Callable[[str, int], None]

CS_DEFAULT_PORT = 6666


class VerdictRecord:
    """One verdict issued, kept for reporting and verification."""

    __slots__ = ("timestamp", "vlan", "flow", "decision")

    def __init__(self, timestamp: float, vlan: int, flow: FiveTuple,
                 decision: ContainmentDecision) -> None:
        self.timestamp = timestamp
        self.vlan = vlan
        self.flow = flow
        self.decision = decision


class _ServerFlowProxy(FlowProxy):
    """Concrete FlowProxy wired to the server's TCP machinery."""

    def __init__(self, server: "ContainmentServer",
                 client_conn: TcpConnection, ctx: PolicyContext,
                 rewriter: Rewriter) -> None:
        self._server = server
        self._client = client_conn
        self._ctx = ctx
        self._rewriter = rewriter
        self._upstream: Optional[TcpConnection] = None
        self._upstream_established = False
        self._upstream_queue: List[bytes] = []
        self._upstream_close_pending = False

    @property
    def context(self) -> PolicyContext:
        return self._ctx

    def send_to_client(self, data: bytes) -> None:
        from repro.net.tcp import TcpState

        if self._client.is_open or self._client.state is TcpState.SYN_RCVD:
            self._client.send(data)
            self._server._m_bytes_to_client.inc(len(data))

    def send_to_server(self, data: bytes) -> None:
        if self._upstream is None:
            raise RuntimeError("rewriter never called connect_out()")
        if self._upstream_established:
            self._upstream.send(data)
        else:
            self._upstream_queue.append(data)
        self._server._m_bytes_to_server.inc(len(data))

    def connect_out(self, ip: Optional[IPv4Address] = None,
                    port: Optional[int] = None) -> None:
        if self._upstream is not None:
            return
        target_ip = ip if ip is not None else self._ctx.flow.resp_ip
        target_port = port if port is not None else self._ctx.flow.resp_port
        host = self._server.host
        conn = host.tcp.connect(target_ip, target_port,
                                local_port=self._ctx.nonce_port)
        self._upstream = conn
        conn.on_established = self._on_upstream_established
        conn.on_data = lambda c, d: self._rewriter.on_server_data(self, d)
        conn.on_remote_close = lambda c: self._rewriter.on_server_close(self)
        conn.on_reset = lambda c: self._rewriter.on_server_close(self)
        conn.on_fail = lambda c: self._rewriter.on_server_close(self)

    def _on_upstream_established(self, conn: TcpConnection) -> None:
        self._upstream_established = True
        for chunk in self._upstream_queue:
            conn.send(chunk)
        self._upstream_queue.clear()
        if self._upstream_close_pending:
            conn.close()

    def close_client(self) -> None:
        if not self._client.fully_closed:
            self._client.close()

    def close_server(self) -> None:
        if self._upstream is None:
            return
        if self._upstream_established:
            if not self._upstream.fully_closed:
                self._upstream.close()
        else:
            self._upstream_close_pending = True


class _CsConnection:
    """Server-side state machine for one contained TCP flow."""

    def __init__(self, server: "ContainmentServer",
                 conn: TcpConnection) -> None:
        self.server = server
        self.conn = conn
        self.buffer = bytearray()
        self.shim: Optional[RequestShim] = None
        self.policy: Optional[ContainmentPolicy] = None
        self.ctx: Optional[PolicyContext] = None
        self.decision: Optional[ContainmentDecision] = None
        self.rewriter: Optional[Rewriter] = None
        self.proxy: Optional[_ServerFlowProxy] = None
        self.shim_seen_at: Optional[float] = None

        conn.on_data = self._on_data
        conn.on_remote_close = self._on_remote_close
        conn.on_reset = self._on_reset
        conn.on_closed = self._on_reset

    # ------------------------------------------------------------------
    def _on_data(self, conn: TcpConnection, data: bytes) -> None:
        # The malice barrier also guards the server's own ingest: a
        # ParseError from the shim parser — or from any protocol parser
        # a policy/rewriter runs over inmate content — aborts only this
        # flow's leg, never the server's event loop.
        try:
            self._on_data_body(conn, data)
        except ParseError as error:
            barrier = self.server.barrier
            if barrier is not None:
                barrier.record(error, data=bytes(data))
            conn.abort()

    def _on_data_body(self, conn: TcpConnection, data: bytes) -> None:
        if self.decision is not None and self.rewriter is not None:
            self.rewriter.on_client_data(self.proxy, data)
            return
        self.buffer.extend(data)
        if self.shim is None:
            if len(self.buffer) < REQUEST_SHIM_LEN:
                return
            blob = bytes(self.buffer[:REQUEST_SHIM_LEN])
            del self.buffer[:REQUEST_SHIM_LEN]
            # A malformed request shim propagates to _on_data's
            # barrier, which aborts this connection.
            self.shim = RequestShim.from_bytes(blob)
            self.shim_seen_at = self.server.sim.now
            self.policy, self.ctx = self.server._resolve(self.shim)
            decision = self.policy.decide(self.ctx)
            if decision is not None:
                self.server.schedule_issue(self, decision)
                return
        if self.shim is not None and self.decision is None and self.buffer:
            decision = self.policy.decide_content(self.ctx, bytes(self.buffer))
            if decision is not None:
                self.server.schedule_issue(self, decision)

    def _issue(self, decision: ContainmentDecision) -> None:
        if self.decision is not None:
            return  # duplicate scheduling race
        if self.conn.fully_closed:
            return  # client vanished while queued
        self.decision = decision
        assert self.shim is not None and self.ctx is not None
        self.server._record(self.shim, decision,
                            received_at=self.shim_seen_at)
        response = ResponseShim.from_decision(self.shim.flow, decision)
        self.conn.send(response.to_bytes())
        if decision.verdict & Verdict.REWRITE:
            self.rewriter = self.policy.make_rewriter(self.ctx)
            self.proxy = _ServerFlowProxy(self.server, self.conn, self.ctx,
                                          self.rewriter)
            self.rewriter.on_open(self.proxy)
            if self.buffer:
                pending = bytes(self.buffer)
                self.buffer.clear()
                self.rewriter.on_client_data(self.proxy, pending)
        # For endpoint verdicts the gateway hands the flow off and
        # aborts this leg; nothing further to do here.

    def _on_remote_close(self, conn: TcpConnection) -> None:
        if self.rewriter is not None:
            self.rewriter.on_client_close(self.proxy)
        else:
            conn.close()

    def _on_reset(self, conn: TcpConnection) -> None:
        if self.proxy is not None:
            self.proxy.close_server()


class ContainmentServer:
    """The application server issuing containment verdicts."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        policy_map: PolicyMap,
        services: Optional[Dict[str, Tuple[IPv4Address, int]]] = None,
        tcp_port: int = CS_DEFAULT_PORT,
        udp_port: int = CS_DEFAULT_PORT,
        lifecycle: Optional[LifecycleCallback] = None,
        subfarm: object = None,
        service_time: float = 0.0,
    ) -> None:
        self.sim = sim
        self.host = host
        self.policy_map = policy_map
        # Kept by reference: subfarms register services after server
        # creation and policies must see them.
        self.services = services if services is not None else {}
        self.tcp_port = tcp_port
        self.udp_port = udp_port
        self.lifecycle = lifecycle
        self.subfarm = subfarm

        self.verdict_log: List[VerdictRecord] = []
        self.verdict_counts: Dict[str, int] = {}
        self.trigger_engine = None  # set via attach_triggers()
        # Fault-injection seam: a ServerFaultState installed by the
        # farm's FaultInjector (None in fault-free farms).
        self.fault_state = None
        # Malice-barrier seam: the subfarm points this at the router's
        # barrier so gateway and server drops share one ledger.
        self.barrier = None
        # Decision journal (NULL_JOURNAL unless the farm attached one).
        self.journal = sim.journal

        tel = sim.telemetry
        self._m_verdicts = tel.counter(
            "cs.verdicts", "Verdicts issued, by type")
        self._h_latency = tel.histogram(
            "cs.verdict.latency",
            "Virtual seconds from shim receipt to verdict"
        ).bind(server=host.name)
        self._m_bytes_to_server = tel.counter(
            "cs.proxy.bytes_to_server", "REWRITE bytes proxied onward"
        ).bind(server=host.name)
        self._m_bytes_to_client = tel.counter(
            "cs.proxy.bytes_to_client", "REWRITE bytes proxied back"
        ).bind(server=host.name)

        # Processing model for scalability studies (§7.2): each
        # verdict occupies the (single-CPU) server for service_time
        # seconds; concurrent flows queue.
        self.service_time = service_time
        self._busy_until = 0.0
        self.queue_delays: List[float] = []

        # Per-flow decisions for UDP (keyed on the original tuple).
        self._udp_decisions: Dict[FiveTuple, ContainmentDecision] = {}

        host.tcp.listen(tcp_port, self._accept)
        host.udp.bind(udp_port, self._udp_datagram)

    # ------------------------------------------------------------------
    def attach_triggers(self, engine) -> None:
        """Wire an activity-trigger engine (see repro.core.triggers)."""
        self.trigger_engine = engine

    def _accept(self, conn: TcpConnection) -> None:
        _CsConnection(self, conn)

    def responsive(self) -> bool:
        """Management-network health check: would this server answer a
        probe right now?  (The failover pool's prober calls this.)"""
        fault = self.fault_state
        return fault is None or fault.responsive(self.sim.now)

    def schedule_issue(self, cs_conn: _CsConnection,
                       decision: ContainmentDecision) -> None:
        """Issue a verdict, honouring the processing-time model."""
        extra = 0.0
        fault = self.fault_state
        if fault is not None:
            if fault.crashed:
                return  # a crashed server issues nothing
            now = self.sim.now
            if fault.hung(now):
                # Held until the hang window closes, then re-scheduled
                # — the late-verdict case the router must tolerate.
                fault.hold(cs_conn, decision)
                return
            extra = fault.extra_service_time(now)
        if self.service_time <= 0.0 and extra <= 0.0:
            cs_conn._issue(decision)
            return
        now = self.sim.now
        start = max(now, self._busy_until)
        self._busy_until = start + self.service_time + extra
        delay = self._busy_until - now
        self.queue_delays.append(delay)
        self.sim.schedule(delay, cs_conn._issue, decision,
                          label="cs-service")

    def _resolve(self, shim: RequestShim) -> Tuple[ContainmentPolicy,
                                                   PolicyContext]:
        policy = self.policy_map.resolve(shim.vlan_id)
        if not policy.services:
            policy.services = self.services
        ctx = PolicyContext(
            flow=shim.flow,
            vlan_id=shim.vlan_id,
            nonce_port=shim.nonce_port,
            now=self.sim.now,
            services=self.services,
            subfarm=self.subfarm,
            # Inmates live in RFC 1918 space behind the NAT; flows
            # originated outside carry a global source address.
            inmate_is_originator=shim.flow.orig_ip.is_rfc1918(),
        )
        return policy, ctx

    def _record(self, shim: RequestShim,
                decision: ContainmentDecision,
                received_at: Optional[float] = None) -> None:
        record = VerdictRecord(self.sim.now, shim.vlan_id, shim.flow, decision)
        self.verdict_log.append(record)
        key = decision.verdict.label
        self.verdict_counts[key] = self.verdict_counts.get(key, 0) + 1
        self._m_verdicts.inc(server=self.host.name, verdict=key)
        if received_at is not None:
            self._h_latency.observe(self.sim.now - received_at)
        if self.journal.enabled:
            # The router bound the gateway-side flow id to this alias
            # when it admitted the flow; resolving it stitches the CS
            # verdict into the same causal chain.
            alias = f"vlan{shim.vlan_id}/{shim.flow}"
            engine = self.trigger_engine
            self.journal.record(
                "verdict.issued",
                flow=self.journal.flow_for(alias) or alias,
                vlan=shim.vlan_id, server=self.host.name,
                verdict=key, policy=decision.policy,
                trigger_rules=(len(engine._rules)
                               if engine is not None else 0),
                trigger_suspended=(bool(engine._suspended)
                                   if engine is not None else False))
        if self.trigger_engine is not None:
            self.trigger_engine.flow_event(shim.vlan_id, self.sim.now,
                                           shim.flow)

    # ------------------------------------------------------------------
    # UDP containment
    # ------------------------------------------------------------------
    def _udp_datagram(self, host: Host, packet: IPv4Packet,
                      datagram: UDPDatagram) -> None:
        try:
            self._udp_datagram_body(host, packet, datagram)
        except ParseError as error:
            barrier = self.barrier
            if barrier is not None:
                barrier.record(error, data=bytes(datagram.payload))

    def _udp_datagram_body(self, host: Host, packet: IPv4Packet,
                           datagram: UDPDatagram) -> None:
        fault = self.fault_state
        if fault is not None and not fault.responsive(self.sim.now):
            return  # crashed or hung: datagrams vanish
        payload = datagram.payload
        if len(payload) < REQUEST_SHIM_LEN:
            return
        # A malformed shim propagates to _udp_datagram's barrier.
        shim = RequestShim.from_bytes(payload[:REQUEST_SHIM_LEN],
                                      proto=PROTO_UDP)
        content = payload[REQUEST_SHIM_LEN:]
        policy, ctx = self._resolve(shim)

        decision = self._udp_decisions.get(shim.flow)
        first = decision is None
        if first:
            decision = policy.decide(ctx)
            if decision is None:
                decision = policy.decide_content(ctx, content)
            if decision is None:
                decision = ContainmentDecision.drop(
                    policy=policy.policy_name, annotation="udp undecided")
            self._udp_decisions[shim.flow] = decision
            self._record(shim, decision)

        response = ResponseShim.from_decision(shim.flow, decision).to_bytes()
        if decision.verdict & Verdict.REWRITE:
            reply = policy.rewrite_datagram(ctx, content) \
                if hasattr(policy, "rewrite_datagram") else None
            if reply:
                response += reply
            elif not first:
                return  # nothing to say for this datagram
        host.udp.sendto(response, packet.src, datagram.sport,
                        src_port=self.udp_port)

    # ------------------------------------------------------------------
    def issue_lifecycle(self, action: str, vlan: int) -> None:
        """Send a life-cycle action to the inmate controller."""
        if self.lifecycle is not None:
            self.lifecycle(action, vlan)

    def __repr__(self) -> str:
        return (
            f"<ContainmentServer {self.host.name} verdicts="
            f"{sum(self.verdict_counts.values())}>"
        )
