"""Containment verdicts — the flow manipulation modes of Figure 2.

The containment server answers every new flow with a verdict:

* ``FORWARD`` — let the flow through to its intended destination.
* ``LIMIT``   — forward, but rate-limit it.
* ``DROP``    — kill the flow.
* ``REDIRECT``— connect the inmate to a *different* destination.
* ``REFLECT`` — bounce the flow to a sink server inside the farm.
* ``REWRITE`` — proxy the flow through the containment server, which
  may alter, truncate, or extend its contents.

Endpoint control (the first five) is decided once at flow start and
then enforced by the gateway alone; content control (REWRITE) keeps
the containment server in the path for the flow's lifetime.  The
paper notes verdicts may combine "when feasible" — e.g. redirecting a
flow while also rewriting contents — which :class:`Verdict` models as
a flag set with exactly one endpoint op.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.net.addresses import IPv4Address


class Verdict(enum.IntFlag):
    """Numeric opcodes carried in the response shim."""

    FORWARD = 1
    LIMIT = 2
    DROP = 4
    REDIRECT = 8
    REFLECT = 16
    REWRITE = 32

    @property
    def label(self) -> str:
        """Stable human-readable name, e.g. ``FORWARD`` or
        ``REDIRECT|REWRITE`` (IntFlag.__str__ is version-dependent)."""
        parts = [
            op.name for op in (Verdict.FORWARD, Verdict.LIMIT, Verdict.DROP,
                               Verdict.REDIRECT, Verdict.REFLECT,
                               Verdict.REWRITE)
            if self & op
        ]
        return "|".join(parts) if parts else "NONE"

    @property
    def endpoint_op(self) -> "Verdict":
        """The single endpoint-control component of this verdict."""
        for op in (Verdict.DROP, Verdict.REDIRECT, Verdict.REFLECT,
                   Verdict.FORWARD, Verdict.LIMIT):
            if self & op:
                return op
        raise ValueError(f"verdict {self!r} has no endpoint op")

    @property
    def is_content_control(self) -> bool:
        return bool(self & Verdict.REWRITE)

    @property
    def grants_world(self) -> bool:
        """True when the endpoint op sends the flow on to the
        destination the inmate addressed — FORWARD or LIMIT — i.e. the
        only verdicts that may open an inmate→world path on their own.
        REDIRECT may still reach the world through its *target*; the
        isolation verifier (:mod:`repro.verify`) classifies that case
        by where the target address lives."""
        return bool(self & (Verdict.FORWARD | Verdict.LIMIT)) and not (
            self & (Verdict.DROP | Verdict.REDIRECT | Verdict.REFLECT))

    def validate(self) -> None:
        """Reject nonsensical combinations (e.g. DROP + REWRITE)."""
        endpoint_ops = [
            op for op in (Verdict.FORWARD, Verdict.LIMIT, Verdict.DROP,
                          Verdict.REDIRECT, Verdict.REFLECT)
            if self & op
        ]
        if len(endpoint_ops) == 0 and not self & Verdict.REWRITE:
            raise ValueError("verdict must include an operation")
        if len(endpoint_ops) > 1 and set(endpoint_ops) != {
            Verdict.FORWARD, Verdict.LIMIT
        }:
            raise ValueError(f"conflicting endpoint ops in {self!r}")
        if self & Verdict.DROP and self & Verdict.REWRITE:
            raise ValueError("DROP cannot combine with REWRITE")


class ContainmentDecision:
    """A verdict plus its parameters, as issued by a policy.

    ``target`` carries the resulting destination for REDIRECT/REFLECT
    (the response shim's "resulting endpoint four-tuple").  ``rate``
    carries the LIMIT budget in new-flow-bytes per second.  ``policy``
    and ``annotation`` flow into the response shim verbatim and end up
    in the activity reports.
    """

    __slots__ = ("verdict", "target_ip", "target_port", "rate",
                 "policy", "annotation")

    def __init__(
        self,
        verdict: Verdict,
        target_ip: Optional[IPv4Address] = None,
        target_port: Optional[int] = None,
        rate: Optional[float] = None,
        policy: str = "",
        annotation: str = "",
    ) -> None:
        verdict.validate()
        self.verdict = verdict
        self.target_ip = IPv4Address(target_ip) if target_ip is not None else None
        self.target_port = target_port
        self.rate = rate
        self.policy = policy
        self.annotation = annotation
        needs_target = verdict & (Verdict.REDIRECT | Verdict.REFLECT)
        if needs_target and self.target_ip is None:
            raise ValueError(f"{verdict!r} requires a target address")

    # Convenience constructors mirror Figure 2 -------------------------
    @classmethod
    def forward(cls, policy: str = "", annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.FORWARD, policy=policy, annotation=annotation)

    @classmethod
    def limit(cls, rate: float, policy: str = "",
              annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.LIMIT, rate=rate, policy=policy, annotation=annotation)

    @classmethod
    def drop(cls, policy: str = "", annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.DROP, policy=policy, annotation=annotation)

    @classmethod
    def redirect(cls, ip: IPv4Address, port: Optional[int] = None,
                 policy: str = "", annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.REDIRECT, target_ip=ip, target_port=port,
                   policy=policy, annotation=annotation)

    @classmethod
    def reflect(cls, sink_ip: IPv4Address, sink_port: Optional[int] = None,
                policy: str = "", annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.REFLECT, target_ip=sink_ip, target_port=sink_port,
                   policy=policy, annotation=annotation)

    @classmethod
    def rewrite(cls, policy: str = "", annotation: str = "") -> "ContainmentDecision":
        return cls(Verdict.REWRITE, policy=policy, annotation=annotation)

    def __repr__(self) -> str:
        extra = ""
        if self.target_ip is not None:
            extra = f" -> {self.target_ip}:{self.target_port or '*'}"
        if self.rate is not None:
            extra += f" rate={self.rate}"
        return f"<Decision {self.verdict!r}{extra} policy={self.policy!r}>"
