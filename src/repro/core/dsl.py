"""A domain-specific containment policy language (§8 future work).

"The primary reason for our current use of Python is experience and
convenience, but the general-purpose nature of the language
complicates the creation of a tool-chain for processing policies ...
A more domain-specific, abstract language (like in Bro) could
simplify this."

This module implements that language.  A policy is a list of rules,
evaluated top to bottom; the first match wins; the mandatory
``default`` clause catches the rest.  Because rules are data, the
tool-chain the paper wished for becomes straightforward — the test
generator in :mod:`repro.analysis.policy_testing` enumerates the
rule set's decision surface mechanically.

Grammar (one rule per line, ``#`` comments)::

    rule      := [guard] match "->" action
    guard     := "inbound" | "outbound"
    match     := "any" | port-spec [content-spec]
    port-spec := "port" NUMBER["-"NUMBER] ("/tcp" | "/udp")
    content-spec := "content" ("~" | "=~") STRING     # prefix / regex
    action    := "forward" | "drop"
               | "reflect" [SERVICE]
               | "redirect" IP [":" PORT]
               | "limit" RATE
               | "rewrite"
    default   := "default" action

Example::

    # Grum containment, as a policy program
    outbound port 25/tcp            -> reflect smtp_sink
    outbound port 80/tcp content ~ "GET /grum/" -> forward
    default                         -> reflect sink
"""

from __future__ import annotations

import re
import shlex
from typing import List, Optional

from repro.core.policy import (
    ContainmentPolicy,
    PolicyContext,
    register_policy,
)
from repro.core.verdicts import ContainmentDecision
from repro.net.addresses import IPv4Address
from repro.net.packet import PROTO_TCP, PROTO_UDP


class DslError(ValueError):
    """Malformed policy program.

    Structured for tooling (the isolation verifier and tests match on
    these instead of parsing messages): ``reason`` is a stable
    kebab-case tag (``missing-default``, ``duplicate-default``,
    ``unknown-action``, ``bad-port-spec``, ``shadowed-rule``, ...),
    ``line_number`` the 1-based program line (None for whole-program
    errors), ``line`` the offending source text.
    """

    def __init__(self, message: str, reason: str = "syntax",
                 line_number: Optional[int] = None,
                 line: str = "") -> None:
        super().__init__(message)
        self.reason = reason
        self.line_number = line_number
        self.line = line


class Action:
    """A parsed action clause."""

    __slots__ = ("kind", "service", "target_ip", "target_port", "rate")

    def __init__(self, kind: str, service: Optional[str] = None,
                 target_ip: Optional[IPv4Address] = None,
                 target_port: Optional[int] = None,
                 rate: Optional[float] = None) -> None:
        self.kind = kind
        self.service = service
        self.target_ip = target_ip
        self.target_port = target_port
        self.rate = rate

    def __repr__(self) -> str:
        extras = self.service or self.target_ip or self.rate or ""
        return f"<Action {self.kind} {extras}>"


class Rule:
    """One ``match -> action`` line."""

    __slots__ = ("direction", "port_lo", "port_hi", "proto",
                 "content_prefix", "content_regex", "action", "line",
                 "hits")

    def __init__(self, direction: Optional[str], port_lo: Optional[int],
                 port_hi: Optional[int], proto: Optional[int],
                 content_prefix: Optional[bytes],
                 content_regex: Optional["re.Pattern"],
                 action: Action, line: str) -> None:
        self.direction = direction
        self.port_lo = port_lo
        self.port_hi = port_hi
        self.proto = proto
        self.content_prefix = content_prefix
        self.content_regex = content_regex
        self.action = action
        self.line = line
        self.hits = 0

    @property
    def needs_content(self) -> bool:
        return self.content_prefix is not None or self.content_regex is not None

    def matches_endpoint(self, ctx: PolicyContext) -> bool:
        if self.direction == "inbound" and ctx.inmate_is_originator:
            return False
        if self.direction == "outbound" and not ctx.inmate_is_originator:
            return False
        if self.proto is not None and ctx.flow.proto != self.proto:
            return False
        if self.port_lo is not None:
            if not self.port_lo <= ctx.flow.resp_port <= self.port_hi:
                return False
        return True

    def matches_content(self, data: bytes) -> bool:
        if self.content_prefix is not None:
            return data.startswith(self.content_prefix)
        if self.content_regex is not None:
            return self.content_regex.match(data) is not None
        return True

    def port_interval(self) -> tuple:
        """The rule's port match as an inclusive ``(lo, hi)`` interval
        (``(0, 65535)`` for ``any``) — the boundaries the isolation
        verifier partitions the port space on."""
        if self.port_lo is None:
            return (0, 65535)
        return (self.port_lo, self.port_hi)

    def covers(self, other: "Rule") -> bool:
        """Does this rule match *every* flow ``other`` matches?  Used
        to reject programs whose later rules are unreachable (first
        match wins, so a fully-shadowed rule is dead text — usually a
        mis-ordering that silently changes the decision table)."""
        if self.direction is not None and self.direction != other.direction:
            return False
        if self.proto is not None and self.proto != other.proto:
            return False
        lo, hi = self.port_interval()
        other_lo, other_hi = other.port_interval()
        if not (lo <= other_lo and other_hi <= hi):
            return False
        # Content: this rule must fire on any content the other would.
        if self.content_prefix is not None:
            if other.content_prefix is None:
                return False
            return other.content_prefix.startswith(self.content_prefix)
        if self.content_regex is not None:
            return (other.content_regex is not None
                    and self.content_regex.pattern
                    == other.content_regex.pattern)
        return True

    def __repr__(self) -> str:
        return f"<Rule {self.line!r}>"


_PORT_RE = re.compile(r"^(\d+)(?:-(\d+))?/(tcp|udp)$")


def _parse_action(tokens: List[str], line: str) -> Action:
    if not tokens:
        raise DslError(f"missing action in: {line!r}",
                       reason="missing-action", line=line)
    kind = tokens[0]
    rest = tokens[1:]
    if kind == "forward":
        return Action("forward")
    if kind == "drop":
        return Action("drop")
    if kind == "rewrite":
        return Action("rewrite")
    if kind == "reflect":
        return Action("reflect", service=rest[0] if rest else "sink")
    if kind == "redirect":
        if not rest:
            raise DslError(f"redirect needs a target in: {line!r}",
                           reason="missing-target", line=line)
        ip_text, _, port_text = rest[0].partition(":")
        return Action("redirect", target_ip=IPv4Address(ip_text),
                      target_port=int(port_text) if port_text else None)
    if kind == "limit":
        if not rest:
            raise DslError(f"limit needs a rate in: {line!r}",
                           reason="missing-rate", line=line)
        return Action("limit", rate=float(rest[0]))
    raise DslError(f"unknown action {kind!r} in: {line!r}",
                   reason="unknown-action", line=line)


def parse_program(text: str) -> tuple:
    """Parse a policy program; returns (rules, default_action)."""
    rules: List[Rule] = []
    default: Optional[Action] = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" not in line:
            raise DslError(f"line {line_number}: expected 'match -> action'",
                           reason="missing-arrow",
                           line_number=line_number, line=line)
        match_text, _, action_text = line.partition("->")
        action = _parse_action(shlex.split(action_text.strip()), line)
        tokens = shlex.split(match_text.strip())

        if tokens and tokens[0] == "default":
            if default is not None:
                raise DslError(f"line {line_number}: duplicate default",
                               reason="duplicate-default",
                               line_number=line_number, line=line)
            default = action
            continue

        direction = None
        if tokens and tokens[0] in ("inbound", "outbound"):
            direction = tokens.pop(0)

        port_lo = port_hi = proto = None
        content_prefix = content_regex = None
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token == "any":
                index += 1
            elif token == "port":
                if index + 1 >= len(tokens):
                    raise DslError(f"line {line_number}: port needs a spec",
                                   reason="bad-port-spec",
                                   line_number=line_number, line=line)
                spec = _PORT_RE.match(tokens[index + 1])
                if spec is None:
                    raise DslError(
                        f"line {line_number}: bad port spec "
                        f"{tokens[index + 1]!r}", reason="bad-port-spec",
                        line_number=line_number, line=line)
                port_lo = int(spec.group(1))
                port_hi = int(spec.group(2) or port_lo)
                proto = PROTO_TCP if spec.group(3) == "tcp" else PROTO_UDP
                index += 2
            elif token == "content":
                if index + 2 >= len(tokens) + 1:
                    raise DslError(f"line {line_number}: content needs "
                                   "an operator and a pattern",
                                   reason="bad-content-spec",
                                   line_number=line_number, line=line)
                operator = tokens[index + 1]
                pattern = tokens[index + 2]
                if operator == "~":
                    content_prefix = pattern.encode("latin-1")
                elif operator == "=~":
                    content_regex = re.compile(pattern.encode("latin-1"))
                else:
                    raise DslError(f"line {line_number}: bad content "
                                   f"operator {operator!r}",
                                   reason="bad-content-spec",
                                   line_number=line_number, line=line)
                index += 3
            else:
                raise DslError(
                    f"line {line_number}: unexpected token {token!r}",
                    reason="unexpected-token",
                    line_number=line_number, line=line)

        rule = Rule(direction, port_lo, port_hi, proto,
                    content_prefix, content_regex, action, line)
        for earlier in rules:
            if earlier.covers(rule):
                raise DslError(
                    f"line {line_number}: rule {line!r} is fully shadowed "
                    f"by earlier rule {earlier.line!r} — first match wins, "
                    "so this rule can never fire (mis-ordered policy?)",
                    reason="shadowed-rule",
                    line_number=line_number, line=line)
        rules.append(rule)
    if default is None:
        raise DslError("policy program needs a 'default -> action' clause",
                       reason="missing-default")
    return rules, default


@register_policy
class DslPolicy(ContainmentPolicy):
    """A containment policy compiled from a policy program."""

    name = "Dsl"

    def __init__(self, program: str = "default -> drop",
                 services=None, config=None) -> None:
        super().__init__(services, config)
        self.program = program
        self.rules, self.default_action = parse_program(program)

    # ------------------------------------------------------------------
    def _decision_for(self, ctx: PolicyContext,
                      action: Action) -> ContainmentDecision:
        if action.kind == "forward":
            return self.forward(ctx, annotation="dsl forward")
        if action.kind == "drop":
            return self.deny(ctx, annotation="dsl drop")
        if action.kind == "rewrite":
            return self.rewrite(ctx, annotation="dsl rewrite")
        if action.kind == "reflect":
            return self.reflect(ctx, action.service or "sink",
                                annotation="dsl reflect")
        if action.kind == "redirect":
            return self.redirect(ctx, action.target_ip, action.target_port,
                                 annotation="dsl redirect")
        if action.kind == "limit":
            return self.limit(ctx, action.rate, annotation="dsl limit")
        raise DslError(f"unhandled action kind {action.kind!r}")

    def decide(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        content_possible = False
        for rule in self.rules:
            if not rule.matches_endpoint(ctx):
                continue
            if rule.needs_content:
                content_possible = True
                continue
            rule.hits += 1
            return self._decision_for(ctx, rule.action)
        if content_possible:
            return None  # wait for the first payload bytes
        return self._decision_for(ctx, self.default_action)

    def decide_content(self, ctx: PolicyContext,
                       data: bytes) -> Optional[ContainmentDecision]:
        undecided_possible = False
        for rule in self.rules:
            if not rule.matches_endpoint(ctx):
                continue
            if rule.needs_content:
                if rule.matches_content(data):
                    rule.hits += 1
                    return self._decision_for(ctx, rule.action)
                # A longer prefix might still match later.
                prefix = rule.content_prefix
                if prefix is not None and prefix.startswith(data):
                    undecided_possible = True
            else:
                rule.hits += 1
                return self._decision_for(ctx, rule.action)
        if undecided_possible and len(data) < 256:
            return None
        return self._decision_for(ctx, self.default_action)

    def coverage(self) -> List[tuple]:
        """Per-rule hit counts — the policy-development feedback loop."""
        return [(rule.line, rule.hits) for rule in self.rules]

    def describe(self) -> dict:
        """Self-description for the isolation verifier: the program
        text is the whole decision surface, so its digest pins the
        policy identity inside a certificate."""
        import hashlib
        digest = hashlib.sha256(self.program.encode("utf-8")).hexdigest()
        base = super().describe()
        base.update({"kind": "dsl", "program_digest": digest,
                     "rules": len(self.rules)})
        return base
