"""Containment policies (§6.2, "Policy structure").

Policies are Python classes, instantiated keyed on VLAN ID ranges and
applied per flow.  "Object-oriented implementation reuse and
specialization lends itself well to the establishment of a hierarchy
of containment policies.  From a base class implementing a
default-deny policy we derive classes for each endpoint control
verdict, and from these specialize further."

A policy answers each flow with a :class:`ContainmentDecision`, either
immediately (endpoint control, keyed on the four-tuple) or after
inspecting the flow's first content bytes (content-dependent
decisions, e.g. whitelisting only C&C-shaped HTTP requests).  REWRITE
decisions additionally supply a :class:`Rewriter` that proxies the
flow through the containment server.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Type

from repro.core.verdicts import ContainmentDecision, Verdict
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple

ServiceMap = Dict[str, Tuple[IPv4Address, int]]


class PolicyContext:
    """Everything a policy may consult when deciding a flow."""

    __slots__ = ("flow", "vlan_id", "nonce_port", "now", "services",
                 "subfarm", "inmate_is_originator")

    def __init__(
        self,
        flow: FiveTuple,
        vlan_id: int,
        nonce_port: int,
        now: float,
        services: ServiceMap,
        subfarm: object = None,
        inmate_is_originator: bool = True,
    ) -> None:
        self.flow = flow
        self.vlan_id = vlan_id
        self.nonce_port = nonce_port
        self.now = now
        self.services = services
        self.subfarm = subfarm
        self.inmate_is_originator = inmate_is_originator

    def service(self, name: str) -> Tuple[IPv4Address, int]:
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(
                f"policy requires service {name!r}, not configured in this "
                f"subfarm (have: {sorted(self.services)})"
            ) from None

    def has_service(self, name: str) -> bool:
        return name in self.services


class FlowProxy:
    """The containment server's handle a :class:`Rewriter` drives.

    Concrete implementation lives in :mod:`repro.core.server`; this
    class documents the interface rewriters program against.
    """

    def send_to_client(self, data: bytes) -> None:
        raise NotImplementedError

    def send_to_server(self, data: bytes) -> None:
        raise NotImplementedError

    def connect_out(self, ip: Optional[IPv4Address] = None,
                    port: Optional[int] = None) -> None:
        """Open the onward connection through the nonce port."""
        raise NotImplementedError

    def close_client(self) -> None:
        raise NotImplementedError

    def close_server(self) -> None:
        raise NotImplementedError

    @property
    def context(self) -> PolicyContext:
        raise NotImplementedError


class Rewriter:
    """Content-control hooks for one REWRITE-contained flow.

    The default implementation is a faithful transparent proxy: it
    opens the onward connection and copies bytes both ways.  Subclasses
    override the data hooks to rewrite, truncate, extend, or
    impersonate (never calling :meth:`FlowProxy.connect_out` at all).
    """

    def on_open(self, proxy: FlowProxy) -> None:
        proxy.connect_out()

    def on_client_data(self, proxy: FlowProxy, data: bytes) -> None:
        proxy.send_to_server(data)

    def on_server_data(self, proxy: FlowProxy, data: bytes) -> None:
        proxy.send_to_client(data)

    def on_client_close(self, proxy: FlowProxy) -> None:
        proxy.close_server()

    def on_server_close(self, proxy: FlowProxy) -> None:
        proxy.close_client()


class ContainmentPolicy:
    """Base class: complete default-deny.

    "Beginning from a complete default-deny of interaction with the
    outside world" (§3) — the root of the hierarchy drops everything.
    Subclasses loosen specific traffic in the most narrow fashion
    possible.
    """

    #: Name used in response shims and configuration files; defaults
    #: to the class name.
    name: Optional[str] = None

    def __init__(self, services: Optional[ServiceMap] = None,
                 config: Optional[dict] = None) -> None:
        self.services: ServiceMap = dict(services or {})
        self.config = dict(config or {})

    @property
    def policy_name(self) -> str:
        return self.name or type(self).__name__

    # ------------------------------------------------------------------
    def decide(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        """Endpoint-control decision; return None to wait for content."""
        return self.deny(ctx)

    def decide_content(self, ctx: PolicyContext,
                       data: bytes) -> Optional[ContainmentDecision]:
        """Called with accumulated client content while undecided."""
        return self.deny(ctx)

    def make_rewriter(self, ctx: PolicyContext) -> Rewriter:
        """Rewriter for flows this policy answered with REWRITE."""
        return Rewriter()

    def rewrite_datagram(self, ctx: PolicyContext,
                         payload: bytes) -> Optional[bytes]:
        """Content control for UDP flows under REWRITE: return the
        datagram to deliver to the inmate (impersonating the original
        destination), or None to stay silent."""
        return None

    # Convenience verdict builders stamped with the policy name --------
    def deny(self, ctx: PolicyContext,
             annotation: str = "default-deny") -> ContainmentDecision:
        return ContainmentDecision.drop(policy=self.policy_name,
                                        annotation=annotation)

    def forward(self, ctx: PolicyContext,
                annotation: str = "") -> ContainmentDecision:
        return ContainmentDecision.forward(policy=self.policy_name,
                                           annotation=annotation)

    def limit(self, ctx: PolicyContext, rate: float,
              annotation: str = "") -> ContainmentDecision:
        return ContainmentDecision.limit(rate, policy=self.policy_name,
                                         annotation=annotation)

    def redirect(self, ctx: PolicyContext, ip: IPv4Address,
                 port: Optional[int] = None,
                 annotation: str = "") -> ContainmentDecision:
        return ContainmentDecision.redirect(ip, port, policy=self.policy_name,
                                            annotation=annotation)

    def reflect(self, ctx: PolicyContext, service: str = "sink",
                annotation: str = "") -> ContainmentDecision:
        ip, port = ctx.service(service)
        # Catch-all sinks accept any port, so preserve the original
        # destination port unless the service pins one.
        return ContainmentDecision.reflect(
            ip, port if port else None,
            policy=self.policy_name, annotation=annotation,
        )

    def rewrite(self, ctx: PolicyContext,
                annotation: str = "") -> ContainmentDecision:
        return ContainmentDecision.rewrite(policy=self.policy_name,
                                           annotation=annotation)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Identity card for the isolation verifier's certificates.

        Opaque (general-Python) policies carry no decision-surface
        digest — the verifier falls back to concolic probing and marks
        the resulting model inexact.  :class:`repro.core.dsl.DslPolicy`
        overrides this with the program digest.
        """
        return {"policy": self.policy_name, "kind": "opaque"}


# ----------------------------------------------------------------------
# Registry (configuration files refer to policies by name — Figure 6)
# ----------------------------------------------------------------------
POLICY_REGISTRY: Dict[str, Type[ContainmentPolicy]] = {}


def register_policy(cls: Type[ContainmentPolicy]) -> Type[ContainmentPolicy]:
    """Class decorator adding a policy to the by-name registry."""
    key = cls.name or cls.__name__
    if key in POLICY_REGISTRY and POLICY_REGISTRY[key] is not cls:
        raise ValueError(f"policy name {key!r} already registered")
    POLICY_REGISTRY[key] = cls
    return cls


def _load_standard_policies() -> None:
    """Import the policy library so its @register_policy calls run."""
    import repro.policies  # noqa: F401


def policy_class(name: str) -> Type[ContainmentPolicy]:
    if name not in POLICY_REGISTRY:
        _load_standard_policies()
    try:
        return POLICY_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown containment policy {name!r} "
            f"(registered: {sorted(POLICY_REGISTRY)})"
        ) from None


# ----------------------------------------------------------------------
# Generic built-in policies
# ----------------------------------------------------------------------
@register_policy
class DefaultDeny(ContainmentPolicy):
    """Drop every flow — the starting point of policy development."""


@register_policy
class AllowAll(ContainmentPolicy):
    """Forward everything.  The *absence* of containment; exists as the
    unconstrained-execution baseline and for trusted test traffic."""

    def decide(self, ctx: PolicyContext) -> ContainmentDecision:
        return self.forward(ctx, annotation="allow-all")

    def decide_content(self, ctx, data):
        return self.forward(ctx, annotation="allow-all")


@register_policy
class ReflectAll(ContainmentPolicy):
    """Reflect every flow to the subfarm's sink server.

    The first iteration of the §3 methodology: the specimen comes
    alive against the sink, and the analyst inspects what it tried.
    """

    sink_service = "sink"

    def decide(self, ctx: PolicyContext) -> ContainmentDecision:
        return self.reflect(ctx, self.sink_service,
                            annotation="reflect-all to sink")

    def decide_content(self, ctx, data):
        return self.decide(ctx)


class PolicyMap:
    """VLAN-range keyed policy assignment (one instance per range)."""

    def __init__(self, default: Optional[ContainmentPolicy] = None) -> None:
        self.default = default or DefaultDeny()
        self._ranges: Dict[Tuple[int, int], ContainmentPolicy] = {}

    def assign(self, first_vlan: int, last_vlan: int,
               policy: ContainmentPolicy) -> None:
        if first_vlan > last_vlan:
            raise ValueError("empty VLAN range")
        self._ranges[(first_vlan, last_vlan)] = policy

    def resolve(self, vlan: int) -> ContainmentPolicy:
        for (first, last), policy in self._ranges.items():
            if first <= vlan <= last:
                return policy
        return self.default

    def policies(self) -> Dict[Tuple[int, int], ContainmentPolicy]:
        return dict(self._ranges)
