"""GQ's primary contribution: explicit per-flow containment.

* :mod:`repro.core.verdicts` — the six flow-manipulation modes.
* :mod:`repro.core.shim` — the gateway/containment-server shim protocol.
* :mod:`repro.core.policy` — the containment policy class hierarchy.
* :mod:`repro.core.server` — the containment server.
* :mod:`repro.core.triggers` — activity triggers driving inmate life-cycle.
* :mod:`repro.core.config` — the configuration file format of Figure 6.
* :mod:`repro.core.cluster` — containment-server clustering (§7.2).
"""

from repro.core.verdicts import Verdict, ContainmentDecision
from repro.core.shim import RequestShim, ResponseShim, SHIM_MAGIC

__all__ = [
    "Verdict",
    "ContainmentDecision",
    "RequestShim",
    "ResponseShim",
    "SHIM_MAGIC",
]
