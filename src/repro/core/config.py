"""The containment server configuration file (Figure 6, §6.2).

The file serves four purposes: (i) the initial assignment of a policy
to a given inmate's traffic, (ii) the malware binaries to infect each
inmate with over its life-cycles, (iii) activity triggers, and (iv)
addresses of infrastructure services in the subfarm.  Verbatim
example from the paper::

    [VLAN 16-17]
    Decider = Rustock
    Infection = rustock.100921.*.exe

    [VLAN 18-19]
    Decider = Grum
    Infection = grum.100818.*.exe

    [VLAN 16-19]
    Trigger = *:25/tcp / 30min < 1 -> revert

    [Autoinfect]
    Address = 10.9.8.7
    Port = 6543

    [BannerSmtpSink]
    Address = 10.3.1.4
    Port = 2526

A hand-rolled parser (rather than :mod:`configparser`) because VLAN
sections repeat keys (multiple ``Trigger`` lines) and section order
matters for policy resolution.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Dict, List, Optional, Tuple

from repro.core.policy import ContainmentPolicy, policy_class
from repro.core.triggers import TriggerSpec
from repro.malware.corpus import Sample, SampleBatch
from repro.net.addresses import IPv4Address

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_VLAN_SECTION_RE = re.compile(r"^VLAN\s+(?P<first>\d+)(?:\s*-\s*(?P<last>\d+))?$",
                              re.IGNORECASE)


class ConfigError(ValueError):
    """Malformed containment configuration."""


class VlanSection:
    """One ``[VLAN a-b]`` block."""

    def __init__(self, first: int, last: int) -> None:
        if first > last:
            raise ConfigError(f"empty VLAN range {first}-{last}")
        self.first = first
        self.last = last
        self.decider: Optional[str] = None
        self.infection: Optional[str] = None
        self.triggers: List[str] = []
        self.extra: Dict[str, str] = {}

    @property
    def vlans(self) -> range:
        return range(self.first, self.last + 1)

    def __repr__(self) -> str:
        return (
            f"<VlanSection {self.first}-{self.last} "
            f"decider={self.decider!r}>"
        )


class ServiceSection:
    """A named infrastructure-service block (Autoinfect, sinks...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.address: Optional[IPv4Address] = None
        self.port: Optional[int] = None
        self.extra: Dict[str, str] = {}

    def __repr__(self) -> str:
        return f"<ServiceSection {self.name} {self.address}:{self.port}>"


class ContainmentConfig:
    """Parsed configuration."""

    def __init__(self) -> None:
        self.vlan_sections: List[VlanSection] = []
        self.service_sections: Dict[str, ServiceSection] = {}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ContainmentConfig":
        config = cls()
        current: Optional[object] = None
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith(("#", ";")):
                continue
            section_match = _SECTION_RE.match(line)
            if section_match:
                current = config._open_section(section_match.group("name"))
                continue
            if current is None:
                raise ConfigError(
                    f"line {line_number}: key outside any section: {line!r}"
                )
            key, _, value = line.partition("=")
            if not _:
                raise ConfigError(f"line {line_number}: expected key = value")
            config._set(current, key.strip(), value.strip(), line_number)
        return config

    def _open_section(self, name: str):
        vlan_match = _VLAN_SECTION_RE.match(name.strip())
        if vlan_match:
            first = int(vlan_match.group("first"))
            last = int(vlan_match.group("last") or first)
            section = VlanSection(first, last)
            self.vlan_sections.append(section)
            return section
        section = ServiceSection(name.strip())
        self.service_sections[section.name] = section
        return section

    def _set(self, section, key: str, value: str, line_number: int) -> None:
        lowered = key.lower()
        if isinstance(section, VlanSection):
            if lowered == "decider":
                section.decider = value
            elif lowered == "infection":
                section.infection = value
            elif lowered == "trigger":
                # Validate eagerly so typos fail at parse time.
                TriggerSpec.parse(value)
                section.triggers.append(value)
            else:
                section.extra[key] = value
        else:
            if lowered == "address":
                try:
                    section.address = IPv4Address(value)
                except ValueError as error:
                    raise ConfigError(f"line {line_number}: {error}") from None
            elif lowered == "port":
                section.port = int(value)
            else:
                section.extra[key] = value

    # ------------------------------------------------------------------
    def section_for_vlan(self, vlan: int) -> Optional[VlanSection]:
        """First matching VLAN section (order matters; deciders come
        from the most specific declaration in practice)."""
        for section in self.vlan_sections:
            if section.first <= vlan <= section.last:
                return section
        return None

    def triggers_for_vlan(self, vlan: int) -> List[str]:
        out: List[str] = []
        for section in self.vlan_sections:
            if section.first <= vlan <= section.last:
                out.extend(section.triggers)
        return out

    def service(self, name: str) -> Optional[ServiceSection]:
        return self.service_sections.get(name)


class SampleLibrary:
    """Maps binary filenames to behaviour samples.

    Figure 6 names infection material by filename pattern
    (``rustock.100921.*.exe``); the library resolves such patterns to
    batches.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Sample] = {}

    def add(self, filename: str, sample: Sample) -> None:
        self._by_name[filename] = sample

    def match(self, pattern: str) -> SampleBatch:
        names = sorted(fnmatch.filter(self._by_name, pattern))
        if not names:
            raise ConfigError(f"no samples match pattern {pattern!r}")
        return SampleBatch(pattern, [self._by_name[n] for n in names])

    def __len__(self) -> int:
        return len(self._by_name)


def apply_config(
    config: ContainmentConfig,
    subfarm,
    library: Optional[SampleLibrary] = None,
) -> Dict[Tuple[int, int], ContainmentPolicy]:
    """Instantiate and wire a parsed configuration into a subfarm.

    Returns the policies created, keyed by VLAN range.  Policies are
    resolved from the registry by their ``Decider`` name; infection
    patterns are resolved through the sample library; triggers are
    installed on the subfarm's trigger engine; service sections are
    registered for policies to look up.
    """
    policies: Dict[Tuple[int, int], ContainmentPolicy] = {}

    # Service sections first so policies can reference them.
    policy_config: Dict[str, str] = {}
    for name, section in config.service_sections.items():
        if section.address is None:
            continue
        port = section.port if section.port is not None else 0
        if name.lower() == "autoinfect":
            policy_config["autoinfect_address"] = str(section.address)
            policy_config["autoinfect_port"] = str(port)
        subfarm.register_service(_service_key(name), section.address, port)

    for section in config.vlan_sections:
        if section.decider is None:
            continue
        cls = policy_class(section.decider)
        policy = cls(services=subfarm.services, config=policy_config)
        if section.infection is not None:
            if library is None:
                raise ConfigError(
                    f"section VLAN {section.first}-{section.last} names an "
                    f"infection but no sample library was provided"
                )
            batch = library.match(section.infection)
            if not hasattr(policy, "set_batch"):
                raise ConfigError(
                    f"policy {section.decider!r} does not support "
                    f"auto-infection batches"
                )
            policy.set_batch(section.first, section.last, batch)
        subfarm.policy_map.assign(section.first, section.last, policy)
        policies[(section.first, section.last)] = policy

    for section in config.vlan_sections:
        for trigger_text in section.triggers:
            subfarm.trigger_engine.add_text(trigger_text,
                                            set(section.vlans))
    return policies


def _service_key(section_name: str) -> str:
    """Map Figure 6 section names onto policy service keys:
    ``BannerSmtpSink`` -> ``smtp_sink``, ``Sink`` -> ``sink``."""
    lowered = section_name.lower()
    if "smtp" in lowered:
        return "smtp_sink"
    if lowered == "autoinfect":
        return "autoinfect"
    if "sink" in lowered:
        return "sink"
    return lowered
