"""Activity triggers (§5.4, §6.2).

"As the containment server witnesses all network-level activity of an
inmate, it can react to the presence — and absence — of such network
events using activity triggers.  These triggers can terminate the
inmate, reboot it, or revert it to a clean state for subsequent
reinfection."

The configuration syntax comes from Figure 6::

    Trigger = *:25/tcp / 30min < 1 -> revert

meaning: whenever the number of flows to TCP port 25 (any destination)
seen in a 30-minute window drops below one, revert the inmate.
Over-threshold triggers (``> N``) fire as soon as the window count
crosses the threshold; under-threshold triggers (``< N``) are
evaluated periodically once the inmate has shown any activity.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.sim.engine import Simulator
from repro.sim.process import Process

LifecycleAction = Callable[[str, int], None]

_TRIGGER_RE = re.compile(
    r"^\s*(?P<dst>[\w.*]+):(?P<port>\d+|\*)/(?P<proto>tcp|udp)\s*/\s*"
    r"(?P<window>\d+(?:\.\d+)?)\s*(?P<unit>s|sec|min|h|hr)\s*"
    r"(?P<op><=|>=|<|>|==)\s*(?P<threshold>\d+)\s*->\s*"
    r"(?P<action>start|stop|reboot|revert|terminate)\s*$"
)

_UNIT_SECONDS = {"s": 1.0, "sec": 1.0, "min": 60.0, "h": 3600.0, "hr": 3600.0}

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
}


class TriggerSpec:
    """A parsed trigger rule."""

    __slots__ = ("dst", "port", "proto", "window", "op", "threshold",
                 "action", "text")

    def __init__(self, dst: Optional[IPv4Address], port: Optional[int],
                 proto: int, window: float, op: str, threshold: int,
                 action: str, text: str = "") -> None:
        self.dst = dst          # None means any destination ('*')
        self.port = port        # None means any port
        self.proto = proto
        self.window = window
        self.op = op
        self.threshold = threshold
        self.action = action
        self.text = text

    @classmethod
    def parse(cls, text: str) -> "TriggerSpec":
        """Parse the Figure 6 syntax, e.g. ``*:25/tcp / 30min < 1 -> revert``."""
        match = _TRIGGER_RE.match(text)
        if match is None:
            raise ValueError(f"malformed trigger spec: {text!r}")
        dst_text = match.group("dst")
        dst = None if dst_text == "*" else IPv4Address(dst_text)
        port_text = match.group("port")
        port = None if port_text == "*" else int(port_text)
        proto = PROTO_TCP if match.group("proto") == "tcp" else PROTO_UDP
        window = float(match.group("window")) * _UNIT_SECONDS[match.group("unit")]
        return cls(dst, port, proto, window, match.group("op"),
                   int(match.group("threshold")), match.group("action"), text)

    @property
    def under_threshold(self) -> bool:
        """Does this trigger watch for *absence* of activity?"""
        return self.op in ("<", "<=", "==")

    def matches(self, flow: FiveTuple) -> bool:
        if flow.proto != self.proto:
            return False
        if self.port is not None and flow.resp_port != self.port:
            return False
        if self.dst is not None and flow.resp_ip != self.dst:
            return False
        return True

    def evaluate(self, count: int) -> bool:
        return _OPS[self.op](count, self.threshold)

    def __repr__(self) -> str:
        return f"<TriggerSpec {self.text or 'custom'}>"


class _TriggerState:
    """Per (spec, vlan) sliding-window state."""

    __slots__ = ("events", "armed_at", "last_fired", "ever_active")

    def __init__(self, now: float) -> None:
        self.events: Deque[float] = deque()
        self.armed_at = now
        self.last_fired: Optional[float] = None
        self.ever_active = False


class TriggerFiring:
    __slots__ = ("timestamp", "vlan", "action", "spec")

    def __init__(self, timestamp: float, vlan: int, action: str,
                 spec: TriggerSpec) -> None:
        self.timestamp = timestamp
        self.vlan = vlan
        self.action = action
        self.spec = spec

    def __repr__(self) -> str:
        return (
            f"<TriggerFiring t={self.timestamp:.0f} vlan={self.vlan} "
            f"{self.action}>"
        )


class TriggerEngine:
    """Evaluates trigger rules against the flow-event stream."""

    def __init__(self, sim: Simulator, lifecycle: LifecycleAction,
                 check_interval: float = 60.0) -> None:
        self.sim = sim
        self.lifecycle = lifecycle
        self.check_interval = check_interval
        self._rules: List[Tuple[TriggerSpec, Set[int]]] = []
        self._state: Dict[Tuple[int, int], _TriggerState] = {}
        self.firings: List[TriggerFiring] = []
        self._sweeper = Process(sim, check_interval, self._sweep,
                                label="trigger-sweep")
        self._sweeper_started = False
        # While containment is degraded (no responsive containment
        # server) triggers are suspended: absence-of-activity rules
        # would otherwise misread the outage as inmate dormancy and
        # revert healthy inmates.  ``suspensions`` logs the windows.
        self._suspended = False
        self.suspensions: List[List[Optional[float]]] = []
        self._m_fired = sim.telemetry.counter(
            "triggers.fired", "Trigger firings, by life-cycle action")

    def add(self, spec: TriggerSpec, vlans: Set[int]) -> None:
        """Install a rule for a set of VLAN IDs."""
        self._rules.append((spec, set(vlans)))
        for vlan in vlans:
            key = (len(self._rules) - 1, vlan)
            self._state[key] = _TriggerState(self.sim.now)
        if not self._sweeper_started:
            self._sweeper_started = True
            self._sweeper.start()

    def add_text(self, text: str, vlans: Set[int]) -> TriggerSpec:
        spec = TriggerSpec.parse(text)
        self.add(spec, vlans)
        return spec

    # ------------------------------------------------------------------
    def suspend(self) -> None:
        """Stop firing (degraded containment); window state keeps filling."""
        if self._suspended:
            return
        self._suspended = True
        self.suspensions.append([self.sim.now, None])
        journal = self.sim.journal
        if journal.enabled:
            journal.record("trigger.suspended", rules=len(self._rules))

    def resume(self) -> None:
        """Re-arm after a suspension; windows restart from now so the
        outage gap is not misread as inmate inactivity."""
        if not self._suspended:
            return
        self._suspended = False
        self.suspensions[-1][1] = self.sim.now
        journal = self.sim.journal
        if journal.enabled:
            journal.record("trigger.resumed", rules=len(self._rules),
                           suspended_for=self.sim.now - self.suspensions[-1][0])
        for state in self._state.values():
            state.armed_at = self.sim.now
            if state.last_fired is not None:
                state.last_fired = self.sim.now

    # ------------------------------------------------------------------
    def flow_event(self, vlan: int, timestamp: float,
                   flow: FiveTuple) -> None:
        """Called by the containment server for every verdict issued."""
        for rule_index, (spec, vlans) in enumerate(self._rules):
            if vlan not in vlans:
                continue
            state = self._state[(rule_index, vlan)]
            state.ever_active = True
            if spec.matches(flow):
                state.events.append(timestamp)
                self._prune(state, spec)
                # Over-threshold triggers react immediately.
                if spec.op in (">", ">=") and not self._suspended \
                        and spec.evaluate(len(state.events)):
                    self._fire(spec, vlan, state)

    def _prune(self, state: _TriggerState, spec: TriggerSpec) -> None:
        horizon = self.sim.now - spec.window
        while state.events and state.events[0] <= horizon:
            state.events.popleft()

    def _sweep(self) -> None:
        """Periodic evaluation for absence-of-activity triggers."""
        if self._suspended:
            return
        for rule_index, (spec, vlans) in enumerate(self._rules):
            if spec.op not in ("<", "<=", "=="):
                continue
            for vlan in vlans:
                state = self._state[(rule_index, vlan)]
                self._prune(state, spec)
                if not state.ever_active:
                    continue  # inmate has not come alive yet
                reference = state.last_fired if state.last_fired is not None \
                    else state.armed_at
                if self.sim.now - reference < spec.window:
                    continue  # give the window a chance to fill
                if spec.evaluate(len(state.events)):
                    self._fire(spec, vlan, state)

    def _fire(self, spec: TriggerSpec, vlan: int,
              state: _TriggerState) -> None:
        journal = self.sim.journal
        if journal.enabled:
            # Window count must be captured before the clear() below.
            journal.record("trigger.fired", vlan=vlan,
                           rule=spec.text or repr(spec),
                           action=spec.action,
                           window_events=len(state.events))
        state.last_fired = self.sim.now
        state.events.clear()
        state.ever_active = False
        self.firings.append(
            TriggerFiring(self.sim.now, vlan, spec.action, spec)
        )
        self._m_fired.inc(action=spec.action)
        self.lifecycle(spec.action, vlan)
