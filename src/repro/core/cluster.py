"""Containment-server clustering (§7.2).

"With a large number of inmates in a single subfarm, a single
containment server becomes a bottleneck, as it has to interpose on
all flows in the subfarm.  We can address this situation in a
straightforward manner by moving to a cluster of containment servers,
managed by the subfarm's packet router ...  Several containment
server selection policies come to mind, such as random selection
under the constraint that the same containment server always handles
the same inmate."

The cluster shares one policy map and service registry, so verdicts
are identical regardless of which member answers; only capacity
changes.
"""

from __future__ import annotations

from typing import List

from repro.core.server import ContainmentServer


class ContainmentServerCluster:
    """A set of interchangeable containment servers for one subfarm."""

    def __init__(self, servers: List[ContainmentServer]) -> None:
        if not servers:
            raise ValueError("a cluster needs at least one server")
        self.servers = list(servers)

    def __len__(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------------
    # Aggregated metrics
    # ------------------------------------------------------------------
    def verdict_counts(self) -> dict:
        totals: dict = {}
        for server in self.servers:
            for verdict, count in server.verdict_counts.items():
                totals[verdict] = totals.get(verdict, 0) + count
        return totals

    def total_verdicts(self) -> int:
        return sum(sum(s.verdict_counts.values()) for s in self.servers)

    def queue_delays(self) -> List[float]:
        delays: List[float] = []
        for server in self.servers:
            delays.extend(server.queue_delays)
        return delays

    def mean_queue_delay(self) -> float:
        delays = self.queue_delays()
        return sum(delays) / len(delays) if delays else 0.0

    def max_queue_delay(self) -> float:
        delays = self.queue_delays()
        return max(delays) if delays else 0.0

    def load_balance(self) -> List[int]:
        """Verdicts handled per member — evenness is the health check."""
        return [sum(s.verdict_counts.values()) for s in self.servers]

    def __repr__(self) -> str:
        return (
            f"<ContainmentServerCluster n={len(self.servers)} "
            f"verdicts={self.total_verdicts()}>"
        )
