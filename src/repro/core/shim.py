"""The shim protocol coupling gateway and containment server (Figure 4).

The gateway maps arbitrary inmate flows onto the containment server's
single address and port by injecting a *containment request shim* into
each redirected flow; the containment server answers with a
*containment response shim* carrying the verdict, which the gateway
strips before relaying further bytes.  For TCP the shims ride in the
sequence space (requiring seq/ack bumping); for UDP they pad the
datagrams.

Wire layout (network byte order), verbatim from the paper:

Request shim — 24 bytes::

    0       2       4       6       8
    +-------+-------+---+---+
    | magic         |len|typ|ver|      preamble (8)
    +-------+-------+---+---+
    | orig IP       | resp IP       |  four-tuple (12)
    | orig port | resp port |
    +-------+-------+
    | VLAN ID   | nonce port|          (4)
    +-----------+-----------+

Response shim — at least 56 bytes::

    preamble (8) | four-tuple (12) | verdict opcode (4)
    | policy name tag (32, NUL padded) | annotation (variable)

The 2-byte preamble length field covers the whole message, so the
gateway can delimit a response shim (with its variable annotation)
inside a byte stream.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.verdicts import ContainmentDecision, Verdict
from repro.net.addresses import IPv4Address
from repro.net.errors import ParseError
from repro.net.flow import FiveTuple

SHIM_MAGIC = 0x47512121  # "GQ!!"
SHIM_VERSION = 1

TYPE_REQUEST = 1
TYPE_RESPONSE = 2

REQUEST_SHIM_LEN = 24
RESPONSE_SHIM_MIN_LEN = 56

POLICY_TAG_LEN = 32

_PREAMBLE = struct.Struct("!IHBB")
_FOUR_TUPLE = struct.Struct("!4s4sHH")


class ShimError(ParseError):
    """Raised on malformed shim messages.

    A :class:`~repro.net.errors.ParseError` with ``protocol="shim"`` —
    the shim parser participates in the uniform parse-error taxonomy,
    so the gateway's malice barrier and all pre-existing
    ``except ShimError`` sites see the same exception.
    """

    def __init__(self, reason: str, offset: int = 0) -> None:
        super().__init__("shim", reason, offset)

    def __reduce__(self):
        return (self.__class__, (self.reason, self.offset))


def _pack_preamble(length: int, msg_type: int) -> bytes:
    return _PREAMBLE.pack(SHIM_MAGIC, length, msg_type, SHIM_VERSION)


def _unpack_preamble(data: bytes) -> tuple:
    if len(data) < _PREAMBLE.size:
        raise ShimError(f"truncated shim preamble ({len(data)} of "
                        f"{_PREAMBLE.size} bytes)", offset=len(data))
    magic, length, msg_type, version = _PREAMBLE.unpack(data[:_PREAMBLE.size])
    if magic != SHIM_MAGIC:
        raise ShimError(f"bad shim magic {magic:#x}", offset=0)
    if version != SHIM_VERSION:
        raise ShimError(f"unsupported shim version {version}", offset=7)
    return length, msg_type


def peek_length(data: bytes) -> Optional[int]:
    """Total length of the shim starting at ``data``, or None if the
    preamble is not yet complete."""
    if len(data) < _PREAMBLE.size:
        return None
    length, _ = _unpack_preamble(data)
    return length


class RequestShim:
    """Gateway -> containment server: flow meta-information."""

    __slots__ = ("flow", "vlan_id", "nonce_port")

    def __init__(self, flow: FiveTuple, vlan_id: int, nonce_port: int) -> None:
        self.flow = flow
        self.vlan_id = vlan_id
        self.nonce_port = nonce_port

    def to_bytes(self) -> bytes:
        body = _FOUR_TUPLE.pack(
            self.flow.orig_ip.to_bytes(), self.flow.resp_ip.to_bytes(),
            self.flow.orig_port, self.flow.resp_port,
        ) + struct.pack("!HH", self.vlan_id, self.nonce_port)
        message = _pack_preamble(REQUEST_SHIM_LEN, TYPE_REQUEST) + body
        assert len(message) == REQUEST_SHIM_LEN
        return message

    @classmethod
    def from_bytes(cls, data: bytes, proto: int = 6) -> "RequestShim":
        length, msg_type = _unpack_preamble(data)
        if msg_type != TYPE_REQUEST:
            raise ShimError(f"expected request shim, got type {msg_type}",
                            offset=6)
        if length != REQUEST_SHIM_LEN:
            raise ShimError(f"bad request shim length field ({length}, "
                            f"expected {REQUEST_SHIM_LEN})", offset=4)
        if len(data) < REQUEST_SHIM_LEN:
            raise ShimError(f"request shim truncated mid-field "
                            f"({len(data)} of {REQUEST_SHIM_LEN} bytes)",
                            offset=len(data))
        orig_raw, resp_raw, orig_port, resp_port = _FOUR_TUPLE.unpack(
            data[8:20]
        )
        vlan_id, nonce_port = struct.unpack("!HH", data[20:24])
        flow = FiveTuple(
            IPv4Address.from_bytes(orig_raw), orig_port,
            IPv4Address.from_bytes(resp_raw), resp_port, proto,
        )
        return cls(flow, vlan_id, nonce_port)

    def __repr__(self) -> str:
        return f"<RequestShim {self.flow} vlan={self.vlan_id} nonce={self.nonce_port}>"


class ResponseShim:
    """Containment server -> gateway: the verdict.

    The four-tuple is the *resulting* endpoint pair: identical to the
    request's for FORWARD/LIMIT/DROP/REWRITE, and the new destination
    for REDIRECT/REFLECT.
    """

    __slots__ = ("flow", "verdict", "policy", "annotation", "rate")

    def __init__(
        self,
        flow: FiveTuple,
        verdict: Verdict,
        policy: str = "",
        annotation: str = "",
        rate: Optional[float] = None,
    ) -> None:
        verdict.validate()
        self.flow = flow
        self.verdict = verdict
        self.policy = policy
        self.annotation = annotation
        self.rate = rate

    @classmethod
    def from_decision(
        cls, original: FiveTuple, decision: ContainmentDecision
    ) -> "ResponseShim":
        resulting = original
        if decision.target_ip is not None:
            resulting = FiveTuple(
                original.orig_ip, original.orig_port,
                decision.target_ip,
                decision.target_port
                if decision.target_port is not None
                else original.resp_port,
                original.proto,
            )
        return cls(resulting, decision.verdict, decision.policy,
                   decision.annotation, decision.rate)

    def to_decision(self, original: FiveTuple) -> ContainmentDecision:
        """Reconstruct the decision the gateway must enforce."""
        target_ip = target_port = None
        if self.verdict & (Verdict.REDIRECT | Verdict.REFLECT):
            target_ip = self.flow.resp_ip
            target_port = self.flow.resp_port
        return ContainmentDecision(
            self.verdict, target_ip, target_port, self.rate,
            self.policy, self.annotation,
        )

    def to_bytes(self) -> bytes:
        annotation = self.annotation.encode("utf-8")
        if self.rate is not None:
            # LIMIT budgets travel in the annotation, key=value style.
            rate_blob = f"rate={self.rate:g}".encode("ascii")
            annotation = rate_blob + (b";" + annotation if annotation else b"")
        policy_tag = self.policy.encode("utf-8")[:POLICY_TAG_LEN]
        # Never truncate mid-codepoint: drop trailing continuation
        # bytes so the tag stays valid UTF-8.
        while policy_tag and (policy_tag[-1] & 0xC0) == 0x80:
            policy_tag = policy_tag[:-1]
        if policy_tag and policy_tag[-1] >= 0xC0:
            policy_tag = policy_tag[:-1]  # orphaned lead byte
        policy_tag += b"\x00" * (POLICY_TAG_LEN - len(policy_tag))
        body = (
            _FOUR_TUPLE.pack(
                self.flow.orig_ip.to_bytes(), self.flow.resp_ip.to_bytes(),
                self.flow.orig_port, self.flow.resp_port,
            )
            + struct.pack("!I", int(self.verdict))
            + policy_tag
            + annotation
        )
        length = 8 + len(body)
        if length < RESPONSE_SHIM_MIN_LEN:
            raise ShimError("response shim below minimum length")  # pragma: no cover
        return _pack_preamble(length, TYPE_RESPONSE) + body

    @classmethod
    def from_bytes(cls, data: bytes, proto: int = 6) -> "ResponseShim":
        length, msg_type = _unpack_preamble(data)
        if msg_type != TYPE_RESPONSE:
            raise ShimError(f"expected response shim, got type {msg_type}",
                            offset=6)
        if length < RESPONSE_SHIM_MIN_LEN:
            raise ShimError(f"response shim length field below minimum "
                            f"({length} < {RESPONSE_SHIM_MIN_LEN})", offset=4)
        if len(data) < length:
            raise ShimError(f"response shim truncated mid-field "
                            f"({len(data)} of {length} bytes)",
                            offset=len(data))
        orig_raw, resp_raw, orig_port, resp_port = _FOUR_TUPLE.unpack(data[8:20])
        (opcode,) = struct.unpack("!I", data[20:24])
        policy = data[24:24 + POLICY_TAG_LEN].rstrip(b"\x00").decode(
            "utf-8", "replace")
        annotation_raw = data[24 + POLICY_TAG_LEN:length]
        rate: Optional[float] = None
        annotation = annotation_raw.decode("utf-8", "replace")
        if annotation.startswith("rate="):
            rate_text, _, rest = annotation.partition(";")
            try:
                rate = float(rate_text[5:])
            except ValueError:
                raise ShimError(
                    f"malformed rate annotation {rate_text!r}",
                    offset=24 + POLICY_TAG_LEN) from None
            annotation = rest
        flow = FiveTuple(
            IPv4Address.from_bytes(orig_raw), orig_port,
            IPv4Address.from_bytes(resp_raw), resp_port, proto,
        )
        try:
            verdict = Verdict(opcode)
            verdict.validate()
        except ValueError:
            raise ShimError(f"invalid verdict opcode {opcode:#x}",
                            offset=20) from None
        return cls(flow, verdict, policy, annotation, rate)

    def __repr__(self) -> str:
        return f"<ResponseShim {self.verdict!r} policy={self.policy!r} {self.flow}>"
