"""The discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`Event` records.  Components schedule callbacks at absolute or
relative virtual times; :meth:`Simulator.run` drains the queue in
timestamp order.  Ties are broken by a monotonically increasing sequence
number so that two events scheduled for the same instant fire in the
order they were scheduled — this keeps runs deterministic.

The engine knows nothing about networks or malware; it is the substrate
every other subsystem builds on.
"""

from __future__ import annotations

import heapq
import itertools
import random
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.journal import NULL_JOURNAL
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.telemetry import NULL_TELEMETRY


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and compared by
    ``(time, seq)`` so the heap pops them deterministically.  Cancelling
    an event marks it dead; the heap lazily discards dead entries, and
    the owning simulator compacts the heap when dead entries dominate.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label",
                 "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        # Back-reference to the owning simulator while queued, so
        # cancellation can be accounted for incrementally.  Cleared at
        # pop time (a cancel after firing is a no-op for accounting).
        self._sim = sim

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    @property
    def effective_label(self) -> str:
        """The scheduling label, falling back to the callback's name so
        traces and per-label histograms never show an anonymous event."""
        return self.label or getattr(
            self.callback, "__qualname__",
            getattr(self.callback, "__name__", "callback"),
        )

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (f"<Event t={self.time:.6f} seq={self.seq} "
                f"{self.effective_label} ({state})>")


class Simulator:
    """Virtual clock plus event queue.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Component RNGs are derived from
        it via :meth:`rng`, so a given seed replays identically.
    """

    #: Fire the queue-depth gauge once per this many events rather than
    #: per event (the stride is virtual-event-count based, so sampling
    #: stays deterministic under a fixed seed).
    QUEUE_DEPTH_STRIDE = 1024

    #: Compact the heap once dead entries outnumber live ones and the
    #: queue is at least this large (small queues aren't worth it).
    COMPACT_MIN_QUEUE = 64

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.events_processed = 0
        # Cancelled-but-still-queued entries, maintained incrementally
        # so ``pending`` is O(1) and compaction can trigger cheaply.
        self._dead = 0

        # Telemetry (disabled by default): the no-op instruments keep
        # the hot loop branch-free; attach_telemetry() swaps them for
        # live ones.  The decision journal (repro.obs.journal) follows
        # the same pattern and is independent of telemetry: components
        # capture sim.journal at construction, so it must be attached
        # before they are built.
        self.telemetry = NULL_TELEMETRY
        self.journal = NULL_JOURNAL
        self.profile_callbacks = False
        self._m_scheduled = NULL_INSTRUMENT
        self._m_fired = NULL_INSTRUMENT
        self._m_cancelled = NULL_INSTRUMENT
        self._g_queue_depth = NULL_INSTRUMENT
        self._h_callback = NULL_INSTRUMENT

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry,
                         profile_callbacks: bool = False) -> None:
        """Wire a live :class:`~repro.obs.telemetry.Telemetry` domain.

        ``profile_callbacks`` additionally records a *wall-clock*
        histogram of callback run time keyed by event label — useful
        for finding hot event types, but nondeterministic, so it is
        opt-in and kept out of snapshot-diff workflows.
        """
        self.telemetry = telemetry
        self.profile_callbacks = bool(profile_callbacks) and telemetry.enabled
        self._m_scheduled = telemetry.counter(
            "sim.events.scheduled", "Events pushed onto the queue").bind()
        self._m_fired = telemetry.counter(
            "sim.events.fired", "Callbacks executed").bind()
        self._m_cancelled = telemetry.counter(
            "sim.events.cancelled", "Dead events discarded at pop").bind()
        self._g_queue_depth = telemetry.gauge(
            "sim.queue.depth", "Events currently queued (incl. dead)").bind()
        self._h_callback = telemetry.histogram(
            "sim.callback.wall_time",
            "Wall-clock seconds per callback, by event label",
            deterministic=False)

    def attach_journal(self, journal) -> None:
        """Wire a live :class:`~repro.obs.journal.Journal`.  Must run
        before journaling components are constructed — they capture
        ``sim.journal`` at init time."""
        self.journal = journal

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named RNG stream, creating it on first use.

        Each stream is seeded from ``(master seed, name)`` so adding a
        new consumer does not perturb existing streams.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}/{name}")
        return self._rngs[name]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, args,
                      label, self)
        heapq.heappush(self._queue, event)
        self._m_scheduled.inc()
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        event = Event(time, next(self._seq), callback, args, label, self)
        heapq.heappush(self._queue, event)
        self._m_scheduled.inc()
        return event

    # ------------------------------------------------------------------
    # Cancellation accounting and heap compaction
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is queued."""
        self._dead += 1
        if (self._dead * 2 > len(self._queue)
                and len(self._queue) >= self.COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is the total order ``(time, seq)`` (seq is unique),
        so rebuilding the heap cannot perturb determinism.  The list
        object is mutated in place because :meth:`run` holds a local
        reference to it.
        """
        removed = self._dead
        if removed == 0:
            return
        self._queue[:] = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0
        self._m_cancelled.inc(removed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Runs until the queue empties, virtual time would pass ``until``,
        or ``max_events`` callbacks have fired.  Returns the virtual time
        at which execution stopped.  When stopped by ``until``, the clock
        is advanced to exactly ``until`` (events beyond it stay queued).
        """
        self._running = True
        processed = 0
        # Hot-loop kernel: bind everything the per-event path touches to
        # locals so each iteration pays local loads, not attribute walks.
        queue = self._queue
        heappop = heapq.heappop
        fired = self._m_fired
        cancelled_c = self._m_cancelled
        depth_g = self._g_queue_depth
        h_callback = self._h_callback
        profile = self.profile_callbacks
        stride = self.QUEUE_DEPTH_STRIDE
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    self._dead -= 1
                    cancelled_c.inc()
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heappop(queue)
                event._sim = None
                self._now = event.time
                if profile:
                    started = perf_counter()
                    event.callback(*event.args)
                    h_callback.observe(perf_counter() - started,
                                       label=event.effective_label)
                else:
                    event.callback(*event.args)
                fired.inc()
                processed += 1
                self.events_processed += 1
                # Sample the depth gauge on a virtual-event stride: the
                # trigger is event-count based, so with a fixed seed the
                # sampled values replay identically.
                if not self.events_processed % stride:
                    depth_g.set(len(queue))
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            depth_g.set(len(queue))
        return self._now

    def drain_coincident(self, callback: Callable[..., None]) -> List[tuple]:
        """Pop every consecutive head event due *now* for ``callback``
        and return their argument tuples, in scheduling order.

        This is the batch-coalescing primitive: a component whose
        callback is firing can claim the other deliveries scheduled for
        the same virtual instant and process them together.  Only a
        consecutive head run is taken — the first event with a
        different time or callback stops the scan — so the exact
        scalar execution order is preserved for everything left queued.
        Drained events are accounted as fired (they did run, just
        inside the claimant's batch), keeping event counters identical
        to unbatched execution.
        """
        queue = self._queue
        drained: List[tuple] = []
        heappop = heapq.heappop
        now = self._now
        while queue:
            head = queue[0]
            if head.cancelled:
                heappop(queue)
                self._dead -= 1
                self._m_cancelled.inc()
                continue
            if head.time != now or head.callback != callback:
                break
            heappop(queue)
            head._sim = None
            drained.append(head.args)
            self.events_processed += 1
            self._m_fired.inc()
        return drained

    def step(self) -> bool:
        """Run a single event.  Returns False if the queue is empty.

        Shares :meth:`run`'s firing path, so stepped events see the same
        telemetry instruments and ``profile_callbacks`` handling.
        """
        before = self.events_processed
        self.run(max_events=1)
        return self.events_processed != before

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return len(self._queue) - self._dead

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.3f} pending={self.pending}>"
