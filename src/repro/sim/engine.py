"""The discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`Event` records.  Components schedule callbacks at absolute or
relative virtual times; :meth:`Simulator.run` drains the queue in
timestamp order.  Ties are broken by a monotonically increasing sequence
number so that two events scheduled for the same instant fire in the
order they were scheduled — this keeps runs deterministic.

The engine knows nothing about networks or malware; it is the substrate
every other subsystem builds on.
"""

from __future__ import annotations

import heapq
import itertools
import random
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.telemetry import NULL_TELEMETRY


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` and compared by
    ``(time, seq)`` so the heap pops them deterministically.  Cancelling
    an event marks it dead; the heap lazily discards dead entries.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    @property
    def effective_label(self) -> str:
        """The scheduling label, falling back to the callback's name so
        traces and per-label histograms never show an anonymous event."""
        return self.label or getattr(
            self.callback, "__qualname__",
            getattr(self.callback, "__name__", "callback"),
        )

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (f"<Event t={self.time:.6f} seq={self.seq} "
                f"{self.effective_label} ({state})>")


class Simulator:
    """Virtual clock plus event queue.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Component RNGs are derived from
        it via :meth:`rng`, so a given seed replays identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.seed = seed
        self._rngs: Dict[str, random.Random] = {}
        self.events_processed = 0

        # Telemetry (disabled by default): the no-op instruments keep
        # the hot loop branch-free; attach_telemetry() swaps them for
        # live ones.
        self.telemetry = NULL_TELEMETRY
        self.profile_callbacks = False
        self._m_scheduled = NULL_INSTRUMENT
        self._m_fired = NULL_INSTRUMENT
        self._m_cancelled = NULL_INSTRUMENT
        self._g_queue_depth = NULL_INSTRUMENT
        self._h_callback = NULL_INSTRUMENT

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry,
                         profile_callbacks: bool = False) -> None:
        """Wire a live :class:`~repro.obs.telemetry.Telemetry` domain.

        ``profile_callbacks`` additionally records a *wall-clock*
        histogram of callback run time keyed by event label — useful
        for finding hot event types, but nondeterministic, so it is
        opt-in and kept out of snapshot-diff workflows.
        """
        self.telemetry = telemetry
        self.profile_callbacks = bool(profile_callbacks) and telemetry.enabled
        self._m_scheduled = telemetry.counter(
            "sim.events.scheduled", "Events pushed onto the queue").bind()
        self._m_fired = telemetry.counter(
            "sim.events.fired", "Callbacks executed").bind()
        self._m_cancelled = telemetry.counter(
            "sim.events.cancelled", "Dead events discarded at pop").bind()
        self._g_queue_depth = telemetry.gauge(
            "sim.queue.depth", "Events currently queued (incl. dead)").bind()
        self._h_callback = telemetry.histogram(
            "sim.callback.wall_time",
            "Wall-clock seconds per callback, by event label",
            deterministic=False)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named RNG stream, creating it on first use.

        Each stream is seeded from ``(master seed, name)`` so adding a
        new consumer does not perturb existing streams.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}/{name}")
        return self._rngs[name]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, args, label)
        heapq.heappush(self._queue, event)
        self._m_scheduled.inc()
        self._g_queue_depth.set(len(self._queue))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        event = Event(time, next(self._seq), callback, args, label)
        heapq.heappush(self._queue, event)
        self._m_scheduled.inc()
        self._g_queue_depth.set(len(self._queue))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Runs until the queue empties, virtual time would pass ``until``,
        or ``max_events`` callbacks have fired.  Returns the virtual time
        at which execution stopped.  When stopped by ``until``, the clock
        is advanced to exactly ``until`` (events beyond it stay queued).
        """
        self._running = True
        processed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._m_cancelled.inc()
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                if self.profile_callbacks:
                    started = perf_counter()
                    event.callback(*event.args)
                    self._h_callback.observe(perf_counter() - started,
                                             label=event.effective_label)
                else:
                    event.callback(*event.args)
                self._m_fired.inc()
                self._g_queue_depth.set(len(self._queue))
                processed += 1
                self.events_processed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._m_cancelled.inc()
                continue
            self._now = event.time
            event.callback(*event.args)
            self._m_fired.inc()
            self._g_queue_depth.set(len(self._queue))
            self.events_processed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.3f} pending={self.pending}>"
