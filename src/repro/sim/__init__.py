"""Discrete-event simulation substrate.

Everything in the GQ reproduction runs on a single virtual clock driven
by :class:`~repro.sim.engine.Simulator`.  The engine is deliberately
minimal: a priority queue of timestamped events plus a handful of helper
abstractions (:class:`~repro.sim.process.Process`,
:class:`~repro.sim.process.Timer`) that make it comfortable to express
protocol state machines and periodic behaviours.

Determinism is a design requirement — experiments that reproduce the
paper's tables must be replayable — so all randomness is funnelled
through per-component :class:`random.Random` instances derived from a
single experiment seed (see :func:`~repro.sim.engine.Simulator.rng`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import Process, Timer

__all__ = ["Event", "Simulator", "Process", "Timer"]
