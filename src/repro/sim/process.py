"""Process and timer helpers layered on the event engine.

Protocol implementations want two recurring idioms:

* :class:`Timer` — a restartable one-shot (think TCP retransmission
  timers, inmate activity-trigger windows).
* :class:`Process` — a periodic activity with start/stop semantics
  (think a spambot's sending loop or a DHCP server's lease reaper).

Both wrap raw :class:`~repro.sim.engine.Event` scheduling so callers
never juggle event handles themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    ``start()`` schedules the callback; ``restart()`` cancels any pending
    firing and re-arms; ``stop()`` cancels.  The timer can be re-armed
    from inside its own callback.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        callback: Callable[[], None],
        label: str = "timer",
    ) -> None:
        self.sim = sim
        self.duration = duration
        self.callback = callback
        self.label = label
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, duration: Optional[float] = None) -> None:
        """Arm the timer.  A second ``start`` while armed is an error."""
        if self.armed:
            raise RuntimeError(f"timer {self.label!r} already armed")
        if duration is not None:
            self.duration = duration
        self._event = self.sim.schedule(
            self.duration, self._fire, label=self.label
        )

    def restart(self, duration: Optional[float] = None) -> None:
        """Cancel any pending firing and re-arm."""
        self.stop()
        self.start(duration)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.callback()


class Process:
    """A periodic activity.

    Fires ``callback()`` every ``interval`` seconds once started.  The
    interval may be a constant or a zero-argument callable returning the
    next gap (useful for jittered or exponential pacing).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: Any,
        callback: Callable[[], None],
        label: str = "process",
        initial_delay: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.label = label
        self.initial_delay = initial_delay
        self._event: Optional[Event] = None
        self.running = False
        self.ticks = 0

    def _next_interval(self) -> float:
        if callable(self.interval):
            return float(self.interval())
        return float(self.interval)

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        delay = (
            self.initial_delay
            if self.initial_delay is not None
            else self._next_interval()
        )
        self._event = self.sim.schedule(delay, self._tick, label=self.label)

    def stop(self) -> None:
        self.running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self.running:
            return
        self.ticks += 1
        self.callback()
        if self.running:
            self._event = self.sim.schedule(
                self._next_interval(), self._tick, label=self.label
            )
