"""Fault plans: what goes wrong, where, and when — as pure data.

A :class:`FaultSpec` names one fault; a :class:`FaultPlan` is an
ordered list of them.  Like :class:`~repro.parallel.ShardSpec`, a plan
round-trips through JSON so it can ride inside a
:meth:`~repro.farm.FarmConfig.to_dict` payload to a spawn-started
campaign worker and be logged next to the results it produced.

Fault kinds
-----------
Shim link (gateway ↔ containment server, both directions):

``shim_delay``
    Add ``delay`` (+ uniform ``jitter``) seconds to every shim-link
    packet inside the ``start``/``end`` window.  Delivery stays FIFO
    per direction so the TCP substrate never sees reordering.
``shim_drop``
    Drop each shim-link packet with ``probability`` inside the window.
``shim_partition``
    Drop *every* shim-link packet inside the window.

Containment server (``server`` selects the index within the subfarm,
0 = the primary, 1.. = servers added by ``add_containment_servers``):

``cs_crash``
    At virtual time ``at`` the server falls silent: it stops issuing
    verdicts and the link view drops its traffic both ways.  With
    ``restore_after`` it comes back that many seconds later (health
    probes then return it to the failover pool).
``cs_hang``
    Verdicts computed inside the window are held and flushed when the
    window ends — the late-verdict case the router must tolerate.
``cs_slow``
    Add ``extra`` seconds of service time inside the window.

Hosting backend (``vlan`` optionally targets one inmate):

``revert_fail`` / ``reboot_fail``
    The next ``count`` matching life-cycle completions fail (the
    inmate lands back in STOPPED); ``count=None`` means every one
    inside the window.

Campaign workers (``shard`` is required):

``worker_crash`` / ``worker_hang`` / ``worker_error``
    The targeted shard kills its worker (``exitcode``), sleeps
    ``wall_seconds`` (tripping the pool's shard timeout), or fails
    with ``message``.

``subfarm=None`` targets every subfarm; times are virtual-clock
seconds.  All randomness (``shim_drop``, jitter) draws from a named
RNG stream derived from the farm seed, so identical seed + identical
plan ⇒ identical run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "LIFECYCLE_KINDS",
    "LINK_KINDS",
    "SERVER_KINDS",
    "WORKER_KINDS",
]

LINK_KINDS = frozenset({"shim_delay", "shim_drop", "shim_partition"})
SERVER_KINDS = frozenset({"cs_crash", "cs_hang", "cs_slow"})
LIFECYCLE_KINDS = frozenset({"revert_fail", "reboot_fail"})
WORKER_KINDS = frozenset({"worker_crash", "worker_hang", "worker_error"})
KINDS = LINK_KINDS | SERVER_KINDS | LIFECYCLE_KINDS | WORKER_KINDS

# Field defaults, in canonical emission order.  ``to_dict`` emits only
# non-default fields (plus ``kind``) so plans stay readable and their
# digests stable under future field additions.
_DEFAULTS = {
    "subfarm": None,
    "server": 0,
    "vlan": None,
    "shard": None,
    "at": None,
    "start": 0.0,
    "end": None,
    "probability": 1.0,
    "delay": 0.0,
    "jitter": 0.0,
    "extra": 0.0,
    "count": None,
    "exitcode": 134,
    "wall_seconds": 3600.0,
    "message": "injected worker error",
    "restore_after": None,
}


class FaultSpec:
    """One fault: a kind plus targeting and timing fields."""

    __slots__ = ("kind",) + tuple(_DEFAULTS)

    def __init__(self, kind: str, **fields: Any) -> None:
        self.kind = kind
        for name, default in _DEFAULTS.items():
            setattr(self, name, fields.pop(name, default))
        if fields:
            raise ValueError(
                f"unknown FaultSpec fields: {sorted(fields)}")
        self.validate()

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(known: {sorted(KINDS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        for name in ("delay", "jitter", "extra", "start", "wall_seconds"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must be > start")
        if self.kind == "cs_crash" and self.at is None:
            raise ValueError("cs_crash requires at=")
        if self.at is not None and self.at < 0.0:
            raise ValueError("at must be >= 0")
        if self.restore_after is not None and self.restore_after <= 0.0:
            raise ValueError("restore_after must be > 0")
        if self.kind in WORKER_KINDS and self.shard is None:
            raise ValueError(f"{self.kind} requires shard=")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1")
        if self.server < 0:
            raise ValueError("server index must be >= 0")

    def active(self, now: float) -> bool:
        """Is the spec's ``start``/``end`` window open at ``now``?"""
        return self.start <= now and (self.end is None or now < self.end)

    def to_dict(self) -> dict:
        out: Dict[str, Any] = {"kind": self.kind}
        for name, default in _DEFAULTS.items():
            value = getattr(self, name)
            if value != default:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        fields = dict(data)
        try:
            kind = fields.pop("kind")
        except KeyError:
            raise ValueError("fault spec needs a kind") from None
        unknown = set(fields) - set(_DEFAULTS)
        if unknown:
            raise ValueError(
                f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(kind, **fields)

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items()
                           if k != "kind")
        return f"<FaultSpec {self.kind} {fields}>"


class FaultPlan:
    """An ordered list of :class:`FaultSpec`; empty means no faults."""

    __slots__ = ("specs",)

    def __init__(self, specs: Sequence[Union[FaultSpec, dict]] = ()) -> None:
        self.specs: List[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in specs
        ]

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def coerce(cls, value: Union[None, dict, list,
                                 "FaultPlan"]) -> "FaultPlan":
        """Accept ``None`` / dict / spec list / plan; always a plan."""
        if value is None:
            return cls()
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        return cls(value)

    # ------------------------------------------------------------------
    # Targeting helpers
    # ------------------------------------------------------------------
    def for_subfarm(self, name: str) -> List[FaultSpec]:
        """Farm-side specs targeting ``name`` (or every subfarm)."""
        return [spec for spec in self.specs
                if spec.kind not in WORKER_KINDS
                and (spec.subfarm is None or spec.subfarm == name)]

    def worker_faults(self) -> Dict[int, dict]:
        """Worker-process specs keyed by shard index, as plain dicts
        (the form :func:`repro.parallel.run_campaign` stamps onto shard
        payloads)."""
        out: Dict[int, dict] = {}
        for spec in self.specs:
            if spec.kind in WORKER_KINDS:
                out[int(spec.shard)] = spec.to_dict()
        return out

    def verdict_outage_windows(self, subfarm: str,
                               server_count: int = 1) -> List[dict]:
        """Time windows during which the subfarm's verdict plane may be
        unavailable, as ``{"start", "end", "kind"}`` dicts (``end`` is
        ``None`` for an unbounded outage).

        This is the fault-plan overlay the isolation verifier layers
        over the static policy model: inside an outage window the
        pending policy — not the containment policy — decides flows, so
        a ``pending_policy="forward"`` subfarm has a fail-open grant
        exactly here.  Conservative by design: a window is emitted when
        the fault *could* starve verdicts, not only when it provably
        does.

        * Link faults (partition, lossy drop, delay past any deadline
          cannot be judged here — delay is excluded) hit every server
          at once: one window regardless of ``server_count``.
        * Server faults only open a window when the plan takes out
          every one of ``server_count`` servers for that period; a
          single crashed server of two leaves the failover pool able to
          answer, so no overlay.
        """
        windows: List[dict] = []
        per_server: Dict[int, List[tuple]] = {}
        for spec in self.for_subfarm(subfarm):
            if spec.kind == "shim_partition" or (
                    spec.kind == "shim_drop" and spec.probability > 0.0):
                windows.append({"start": spec.start, "end": spec.end,
                                "kind": spec.kind})
            elif spec.kind == "cs_crash":
                end = (spec.at + spec.restore_after
                       if spec.restore_after is not None else None)
                per_server.setdefault(spec.server, []).append(
                    (spec.at, end, spec.kind))
            elif spec.kind in ("cs_hang", "cs_slow"):
                per_server.setdefault(spec.server, []).append(
                    (spec.start, spec.end, spec.kind))
        # Server faults: intersect across all servers — an outage only
        # exists while *every* server is out.
        if len(per_server) >= max(1, server_count) \
                and all(index in per_server
                        for index in range(server_count)):
            for start, end, kind in per_server.get(0, []):
                covered = all(
                    any(o_start <= start
                        and (o_end is None
                             or (end is not None and end <= o_end))
                        for o_start, o_end, _ in per_server[index])
                    for index in range(1, server_count))
                if covered:
                    windows.append({"start": start, "end": end,
                                    "kind": kind})
        windows.sort(key=lambda w: (w["start"],
                                    w["end"] if w["end"] is not None
                                    else float("inf")))
        return windows

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(data.get("specs") or ())

    def digest(self) -> str:
        """sha256 over the canonical JSON of the plan."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def __repr__(self) -> str:
        return f"<FaultPlan specs={len(self.specs)}>"
