"""Install a :class:`~repro.faults.plan.FaultPlan` into a live farm.

The injector is created by :class:`~repro.farm.Farm` only when the
configured plan is non-empty, so a default farm carries no injector,
draws no RNG streams, schedules no events, and registers no telemetry
families — its digests are byte-identical to a faultless build.

Seams
-----
* **Shim link** — :class:`ShimLinkFaults` sits on
  ``SubfarmRouter.shim_link_faults``.  The router routes every packet
  bound for a containment server through :meth:`ShimLinkFaults.send`
  and every frame arriving *from* one through
  :meth:`ShimLinkFaults.admit_return`; delay, drop, and partition
  specs apply symmetrically.  Delayed delivery is FIFO per direction
  so the TCP substrate never sees reordering.
* **Containment server** — :class:`ServerFaultState` hangs off
  ``ContainmentServer.fault_state``.  A crashed server is *silent*:
  it stops issuing verdicts and the link view drops its traffic both
  ways, so from the gateway's perspective SYNs simply vanish — the
  case that exercises the verdict-deadline → retry → failover →
  fail-closed machinery (a RST would short-circuit it).  A hung
  server holds computed verdicts and flushes them when the hang window
  closes, producing the late verdicts the router must tolerate.
* **Hosting backend** — :class:`LifecycleFaultGate` on
  ``Inmate.lifecycle_faults`` fails revert/boot completions, which the
  :class:`~repro.inmates.controller.InmateController` answers with
  bounded retry.

Worker-process faults never reach the injector; they are stamped onto
shard payloads by :func:`repro.parallel.run_campaign` (see
:meth:`FaultPlan.worker_faults`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    LIFECYCLE_KINDS,
    LINK_KINDS,
    SERVER_KINDS,
)

__all__ = [
    "FaultInjector",
    "LifecycleFaultGate",
    "ServerFaultState",
    "ShimLinkFaults",
]


class ShimLinkFaults:
    """Link-level fault view for one subfarm's shim link."""

    def __init__(self, sim, rng, specs: List[FaultSpec], metric,
                 subfarm: str) -> None:
        self.sim = sim
        self.rng = rng
        self.subfarm = subfarm
        self.partitions = [s for s in specs if s.kind == "shim_partition"]
        self.drops = [s for s in specs if s.kind == "shim_drop"]
        self.delays = [s for s in specs if s.kind == "shim_delay"]
        # Crashed-server silence is enforced here too (both directions);
        # FaultInjector.attach_server registers states by server IP.
        self.server_states: Dict[object, "ServerFaultState"] = {}
        self._m_injected = metric
        # Per-direction FIFO horizon for delayed delivery.
        self._fifo_to_cs = 0.0
        self._fifo_from_cs = 0.0

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self._m_injected.inc(subfarm=self.subfarm, kind=kind)
        journal = self.sim.journal
        if journal.enabled:
            journal.record("fault.injected", fault=kind,
                           subfarm=self.subfarm)

    def _drop_or_delay(self, now: float, server_ip) -> object:
        """Shared disposition: ``"drop"``, a delay in seconds, or 0."""
        state = self.server_states.get(server_ip)
        if state is not None and state.crashed:
            self._count("cs-crash-drop")
            return "drop"
        for spec in self.partitions:
            if spec.active(now):
                self._count("partition-drop")
                return "drop"
        for spec in self.drops:
            if spec.active(now) and self.rng.random() < spec.probability:
                self._count("shim-drop")
                return "drop"
        delay = 0.0
        for spec in self.delays:
            if spec.active(now):
                delay += spec.delay
                if spec.jitter > 0.0:
                    delay += spec.jitter * self.rng.random()
        return delay

    def send(self, cs_ip, packet, emit) -> None:
        """Router → containment server.  ``emit(cs_ip, packet)`` is the
        underlying service-network emission."""
        now = self.sim.now
        disposition = self._drop_or_delay(now, cs_ip)
        if disposition == "drop":
            return
        if disposition > 0.0:
            when = now + disposition
            if when < self._fifo_to_cs:
                when = self._fifo_to_cs
            self._fifo_to_cs = when
            self._count("shim-delay")
            self.sim.schedule_at(when, emit, cs_ip, packet,
                                 label="fault-shim-delay")
            return
        emit(cs_ip, packet)

    def admit_return(self, frame, deliver) -> bool:
        """Containment server → router.  ``True`` means deliver now;
        ``False`` means the frame was dropped or rescheduled (delayed
        frames re-enter through ``deliver(frame)``, which must bypass
        this check)."""
        now = self.sim.now
        disposition = self._drop_or_delay(now, frame.payload.src)
        if disposition == "drop":
            return False
        if disposition > 0.0:
            when = now + disposition
            if when < self._fifo_from_cs:
                when = self._fifo_from_cs
            self._fifo_from_cs = when
            self._count("shim-delay")
            self.sim.schedule_at(when, deliver, frame,
                                 label="fault-shim-delay")
            return False
        return True


class ServerFaultState:
    """Crash/hang/slow behaviour for one containment server."""

    def __init__(self, sim, server, specs: List[FaultSpec], metric,
                 subfarm: str) -> None:
        self.sim = sim
        self.server = server
        self.subfarm = subfarm
        self.crashed = False
        self.crashes = 0
        self.hang_windows: List[FaultSpec] = []
        self.slow_windows: List[FaultSpec] = []
        self.held: List[tuple] = []
        self._m_injected = metric
        for spec in specs:
            if spec.kind == "cs_crash":
                at = max(spec.at, sim.now)
                sim.schedule_at(at, self._crash, label="fault-cs-crash")
                if spec.restore_after is not None:
                    sim.schedule_at(at + spec.restore_after, self._restore,
                                    label="fault-cs-restore")
            elif spec.kind == "cs_hang":
                self.hang_windows.append(spec)
                if spec.end is not None:
                    sim.schedule_at(max(spec.end, sim.now), self._flush_held,
                                    label="fault-cs-hang-end")
            elif spec.kind == "cs_slow":
                self.slow_windows.append(spec)

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self._m_injected.inc(subfarm=self.subfarm, kind=kind)
        journal = self.sim.journal
        if journal.enabled:
            journal.record("fault.injected", fault=kind,
                           subfarm=self.subfarm)

    def _crash(self) -> None:
        self.crashed = True
        self.crashes += 1
        # A crash loses any verdicts the hang machinery was holding.
        self.held.clear()
        self._count("cs-crash")

    def _restore(self) -> None:
        self.crashed = False
        self._count("cs-restore")

    def hung(self, now: float) -> bool:
        return any(spec.active(now) for spec in self.hang_windows)

    def extra_service_time(self, now: float) -> float:
        return sum(spec.extra for spec in self.slow_windows
                   if spec.active(now))

    def responsive(self, now: float) -> bool:
        """Would a health probe get an answer right now?"""
        return not self.crashed and not self.hung(now)

    def hold(self, cs_conn, decision) -> None:
        self.held.append((cs_conn, decision))
        self._count("cs-hang-hold")

    def _flush_held(self) -> None:
        held, self.held = self.held, []
        for cs_conn, decision in held:
            self.server.schedule_issue(cs_conn, decision)


class LifecycleFaultGate:
    """Count-limited revert/boot failure gate for one inmate."""

    def __init__(self, sim, specs: List[FaultSpec], metric,
                 subfarm: str) -> None:
        self.sim = sim
        self.subfarm = subfarm
        self._m_injected = metric
        # [spec, remaining budget]; None = unlimited within the window.
        self._specs = [[spec, spec.count] for spec in specs]

    _EVENT_KINDS = {"revert": "revert_fail", "boot": "reboot_fail"}

    def __call__(self, event: str) -> bool:
        """``True`` if the completing ``event`` should fail."""
        now = self.sim.now
        wanted = self._EVENT_KINDS.get(event)
        for entry in self._specs:
            spec, remaining = entry
            if spec.kind != wanted or not spec.active(now):
                continue
            if remaining is not None:
                if remaining <= 0:
                    continue
                entry[1] = remaining - 1
            self._m_injected.inc(subfarm=self.subfarm, kind=spec.kind)
            journal = self.sim.journal
            if journal.enabled:
                journal.record("fault.injected", fault=spec.kind,
                               subfarm=self.subfarm)
            return True
        return False


class FaultInjector:
    """Installs plan specs at farm seams as components are built."""

    def __init__(self, sim, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        self._links: Dict[str, ShimLinkFaults] = {}
        self._m_injected = sim.telemetry.counter(
            "faults.injected", "Fault injections applied, by kind")

    def attach_subfarm(self, subfarm) -> None:
        specs = self.plan.for_subfarm(subfarm.name)
        link_specs = [s for s in specs if s.kind in LINK_KINDS]
        server_specs = [s for s in specs if s.kind in SERVER_KINDS]
        if link_specs or server_specs:
            faults = ShimLinkFaults(
                self.sim, self.sim.rng(f"faults/link/{subfarm.name}"),
                link_specs, self._m_injected, subfarm.name)
            subfarm.router.shim_link_faults = faults
            self._links[subfarm.name] = faults
        self.attach_server(subfarm, subfarm.containment_server, 0)

    def attach_server(self, subfarm, server, index: int) -> None:
        specs = [s for s in self.plan.for_subfarm(subfarm.name)
                 if s.kind in SERVER_KINDS and int(s.server) == index]
        if not specs:
            return
        state = ServerFaultState(self.sim, server, specs,
                                 self._m_injected, subfarm.name)
        server.fault_state = state
        link = self._links.get(subfarm.name)
        if link is not None:
            link.server_states[server.host.ip] = state

    def attach_inmate(self, subfarm, inmate) -> None:
        specs = [s for s in self.plan.for_subfarm(subfarm.name)
                 if s.kind in LIFECYCLE_KINDS
                 and (s.vlan is None or s.vlan == inmate.vlan)]
        if specs:
            inmate.lifecycle_faults = LifecycleFaultGate(
                self.sim, specs, self._m_injected, subfarm.name)
