"""Deterministic fault injection for the containment farm.

GQ's containment servers are logically and physically separate from
the gateway (paper §4, Figure 4): every flow crosses a real shim link
before it has a verdict, and the paper's operational stance is that
containment must hold even when components misbehave — "when in
doubt, drop".  This package provides the attack side of that story: a
:class:`FaultPlan` describes scheduled and probabilistic faults
(shim-link delay/drop/partition, containment-server crash/hang/slow,
hosting revert/reboot failures, worker-process faults), and a
:class:`FaultInjector` installs them at fixed seams in the router,
containment server, and inmate life cycle.

Everything is driven off the virtual clock and named
:meth:`~repro.sim.engine.Simulator.rng` streams, so an identical seed
plus an identical plan replays byte-identically — and an *empty* plan
installs nothing at all, leaving the farm's digests untouched.
"""

from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    LIFECYCLE_KINDS,
    LINK_KINDS,
    SERVER_KINDS,
    WORKER_KINDS,
)
from repro.faults.injector import (
    FaultInjector,
    LifecycleFaultGate,
    ServerFaultState,
    ShimLinkFaults,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LifecycleFaultGate",
    "LIFECYCLE_KINDS",
    "LINK_KINDS",
    "SERVER_KINDS",
    "ServerFaultState",
    "ShimLinkFaults",
    "WORKER_KINDS",
]
