"""Inmate hosting and life-cycle control (§5.5, §6.3, §6.4).

Inmates are the infected (or to-be-infected) machines of the farm.
Each occupies a unique VLAN ID — the identity everything else keys on
— and runs on one of three hosting backends: full-system
virtualization, emulation, or raw iron.  The inmate controller on the
gateway executes life-cycle actions (create / start / stop / revert /
terminate) sent by containment servers over the management network,
abstracting the hosting details behind the VLAN ID.
"""

from repro.inmates.controller import InmateController, LifecycleMessenger
from repro.inmates.hosting import (
    EmulatedBackend,
    HostingBackend,
    Inmate,
    InmateState,
    RawIronBackend,
    VirtualizedBackend,
)
from repro.inmates.vlan_pool import VlanPool

__all__ = [
    "Inmate",
    "InmateState",
    "InmateController",
    "LifecycleMessenger",
    "HostingBackend",
    "VirtualizedBackend",
    "EmulatedBackend",
    "RawIronBackend",
    "VlanPool",
]
