"""Inmate OS images: the boot-time behaviour factories.

An *image* is what a hosting backend restores on revert: a function
that installs the machine's boot behaviour onto a fresh host.  The
reproduction ships the two images the paper's workflows need:

* :func:`autoinfect_image` — GQ's master image for intentional
  infection (§6.6): at first boot, DHCP, then the infection script
  fetches the sample over HTTP from the preconfigured address/port and
  executes it.  (The HTTP "server" is impersonated by the containment
  server as a REWRITE containment.)
* :func:`honeypot_image` — the worm-era image: DHCP, then vulnerable
  services listening for exploitation (traditional honeyfarm model).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.malware.corpus import execute_blob
from repro.malware.worms import VulnerableServices
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpRequest
from repro.net.host import Host
from repro.net.tcp import TcpConnection
from repro.services.dhcp import DhcpClient

# Figure 6's [Autoinfect] section: the address the infection script
# dials.  It deliberately belongs to no real machine.
AUTOINFECT_ADDRESS = IPv4Address("10.9.8.7")
AUTOINFECT_PORT = 6543


class InfectionScript:
    """The master image's first-boot infection routine (§6.6)."""

    def __init__(self, host: Host,
                 address: IPv4Address = AUTOINFECT_ADDRESS,
                 port: int = AUTOINFECT_PORT,
                 on_executed: Optional[Callable] = None,
                 retry_interval: float = 30.0) -> None:
        self.host = host
        self.address = IPv4Address(address)
        self.port = port
        self.on_executed = on_executed
        self.retry_interval = retry_interval
        self.attempts = 0
        self.specimen = None

    def run(self) -> None:
        if self.specimen is not None:
            return
        self.attempts += 1
        conn = self.host.tcp.connect(self.address, self.port)
        parser = HttpParser("response")

        def on_data(c: TcpConnection, data: bytes) -> None:
            for response in parser.feed(data):
                c.close()
                if response.status == 200 and response.body:
                    self._execute(response.body)
                else:
                    self._retry()

        request = HttpRequest("GET", "/sample",
                              {"Host": str(self.address),
                               "User-Agent": "gq-infect/1.0"})
        conn.on_established = lambda c: c.send(request.to_bytes())
        conn.on_data = on_data
        conn.on_fail = lambda c: self._retry()
        conn.on_reset = lambda c: self._retry()

    def _execute(self, blob: bytes) -> None:
        try:
            self.specimen = execute_blob(blob, self.host)
        except (ValueError, KeyError):
            self._retry()
            return
        self.host.specimen = self.specimen  # type: ignore[attr-defined]
        if self.on_executed is not None:
            self.on_executed(self.host, self.specimen)

    def _retry(self) -> None:
        self.host.sim.schedule(self.retry_interval, self.run,
                               label="infect-retry")


def autoinfect_image(
    on_executed: Optional[Callable] = None,
    address: IPv4Address = AUTOINFECT_ADDRESS,
    port: int = AUTOINFECT_PORT,
    boot_delay: float = 2.0,
):
    """Image factory: DHCP then the auto-infection script.

    The script runs at *first* boot only — "subsequent reboots should
    not trigger reinfection, as some malware intentionally triggers
    reboots itself" — which falls out naturally here because a reboot
    without revert keeps the host object and its running specimen.
    """

    def image(host: Host) -> None:
        script = InfectionScript(host, address, port, on_executed)
        host.infection_script = script  # type: ignore[attr-defined]

        def configured(configured_host: Host) -> None:
            configured_host.sim.schedule(boot_delay, script.run,
                                         label="first-boot-infect")

        DhcpClient(host, on_configured=configured).start()

    return image


def honeypot_image(
    on_infected: Callable,
    ports: Optional[List[int]] = None,
):
    """Image factory: DHCP plus the era's vulnerable services.

    ``on_infected(host, family_key, sample_id, params)`` decides what
    executing the delivered exploit means — typically instantiating
    the matching worm model on the victim.
    """

    def image(host: Host) -> None:
        def configured(configured_host: Host) -> None:
            configured_host.vuln = VulnerableServices(  # type: ignore
                configured_host, on_infected, ports=ports,
            )

        DhcpClient(host, on_configured=configured).start()

    return image


def honeycrawler_image(
    urls: List[str],
    visit_interval: float = 20.0,
    on_infection: Optional[Callable] = None,
):
    """Image factory: a honeycrawler (§4's client-side role).

    The crawler visits each URL in turn with a deliberately vulnerable
    "browser": pages referencing ``/exploit.js`` trigger the classic
    drive-by chain (fetch script, fetch payload, execute) — the web
    drive-by infection §6.6 mentions.  ``urls`` are host names
    resolved through the farm resolver.
    """
    from repro.net.dns import QTYPE_A, StubResolverClient

    def image(host: Host) -> None:
        state = {"visited": [], "infected": False}
        host.crawler_state = state  # type: ignore[attr-defined]

        def configured(configured_host: Host) -> None:
            resolver = StubResolverClient(
                configured_host, configured_host.dns_server)

            def visit(index: int) -> None:
                if state["infected"] or index >= len(urls):
                    return
                name = urls[index]

                def resolved(records) -> None:
                    if not records:
                        advance()
                        return
                    fetch(records[0].address, name, "/", handle_page)

                def handle_page(body: bytes) -> None:
                    state["visited"].append(name)
                    if b'src="/exploit.js"' in body:
                        fetch_ip_for_exploit(name)
                    else:
                        advance()

                def fetch_ip_for_exploit(site: str) -> None:
                    def got(records) -> None:
                        if records:
                            fetch(records[0].address, site, "/exploit.js",
                                  lambda _js: fetch(
                                      records[0].address, site,
                                      "/payload.exe", execute))
                    resolver.resolve(site, got, QTYPE_A)

                def execute(blob: bytes) -> None:
                    try:
                        specimen = execute_blob(blob, configured_host)
                    except (ValueError, KeyError):
                        advance()
                        return
                    state["infected"] = True
                    configured_host.specimen = specimen  # type: ignore
                    if on_infection is not None:
                        on_infection(configured_host, specimen)

                def advance() -> None:
                    configured_host.sim.schedule(
                        visit_interval, visit, index + 1,
                        label="crawler-visit")

                resolver.resolve(name, resolved, QTYPE_A)

            def fetch(ip, site: str, path: str, done) -> None:
                conn = configured_host.tcp.connect(ip, 80)
                parser = HttpParser("response")

                def on_data(c, data):
                    for response in parser.feed(data):
                        c.close()
                        done(response.body)

                conn.on_established = lambda c: c.send(
                    HttpRequest("GET", path, {"Host": site,
                                              "User-Agent":
                                              "MSIE/6.0 (vulnerable)"}
                                ).to_bytes())
                conn.on_data = on_data
                conn.on_fail = lambda c: None
                conn.on_reset = lambda c: None

            visit(0)

        DhcpClient(host, on_configured=configured).start()

    return image


def idle_image():
    """A machine that boots and does nothing (control group)."""

    def image(host: Host) -> None:
        DhcpClient(host).start()

    return image
