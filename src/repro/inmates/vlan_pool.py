"""VLAN ID allocation (§5.2, §7.2).

"VLAN IDs thus serve as handy identifiers for individual inmates ...
which our inmate creation/deletion procedure automatically picks and
releases from the available VLAN ID pool."  IEEE 802.1Q caps the pool
at 12 bits (4094 usable IDs) — the first scalability constraint §7.2
discusses.
"""

from __future__ import annotations

from typing import List, Set

VLAN_MIN = 1
VLAN_MAX = 4094  # 802.1Q: 0 and 4095 are reserved


class VlanPoolExhausted(RuntimeError):
    """All VLAN IDs in the pool are in use (the 802.1Q 12-bit limit)."""


class VlanPool:
    """Allocator over a contiguous range of VLAN IDs."""

    def __init__(self, first: int = 2, last: int = VLAN_MAX) -> None:
        if not VLAN_MIN <= first <= last <= VLAN_MAX:
            raise ValueError(f"bad VLAN range [{first}, {last}]")
        self.first = first
        self.last = last
        self._in_use: Set[int] = set()
        self._next = first

    @property
    def capacity(self) -> int:
        return self.last - self.first + 1

    @property
    def in_use(self) -> int:
        return len(self._in_use)

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def allocate(self) -> int:
        if self.available == 0:
            raise VlanPoolExhausted(
                f"all {self.capacity} VLAN IDs in [{self.first}, {self.last}] "
                f"are in use (802.1Q allows at most 4094)"
            )
        for _ in range(self.capacity):
            candidate = self._next
            self._next += 1
            if self._next > self.last:
                self._next = self.first
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                return candidate
        raise VlanPoolExhausted("no free VLAN ID found")  # pragma: no cover

    def allocate_specific(self, vlan: int) -> int:
        if not self.first <= vlan <= self.last:
            raise ValueError(f"VLAN {vlan} outside pool range")
        if vlan in self._in_use:
            raise VlanPoolExhausted(f"VLAN {vlan} already in use")
        self._in_use.add(vlan)
        return vlan

    def release(self, vlan: int) -> None:
        self._in_use.discard(vlan)

    def allocated_ids(self) -> List[int]:
        return sorted(self._in_use)
