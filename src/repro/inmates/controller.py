"""The inmate controller (§5.5, §6.3).

"We structure the inmate controller as a simple message receiver that
interprets the life-cycle control instructions coming in from the
containment servers.  We use a simple text-based message format."

The controller lives centrally on the gateway, holds the inventory of
inmates keyed by VLAN ID, and abstracts the hosting backends.
Containment servers reach it out-of-band via a dedicated interface on
the management network — :class:`LifecycleMessenger` is that client
side, speaking the text protocol over UDP.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.inmates.hosting import Inmate
from repro.net.addresses import IPv4Address
from repro.net.host import Host
from repro.net.packet import IPv4Packet, UDPDatagram
from repro.sim.engine import Simulator

CONTROLLER_PORT = 9048

ACTIONS = ("start", "stop", "reboot", "revert", "terminate")


class InmateController:
    """VLAN-keyed life-cycle executor on the gateway."""

    def __init__(self, sim: Simulator,
                 on_action: Optional[Callable[[str, int], None]] = None,
                 retry_limit: int = 2,
                 retry_backoff: float = 30.0) -> None:
        self.sim = sim
        self._inmates: Dict[int, Inmate] = {}
        self.actions_executed: List[Tuple[float, str, int]] = []
        self.unknown_targets = 0
        self.malformed_messages = 0
        # Hook for the subfarm router to clear per-inmate state
        # (safety-filter history, bridge entries, open flows).
        self.on_action = on_action
        # Bounded retry for failed life-cycle completions (fault plane):
        # a failed revert/boot is retried up to ``retry_limit`` times
        # with exponential backoff, then the inmate is abandoned.
        self.retry_limit = retry_limit
        self.retry_backoff = retry_backoff
        self._retry_state: Dict[Tuple[str, int], int] = {}
        self.retries_scheduled: List[Tuple[float, str, int]] = []
        self.abandoned: List[Tuple[float, str, int]] = []
        tel = sim.telemetry
        self._m_lifecycle = tel.counter(
            "inmates.lifecycle", "Life-cycle actions executed, by kind")
        self._m_errors = tel.counter(
            "inmates.lifecycle_errors", "Rejected life-cycle requests")

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def register(self, inmate: Inmate) -> None:
        if inmate.vlan in self._inmates:
            raise ValueError(f"VLAN {inmate.vlan} already has an inmate")
        self._inmates[inmate.vlan] = inmate
        inmate.on_lifecycle_failure = self._lifecycle_failure

    def unregister(self, vlan: int) -> None:
        self._inmates.pop(vlan, None)

    def inmate(self, vlan: int) -> Optional[Inmate]:
        return self._inmates.get(vlan)

    def inventory(self) -> Dict[int, Inmate]:
        return dict(self._inmates)

    # ------------------------------------------------------------------
    # Action execution ("the controller requires only the inmate's
    # VLAN ID in order to identify the target of a life-cycle action")
    # ------------------------------------------------------------------
    def execute(self, action: str, vlan: int,
                _from_retry: bool = False) -> bool:
        if action not in ACTIONS:
            self.malformed_messages += 1
            self._m_errors.inc(kind="malformed")
            return False
        inmate = self._inmates.get(vlan)
        if inmate is None:
            self.unknown_targets += 1
            self._m_errors.inc(kind="unknown-target")
            return False
        if not _from_retry:
            # A fresh external request resets the retry budget.
            self._retry_state.pop((action, vlan), None)
        self.actions_executed.append((self.sim.now, action, vlan))
        self._m_lifecycle.inc(action=action)
        getattr(inmate, action)()
        if self.on_action is not None:
            self.on_action(action, vlan)
        return True

    # ------------------------------------------------------------------
    # Bounded retry on failed life-cycle completions (fault plane)
    # ------------------------------------------------------------------
    def _lifecycle_failure(self, action: str, inmate: Inmate) -> None:
        key = (action, inmate.vlan)
        attempt = self._retry_state.get(key, 0)
        if attempt >= self.retry_limit:
            self.abandoned.append((self.sim.now, action, inmate.vlan))
            self._m_errors.inc(kind="abandoned")
            self._retry_state.pop(key, None)
            return
        self._retry_state[key] = attempt + 1
        delay = self.retry_backoff * (2 ** attempt)
        self.retries_scheduled.append((self.sim.now, action, inmate.vlan))
        self._m_errors.inc(kind="retry")
        self.sim.schedule(
            delay, self.execute, action, inmate.vlan, True,
            label=f"lifecycle-retry-{action}-v{inmate.vlan}")

    # ------------------------------------------------------------------
    # Text protocol (management network)
    # ------------------------------------------------------------------
    def parse_and_execute(self, message: bytes) -> bool:
        """Handle one text message, e.g. ``b"revert 18"``."""
        try:
            text = message.decode("ascii").strip()
            action, vlan_text = text.split(" ", 1)
            vlan = int(vlan_text)
        except (UnicodeDecodeError, ValueError):
            self.malformed_messages += 1
            self._m_errors.inc(kind="malformed")
            return False
        return self.execute(action, vlan)

    def bind(self, host: Host, port: int = CONTROLLER_PORT) -> None:
        """Listen for life-cycle messages on a management-network host."""
        def handler(_host: Host, _packet: IPv4Packet,
                    datagram: UDPDatagram) -> None:
            self.parse_and_execute(datagram.payload)

        host.udp.bind(port, handler)


class LifecycleMessenger:
    """Containment-server side of the life-cycle text protocol.

    Sends actions over the containment server's *additional* interface
    on the management network — out-of-band of all inmate traffic.
    """

    def __init__(self, mgmt_host: Host, controller_ip: IPv4Address,
                 controller_port: int = CONTROLLER_PORT) -> None:
        self.mgmt_host = mgmt_host
        self.controller_ip = IPv4Address(controller_ip)
        self.controller_port = controller_port
        self.messages_sent = 0

    def __call__(self, action: str, vlan: int) -> None:
        message = f"{action} {vlan}".encode("ascii")
        self.messages_sent += 1
        self.mgmt_host.udp.sendto(message, self.controller_ip,
                                  self.controller_port)
