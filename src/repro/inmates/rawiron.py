"""Raw iron management (§6.4).

VM-detecting anti-forensics is sidestepped, not countered: "GQ
bypasses this problem by providing a group of identically configured
small form-factor x86 systems running on a network-controlled power
sequencer to enable remote, OS-independent reboots."

Reimaging state machine, verbatim from the paper:

1. Configure the controller's DHCP server to send PXE boot
   information for the machine.
2. Power-cycle it; the network boot installs a small Linux image
   (Trinity Rescue Kit), which downloads a compressed Windows image
   and writes it to disk with NTFS-aware tools.
3. Disable network-booting; power-cycle again; the machine boots the
   freshly installed local image.

"This process takes around 6 minutes per reimaging cycle."  The
alternate flavour restores from a hidden second Linux partition:
slightly slower (~10 minutes) "but supports efficient reimaging of
all raw-iron systems simultaneously."
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator

# Phase durations (seconds) that add up to the paper's ~6-minute
# network reimage cycle and ~10-minute local-partition restore.
POWER_CYCLE_TIME = 10.0
PXE_BOOT_TIME = 20.0
IMAGE_TRANSFER_TIME = 240.0   # compressed Windows image over TFTP/NFS
IMAGE_WRITE_TIME = 60.0       # NTFS-aware write to disk
LOCAL_RESTORE_TIME = 540.0    # hidden-partition restore (no network)
LOCAL_BOOT_TIME = 30.0


class MachineState(enum.Enum):
    """Where a raw-iron box is in its boot/reimage cycle."""

    OFF = "off"
    LOCAL_BOOT = "local-boot"        # running the inmate OS
    PXE_BOOT = "pxe-boot"
    IMAGE_TRANSFER = "image-transfer"
    IMAGE_WRITE = "image-write"
    LOCAL_RESTORE = "local-restore"


class RawIronMachine:
    """One small form-factor x86 system on its exclusive VLAN."""

    def __init__(self, machine_id: str, vlan: int) -> None:
        self.machine_id = machine_id
        self.vlan = vlan
        self.state = MachineState.OFF
        self.network_boot_enabled = False
        self.power_cycles = 0
        self.reimages_completed = 0
        self.history: List[str] = []

    def __repr__(self) -> str:
        return f"<RawIronMachine {self.machine_id} {self.state.value}>"


class PowerSequencer:
    """The network-controlled power sequencer: remote, OS-independent
    power cycling."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.cycles_issued = 0

    def power_cycle(self, machine: RawIronMachine,
                    on_off: Callable[[], None]) -> None:
        self.cycles_issued += 1
        machine.power_cycles += 1
        machine.state = MachineState.OFF
        machine.history.append(f"{self.sim.now:.0f} power-cycle")
        self.sim.schedule(POWER_CYCLE_TIME, on_off, label="power-cycle")


class RawIronController:
    """Drives reimaging for the raw-iron pool.

    Has a network interface on a VLAN trunk covering all raw-iron
    VLANs (a Click configuration multiplexes it in the real system);
    runs the DHCP/TFTP/NFS servers the PXE boots talk to.  Both are
    modelled as the controller's direct command over machine boot
    configuration plus the phase timings above.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.sequencer = PowerSequencer(sim)
        self.machines: Dict[str, RawIronMachine] = {}
        self._next_vlan = 3900  # raw-iron VLAN block
        self.reimage_log: List[tuple] = []

    def add_machine(self, machine_id: str,
                    vlan: Optional[int] = None) -> RawIronMachine:
        if machine_id in self.machines:
            raise ValueError(f"machine {machine_id!r} already registered")
        if vlan is None:
            vlan = self._next_vlan
            self._next_vlan += 1
        machine = RawIronMachine(machine_id, vlan)
        self.machines[machine_id] = machine
        return machine

    # ------------------------------------------------------------------
    # Network reimage (~6 minutes per machine)
    # ------------------------------------------------------------------
    def reimage(self, machine_id: str,
                on_done: Optional[Callable[[RawIronMachine], None]] = None
                ) -> None:
        machine = self.machines[machine_id]
        started = self.sim.now
        # Step 1: PXE on, power cycle into network boot.
        machine.network_boot_enabled = True
        self.sequencer.power_cycle(
            machine, lambda: self._pxe_boot(machine, started, on_done))

    def _pxe_boot(self, machine: RawIronMachine, started: float,
                  on_done) -> None:
        machine.state = MachineState.PXE_BOOT
        machine.history.append(f"{self.sim.now:.0f} pxe-boot (TRK)")
        self.sim.schedule(PXE_BOOT_TIME, self._transfer, machine, started,
                          on_done, label="pxe-boot")

    def _transfer(self, machine: RawIronMachine, started: float,
                  on_done) -> None:
        machine.state = MachineState.IMAGE_TRANSFER
        machine.history.append(f"{self.sim.now:.0f} image-transfer")
        self.sim.schedule(IMAGE_TRANSFER_TIME, self._write, machine,
                          started, on_done, label="image-transfer")

    def _write(self, machine: RawIronMachine, started: float,
               on_done) -> None:
        machine.state = MachineState.IMAGE_WRITE
        machine.history.append(f"{self.sim.now:.0f} image-write")
        self.sim.schedule(IMAGE_WRITE_TIME, self._finish_network, machine,
                          started, on_done, label="image-write")

    def _finish_network(self, machine: RawIronMachine, started: float,
                        on_done) -> None:
        # Step 3: PXE off, power cycle into the fresh local image.
        machine.network_boot_enabled = False
        self.sequencer.power_cycle(
            machine, lambda: self._local_boot(machine, started, on_done))

    # ------------------------------------------------------------------
    # Local-partition restore (~10 minutes, parallel across the pool)
    # ------------------------------------------------------------------
    def restore_all_from_local_partition(
        self,
        on_done: Optional[Callable[[RawIronMachine], None]] = None,
    ) -> None:
        """Reimage every machine simultaneously from the hidden
        partition — slower per machine, far faster for the pool."""
        for machine in self.machines.values():
            started = self.sim.now
            self.sequencer.power_cycle(
                machine,
                lambda m=machine, s=started: self._local_restore(m, s, on_done),
            )

    def _local_restore(self, machine: RawIronMachine, started: float,
                       on_done) -> None:
        machine.state = MachineState.LOCAL_RESTORE
        machine.history.append(f"{self.sim.now:.0f} local-restore")
        self.sim.schedule(
            LOCAL_RESTORE_TIME,
            lambda: self._finish_local(machine, started, on_done),
            label="local-restore",
        )

    def _finish_local(self, machine: RawIronMachine, started: float,
                      on_done) -> None:
        self.sequencer.power_cycle(
            machine, lambda: self._local_boot(machine, started, on_done))

    # ------------------------------------------------------------------
    def _local_boot(self, machine: RawIronMachine, started: float,
                    on_done) -> None:
        machine.state = MachineState.LOCAL_BOOT
        machine.reimages_completed += 1
        elapsed = self.sim.now - started
        machine.history.append(
            f"{self.sim.now:.0f} local-boot (cycle {elapsed:.0f}s)")
        self.reimage_log.append((machine.machine_id, started, self.sim.now))
        if on_done is not None:
            self.sim.schedule(LOCAL_BOOT_TIME, on_done, machine,
                              label="local-boot")

    def cycle_times(self) -> List[float]:
        return [end - start for _id, start, end in self.reimage_log]
