"""Inmate hosting backends and the inmate life-cycle (§5.2, §6.3).

GQ hosts inmates on VMware ESX (full-system virtualization), QEMU
(customized emulation), and unvirtualized "raw iron" — transparently
to the gateway.  The reproduction models each backend by its two
containment-relevant properties:

* life-cycle latencies (boot / revert-to-snapshot / reimage), and
* whether a specimen can *detect* the platform as virtualized (§6.4:
  VM-detecting anti-forensics is the reason raw iron exists).

An :class:`Inmate` owns the simulated machine on its VLAN.  Reverting
replaces the host with a fresh one built by the image factory —
exactly what restoring a snapshot or reimaging a disk does — after the
backend's revert latency.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.net.host import Host
from repro.net.link import Link, Port, Switch
from repro.sim.engine import Simulator

# ``image_factory(host)`` installs the OS image's boot-time behaviour
# (DHCP client, infection script, vulnerable services) onto a host.
ImageFactory = Callable[[Host], None]


class InmateState(enum.Enum):
    """The inmate life-cycle states (§5.5 actions move between them)."""

    STOPPED = "stopped"
    BOOTING = "booting"
    RUNNING = "running"
    REVERTING = "reverting"
    TERMINATED = "terminated"


class HostingBackend:
    """Base hosting backend: latencies plus platform fingerprint."""

    platform = "generic"
    #: Can VM-detection anti-forensics spot this platform?
    detectable_virtualization = False
    boot_latency = 20.0
    revert_latency = 45.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class VirtualizedBackend(HostingBackend):
    """Full-system virtualization (VMware ESX in the paper)."""

    platform = "vmware-esx"
    detectable_virtualization = True
    boot_latency = 30.0
    revert_latency = 25.0  # snapshot restore is fast


class EmulatedBackend(HostingBackend):
    """Whole-system emulation (QEMU, used for customized analysis)."""

    platform = "qemu"
    detectable_virtualization = True
    boot_latency = 90.0   # emulation is slow
    revert_latency = 40.0


class RawIronBackend(HostingBackend):
    """Unvirtualized execution on small form-factor x86 systems.

    Reverting means reimaging through the Raw Iron Controller (§6.4):
    around 6 minutes per cycle when network-booting the image, or
    around 10 minutes when restoring from the hidden local partition
    (which however reimages all machines simultaneously).
    """

    platform = "raw-iron"
    detectable_virtualization = False
    boot_latency = 60.0
    revert_latency = 360.0  # network reimage, ~6 minutes

    def __init__(self, local_partition_restore: bool = False) -> None:
        if local_partition_restore:
            self.revert_latency = 600.0  # ~10 minutes, but parallelizable
        self.local_partition_restore = local_partition_restore


class Inmate:
    """One inmate: a VLAN, a hosting backend, and the current host."""

    def __init__(
        self,
        sim: Simulator,
        vlan: int,
        switch: Switch,
        image_factory: ImageFactory,
        backend: Optional[HostingBackend] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.vlan = vlan
        self.switch = switch
        self.image_factory = image_factory
        self.backend = backend or VirtualizedBackend()
        self.name = name or f"inmate-v{vlan}"

        self.state = InmateState.STOPPED
        self.host: Optional[Host] = None
        self.generation = 0          # bumped on every revert
        self.boots = 0
        self.reverts = 0
        self.infected_with: Optional[str] = None  # current sample id

        self._switch_port: Optional[Port] = None
        self._link: Optional[Link] = None
        self.history: List[str] = []

        # Fault-injection gate (repro.faults): consulted when a revert
        # or boot completes; a True return means the action failed and
        # ``on_lifecycle_failure(event, inmate)`` is notified so the
        # controller can retry with bounded backoff.
        self.lifecycle_faults = None
        self.on_lifecycle_failure: Optional[
            Callable[[str, "Inmate"], None]] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Power on: boot a fresh host from the image."""
        if self.state in (InmateState.BOOTING, InmateState.RUNNING):
            return
        if self.state == InmateState.TERMINATED:
            raise RuntimeError(f"{self.name} is terminated")
        self.state = InmateState.BOOTING
        self._log("boot scheduled")
        self.sim.schedule(self.backend.boot_latency, self._come_up,
                          label=f"{self.name}-boot")

    def _come_up(self) -> None:
        if self.state != InmateState.BOOTING:
            return
        if self.lifecycle_faults is not None and self.lifecycle_faults("boot"):
            self.state = InmateState.STOPPED
            self._log("boot failed")
            if self.on_lifecycle_failure is not None:
                self.on_lifecycle_failure("start", self)
            return
        self.generation += 1
        self.boots += 1
        host = Host(self.sim, f"{self.name}.g{self.generation}")
        host.vlan = self.vlan                     # type: ignore[attr-defined]
        host.platform = self.backend.platform     # type: ignore[attr-defined]
        host.virtualized = (                      # type: ignore[attr-defined]
            self.backend.detectable_virtualization
        )
        self._attach(host)
        self.host = host
        self.state = InmateState.RUNNING
        self._log("running")
        # The image's boot-time behaviour (DHCP, infection script...).
        self.image_factory(host)

    def _attach(self, host: Host) -> None:
        if self._switch_port is None:
            self._switch_port = self.switch.attach_port(access_vlan=self.vlan)
        if self._link is not None:
            self._link.disconnect()
        self._link = Link(self.sim, host.attach_port(), self._switch_port)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Power off (host keeps its disk state; not modelled further)."""
        if self.state == InmateState.RUNNING and self._link is not None:
            self._link.disconnect()
            self._link = None
        if self.state != InmateState.TERMINATED:
            self.state = InmateState.STOPPED
            self._log("stopped")

    def reboot(self) -> None:
        """Power-cycle without reverting the image."""
        if self.state != InmateState.RUNNING:
            return
        self._log("reboot")
        if self._link is not None:
            self._link.disconnect()
            self._link = None
        self.state = InmateState.BOOTING
        self.sim.schedule(self.backend.boot_latency, self._come_up,
                          label=f"{self.name}-reboot")

    def revert(self) -> None:
        """Restore the clean image (snapshot restore or reimage)."""
        if self.state == InmateState.TERMINATED:
            return
        self.reverts += 1
        self.infected_with = None
        self._log("revert")
        if self._link is not None:
            self._link.disconnect()
            self._link = None
        self.host = None
        self.state = InmateState.REVERTING
        self.sim.schedule(self.backend.revert_latency, self._revert_done,
                          label=f"{self.name}-revert")

    def _revert_done(self) -> None:
        if self.state != InmateState.REVERTING:
            return
        if self.lifecycle_faults is not None and self.lifecycle_faults("revert"):
            self.state = InmateState.STOPPED
            self._log("revert failed")
            if self.on_lifecycle_failure is not None:
                self.on_lifecycle_failure("revert", self)
            return
        self.state = InmateState.BOOTING
        self.sim.schedule(self.backend.boot_latency, self._come_up,
                          label=f"{self.name}-boot")

    def terminate(self) -> None:
        if self._link is not None:
            self._link.disconnect()
            self._link = None
        self.host = None
        self.state = InmateState.TERMINATED
        self._log("terminated")

    # ------------------------------------------------------------------
    def _log(self, event: str) -> None:
        self.history.append(f"{self.sim.now:.1f} {event}")

    def __repr__(self) -> str:
        return (
            f"<Inmate {self.name} vlan={self.vlan} {self.state.value} "
            f"on {self.backend.platform}>"
        )
