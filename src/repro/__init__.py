"""repro — a faithful reproduction of GQ (IMC 2011).

GQ is a malware execution farm built around *explicit per-flow
containment*: a gateway redirects every flow to a containment server,
which issues one of six verdicts (FORWARD, LIMIT, DROP, REDIRECT,
REFLECT, REWRITE) via an in-band shim protocol; the gateway then
enforces the verdict at packet level.

This package implements the complete system — gateway, containment
servers, inmate life-cycle control, infrastructure services, reporting
— on top of a deterministic discrete-event network simulator, together
with behaviour models of the malware families the paper studied.

Quickstart::

    from repro import Farm, FarmConfig

    farm = Farm(FarmConfig(seed=1))
    subfarm = farm.create_subfarm("spam-study")

See ``examples/quickstart.py`` for a complete runnable tour.
"""

__version__ = "1.0.0"

__all__ = ["Farm", "FarmConfig", "__version__"]


def __getattr__(name: str):
    """Lazy re-exports so importing leaf modules stays cheap."""
    if name in ("Farm", "FarmConfig"):
        from repro import farm

        return getattr(farm, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
