"""Flow identification.

GQ's containment operates at *per-flow* granularity: the gateway keys
its flow table and the containment server keys its verdicts on the
five-tuple (plus the inmate's VLAN ID, which identifies the inmate).
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.net.addresses import IPv4Address
from repro.net.packet import IPv4Packet, PROTO_TCP, PROTO_UDP


class FlowDirection(enum.Enum):
    """Direction of a packet relative to the flow's originator."""

    ORIG = "orig"  # originator -> responder
    RESP = "resp"  # responder -> originator


class FiveTuple(NamedTuple):
    """The classic five-tuple, oriented originator -> responder."""

    orig_ip: IPv4Address
    orig_port: int
    resp_ip: IPv4Address
    resp_port: int
    proto: int

    @classmethod
    def from_packet(cls, packet: IPv4Packet) -> "FiveTuple":
        """Build an originator-oriented tuple from a packet as sent."""
        if packet.proto == PROTO_TCP:
            transport = packet.tcp
        elif packet.proto == PROTO_UDP:
            transport = packet.udp
        else:
            raise ValueError(f"flow tuples require TCP or UDP, got proto {packet.proto}")
        return cls(packet.src, transport.sport, packet.dst, transport.dport, packet.proto)

    def reversed(self) -> "FiveTuple":
        return FiveTuple(
            self.resp_ip, self.resp_port, self.orig_ip, self.orig_port, self.proto
        )

    @property
    def proto_name(self) -> str:
        return {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.proto, str(self.proto))

    def matches_packet(self, packet: IPv4Packet) -> Optional[FlowDirection]:
        """Classify a packet against this flow, or None if unrelated."""
        if packet.proto != self.proto:
            return None
        key = FiveTuple.from_packet(packet)
        if key == self:
            return FlowDirection.ORIG
        if key == self.reversed():
            return FlowDirection.RESP
        return None

    def __str__(self) -> str:
        return (
            f"{self.orig_ip}:{self.orig_port} -> "
            f"{self.resp_ip}:{self.resp_port}/{self.proto_name}"
        )
