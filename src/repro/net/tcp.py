"""TCP endpoint state machine.

A deliberately honest TCP: real 32-bit sequence numbers over a byte
stream, a proper three-way handshake, FIN/RST teardown, and an
in-order reassembly buffer.  What it omits — retransmission,
congestion control, window management — the simulated links make
unnecessary (they are reliable and in-order), and none of it matters
to containment semantics.

The realism that *does* matter is the sequence space: GQ's gateway
injects shim messages into live connections by synthesizing segments
and offsetting every subsequent sequence/acknowledgement number
(paper Figure 5).  Endpoints here will genuinely desynchronize and
stall if the gateway's bumping arithmetic is wrong, which is exactly
the property the tests lean on.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.addresses import IPv4Address
from repro.net.packet import ACK, FIN, IPv4Packet, PSH, RST, SYN, TCPSegment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.host import Host

MSS = 1460

SEQ_MOD = 1 << 32


def seq_add(a: int, b: int) -> int:
    """Modular 32-bit sequence addition."""
    return (a + b) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """Modular 32-bit sequence subtraction."""
    return (a - b) % SEQ_MOD


def seq_shift_many(values, delta: int) -> List[int]:
    """Shift a column of sequence numbers by ``delta`` mod 2^32.

    The batched datapath's vectorized form of :func:`seq_add`: one
    residue reduction for the whole column, then a single-comprehension
    mask per element (struct-of-arrays translation of a flow entry's
    seq/ack delta over a run of packets).
    """
    shift = delta % SEQ_MOD
    if not shift:
        return list(values)
    return [(value + shift) & 0xFFFFFFFF for value in values]


def seq_lt(a: int, b: int) -> bool:
    """True if a < b in modular sequence space."""
    return 0 < seq_sub(b, a) < (SEQ_MOD // 2)

def seq_le(a: int, b: int) -> bool:
    """True if a <= b in modular sequence space."""
    return a == b or seq_lt(a, b)


class TcpState(enum.Enum):
    """The RFC 793 connection states this stack implements."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    CLOSING = "closing"
    TIME_WAIT = "time-wait"


class TcpConnection:
    """One endpoint of a TCP connection.

    Applications interact through :meth:`send`, :meth:`close`,
    :meth:`abort` and the callback slots ``on_established``,
    ``on_data``, ``on_remote_close``, ``on_closed``, ``on_reset`` and
    ``on_fail``.  Callbacks receive the connection as sole argument
    except ``on_data``, which receives ``(conn, data)``.
    """

    def __init__(
        self,
        host: "Host",
        local_ip: IPv4Address,
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
    ) -> None:
        self.host = host
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port

        self.state = TcpState.CLOSED
        self.iss = 0           # initial send sequence
        self.snd_nxt = 0       # next sequence to send
        self.rcv_nxt = 0       # next sequence expected
        self.irs = 0           # initial receive sequence

        self._send_buffer = bytearray()
        self._fin_pending = False
        self._fin_sent = False
        self._reassembly: Dict[int, bytes] = {}

        self.bytes_sent = 0
        self.bytes_received = 0
        self.opened_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.closed_at: Optional[float] = None

        # Application callbacks.
        self.on_established: Optional[Callable[["TcpConnection"], None]] = None
        self.on_data: Optional[Callable[["TcpConnection", bytes], None]] = None
        self.on_remote_close: Optional[Callable[["TcpConnection"], None]] = None
        self.on_closed: Optional[Callable[["TcpConnection"], None]] = None
        self.on_reset: Optional[Callable[["TcpConnection"], None]] = None
        self.on_fail: Optional[Callable[["TcpConnection"], None]] = None

        # Opaque slot for applications to hang per-connection state on.
        self.app: object = None

    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[IPv4Address, int, IPv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    @property
    def is_open(self) -> bool:
        return self.state in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
        )

    @property
    def fully_closed(self) -> bool:
        return self.state in (TcpState.CLOSED, TcpState.TIME_WAIT)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Queue application bytes for transmission."""
        if self.state == TcpState.CLOSED and self.opened_at is None:
            # Connection not yet opened (SYN deferred a tick, or server
            # accept callback running before the SYN is processed):
            # queue the bytes; they flush at establishment.
            self._send_buffer.extend(data)
            return
        if self.state not in (
            TcpState.ESTABLISHED,
            TcpState.CLOSE_WAIT,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
        ):
            raise RuntimeError(f"cannot send in state {self.state}")
        if self._fin_pending or self._fin_sent:
            raise RuntimeError("cannot send after close()")
        self._send_buffer.extend(data)
        if self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            self._flush()

    def close(self) -> None:
        """Half-close: flush pending data then send FIN."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self._fin_pending or self._fin_sent:
            return
        self._fin_pending = True
        if self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            self._flush()

    def abort(self) -> None:
        """Send RST and drop to CLOSED immediately."""
        if self.state not in (TcpState.CLOSED, TcpState.LISTEN):
            self._emit(flags=RST | ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        self._enter_closed(notify_reset=False)

    # ------------------------------------------------------------------
    # Stack-internal API
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Begin the three-way handshake (client side)."""
        self.iss = self.host.tcp.pick_isn()
        self.snd_nxt = seq_add(self.iss, 1)
        self.state = TcpState.SYN_SENT
        self.opened_at = self.host.sim.now
        self._emit(flags=SYN, seq=self.iss, ack=0)

    def segment_arrived(self, segment: TCPSegment) -> None:
        """The stack demultiplexed a segment to this connection."""
        if self.state == TcpState.SYN_SENT:
            self._handle_syn_sent(segment)
            return
        if self.state == TcpState.CLOSED:
            return

        if segment.rst:
            self._enter_closed(notify_reset=True)
            return

        if segment.syn and self.state == TcpState.SYN_RCVD:
            # Retransmitted SYN from peer: re-ack.
            self._emit(flags=SYN | ACK, seq=self.iss, ack=self.rcv_nxt)
            return

        if self.state == TcpState.SYN_RCVD and segment.has_ack:
            if segment.ack == self.snd_nxt:
                self._enter_established()
            # fall through to process any piggybacked payload

        self._process_payload(segment)
        self._process_ack_side_effects(segment)

        if segment.fin:
            self._handle_fin(segment)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if segment.rst:
            self.state = TcpState.CLOSED
            if self.on_fail:
                self.on_fail(self)
            self.host.tcp.forget(self)
            return
        if segment.syn and segment.has_ack and segment.ack == self.snd_nxt:
            self.irs = segment.seq
            self.rcv_nxt = seq_add(segment.seq, 1)
            self._emit(flags=ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            self._enter_established()
            if segment.payload:
                self._process_payload(segment)

    def handle_passive_syn(self, segment: TCPSegment) -> None:
        """Server side: respond to an incoming SYN."""
        self.irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.iss = self.host.tcp.pick_isn()
        self.snd_nxt = seq_add(self.iss, 1)
        self.state = TcpState.SYN_RCVD
        self.opened_at = self.host.sim.now
        self._emit(flags=SYN | ACK, seq=self.iss, ack=self.rcv_nxt)

    def _enter_established(self) -> None:
        self.state = TcpState.ESTABLISHED
        self.established_at = self.host.sim.now
        if self.on_established:
            self.on_established(self)
        self._flush()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _process_payload(self, segment: TCPSegment) -> None:
        if not segment.payload:
            return
        seg_seq = segment.seq
        payload = segment.payload
        # Trim any already-received prefix.
        if seq_lt(seg_seq, self.rcv_nxt):
            overlap = seq_sub(self.rcv_nxt, seg_seq)
            if overlap >= len(payload):
                self._send_ack()
                return
            payload = payload[overlap:]
            seg_seq = self.rcv_nxt
        if seg_seq != self.rcv_nxt:
            # Out of order: buffer for later.
            self._reassembly[seg_seq] = payload
            self._send_ack()
            return
        self._deliver(payload)
        # Drain any contiguous buffered segments.
        while self.rcv_nxt in self._reassembly:
            self._deliver(self._reassembly.pop(self.rcv_nxt))
        self._send_ack()

    def _deliver(self, payload: bytes) -> None:
        self.rcv_nxt = seq_add(self.rcv_nxt, len(payload))
        self.bytes_received += len(payload)
        if self.on_data:
            self.on_data(self, payload)

    def _process_ack_side_effects(self, segment: TCPSegment) -> None:
        if not segment.has_ack:
            return
        if self.state == TcpState.FIN_WAIT_1 and segment.ack == self.snd_nxt:
            self.state = TcpState.FIN_WAIT_2
        elif self.state == TcpState.CLOSING and segment.ack == self.snd_nxt:
            self._enter_time_wait()
        elif self.state == TcpState.LAST_ACK and segment.ack == self.snd_nxt:
            self._enter_closed(notify_reset=False)

    def _handle_fin(self, segment: TCPSegment) -> None:
        fin_seq = seq_add(segment.seq, len(segment.payload))
        if fin_seq != self.rcv_nxt:
            return  # FIN for data we have not seen; ignore (no retransmit model)
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self._send_ack()
        if self.state in (TcpState.ESTABLISHED, TcpState.SYN_RCVD):
            self.state = TcpState.CLOSE_WAIT
            if self.on_remote_close:
                self.on_remote_close(self)
        elif self.state == TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING
        elif self.state == TcpState.FIN_WAIT_2:
            self._enter_time_wait()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        while self._send_buffer:
            chunk = bytes(self._send_buffer[:MSS])
            del self._send_buffer[:MSS]
            flags = ACK | PSH
            fin_here = self._fin_pending and not self._send_buffer
            if fin_here:
                flags |= FIN
                self._fin_pending = False
                self._fin_sent = True
            self._emit(flags=flags, seq=self.snd_nxt, ack=self.rcv_nxt, payload=chunk)
            self.snd_nxt = seq_add(self.snd_nxt, len(chunk) + (1 if fin_here else 0))
            self.bytes_sent += len(chunk)
            if fin_here:
                self._after_fin_sent()
        if self._fin_pending:
            self._fin_pending = False
            self._fin_sent = True
            self._emit(flags=FIN | ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            self.snd_nxt = seq_add(self.snd_nxt, 1)
            self._after_fin_sent()

    def _after_fin_sent(self) -> None:
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state == TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK

    def _send_ack(self) -> None:
        self._emit(flags=ACK, seq=self.snd_nxt, ack=self.rcv_nxt)

    def _emit(self, flags: int, seq: int, ack: int, payload: bytes = b"") -> None:
        segment = TCPSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload,
        )
        packet = IPv4Packet(self.local_ip, self.remote_ip, segment)
        self.host.send_ip(packet)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self.closed_at = self.host.sim.now
        if self.on_closed:
            self.on_closed(self)
        # 2*MSL would hold the tuple; a short linger suffices here.
        self.host.sim.schedule(1.0, self._expire_time_wait, label="time-wait")

    def _expire_time_wait(self) -> None:
        if self.state == TcpState.TIME_WAIT:
            self.state = TcpState.CLOSED
            self.host.tcp.forget(self)

    def _enter_closed(self, notify_reset: bool) -> None:
        was_open = self.state not in (TcpState.CLOSED,)
        self.state = TcpState.CLOSED
        self.closed_at = self.host.sim.now
        if notify_reset and self.on_reset:
            self.on_reset(self)
        elif was_open and not notify_reset and self.on_closed:
            self.on_closed(self)
        self.host.tcp.forget(self)

    def __repr__(self) -> str:
        return (
            f"<TcpConnection {self.local_ip}:{self.local_port}->"
            f"{self.remote_ip}:{self.remote_port} {self.state.value}>"
        )


class TcpListener:
    """A passive socket: accepts SYNs on a port."""

    def __init__(
        self,
        port: int,
        on_accept: Callable[[TcpConnection], None],
    ) -> None:
        self.port = port
        self.on_accept = on_accept
        self.accepted = 0


class TcpStack:
    """Per-host TCP: demultiplexing, listeners, ephemeral ports."""

    EPHEMERAL_BASE = 1024

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._connections: Dict[
            Tuple[IPv4Address, int, IPv4Address, int], TcpConnection
        ] = {}
        self._listeners: Dict[int, TcpListener] = {}
        self._any_listener: Optional[TcpListener] = None
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.resets_sent = 0

    # ------------------------------------------------------------------
    def pick_isn(self) -> int:
        """Random ISN from the host's deterministic RNG stream."""
        return self.host.rng.randrange(1 << 32)

    def allocate_port(self) -> int:
        for _ in range(64512):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if port not in self._listeners and not any(
                key[1] == port for key in self._connections
            ):
                return port
        raise RuntimeError("ephemeral port space exhausted")

    # ------------------------------------------------------------------
    def listen(
        self, port: int, on_accept: Callable[[TcpConnection], None]
    ) -> TcpListener:
        if port in self._listeners:
            raise RuntimeError(f"port {port} already listening")
        listener = TcpListener(port, on_accept)
        self._listeners[port] = listener
        return listener

    def listen_any(
        self, on_accept: Callable[[TcpConnection], None]
    ) -> TcpListener:
        """Wildcard listener: accept SYNs on *any* port without a more
        specific listener.  Catch-all sink servers rely on this."""
        listener = TcpListener(-1, on_accept)
        self._any_listener = listener
        return listener

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_ip: IPv4Address,
        remote_port: int,
        local_port: Optional[int] = None,
    ) -> TcpConnection:
        if self.host.ip is None:
            raise RuntimeError(f"host {self.host.name} has no IP address yet")
        local_port = local_port if local_port is not None else self.allocate_port()
        conn = TcpConnection(
            self.host, self.host.ip, local_port, IPv4Address(remote_ip), remote_port
        )
        self._connections[conn.key] = conn
        # Defer the SYN one scheduler tick so callers can set callbacks first.
        self.host.sim.schedule(0.0, conn.open_active, label="tcp-connect")
        return conn

    def forget(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.key, None)

    def connection_count(self) -> int:
        return len(self._connections)

    def connections(self) -> List[TcpConnection]:
        return list(self._connections.values())

    # ------------------------------------------------------------------
    def packet_arrived(self, packet: IPv4Packet) -> None:
        segment = packet.tcp
        key = (packet.dst, segment.dport, packet.src, segment.sport)
        conn = self._connections.get(key)
        if conn is not None:
            # A pure SYN with a new ISN on an established tuple is a
            # new incarnation (the peer was reverted/rebooted and is
            # reusing its ports): retire the stale connection and let
            # the listener take the SYN.
            if (segment.syn and not segment.has_ack
                    and conn.state not in (TcpState.SYN_SENT,
                                           TcpState.SYN_RCVD)
                    and segment.seq != conn.irs):
                conn._enter_closed(notify_reset=True)
            else:
                conn.segment_arrived(segment)
                return
        if segment.syn and not segment.has_ack:
            listener = self._listeners.get(segment.dport) or self._any_listener
            if listener is not None:
                conn = TcpConnection(
                    self.host, packet.dst, segment.dport, packet.src, segment.sport
                )
                self._connections[conn.key] = conn
                listener.accepted += 1
                listener.on_accept(conn)
                conn.handle_passive_syn(segment)
                return
        if not segment.rst:
            self._send_reset(packet)

    def _send_reset(self, packet: IPv4Packet) -> None:
        """RFC-style RST for segments to nonexistent endpoints."""
        segment = packet.tcp
        self.resets_sent += 1
        if segment.has_ack:
            reply = TCPSegment(
                sport=segment.dport, dport=segment.sport,
                seq=segment.ack, ack=0, flags=RST,
            )
        else:
            reply = TCPSegment(
                sport=segment.dport, dport=segment.sport,
                seq=0, ack=seq_add(segment.seq, segment.seq_len), flags=RST | ACK,
            )
        self.host.send_ip(IPv4Packet(packet.dst, packet.src, reply))
