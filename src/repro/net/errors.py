"""The uniform parse-error taxonomy.

Every parser in :mod:`repro.net` and :mod:`repro.core.shim` raises a
single structured :class:`ParseError` on hostile or malformed input —
any *other* exception escaping a parser is by definition a bug, and
exactly what the fuzz plane (:mod:`repro.fuzz`) hunts.  The gateway's
malice barrier (:mod:`repro.gateway.barrier`) catches :class:`ParseError`
at ingest, so a malformed frame can never unwind the event loop.

``ParseError`` subclasses :class:`ValueError` deliberately: every
pre-existing ``except ValueError`` site (DHCP clients, stub resolvers,
pcap readers, proxy-ARP) keeps working unchanged, while new code can
catch the structured type and read ``protocol``/``offset``/``reason``.
"""

from __future__ import annotations

from typing import Optional


class ParseError(ValueError):
    """Structured rejection of malformed wire input.

    Attributes:
        protocol: short lowercase protocol label ("dns", "tcp", "shim",
            "ethernet", ...) identifying the parser that rejected the
            input — the malice barrier counts drops per (vlan, protocol).
        reason: human-readable description of the defect.
        offset: byte offset into the parsed buffer where the defect was
            detected (best effort; 0 when the whole input is unusable).
    """

    def __init__(self, protocol: str, reason: str, offset: int = 0) -> None:
        self.protocol = protocol
        self.reason = reason
        self.offset = offset
        super().__init__(f"{protocol} parse error at offset {offset}: {reason}")

    def __reduce__(self):  # picklable across campaign workers
        return (self.__class__, (self.protocol, self.reason, self.offset))


def ensure_length(protocol: str, data: bytes, needed: int,
                  what: str, offset: int = 0) -> None:
    """Raise :class:`ParseError` unless ``data`` holds ``needed`` bytes
    starting at ``offset`` — the common truncation guard."""
    if len(data) < offset + needed:
        raise ParseError(
            protocol,
            f"truncated {what} (need {needed} bytes at offset {offset}, "
            f"have {max(0, len(data) - offset)})",
            offset=min(offset, len(data)),
        )


__all__ = ["ParseError", "ensure_length"]
