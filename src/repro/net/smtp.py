"""SMTP protocol engine (RFC 821/5321 subset) with adjustable rigor.

Spam measurement is GQ's flagship workload, and two of the paper's
§7.1 lessons live entirely in SMTP details:

* *Protocol violations* — real spambots repeat HELO/EHLO mid-session
  and format MAIL FROM / RCPT TO addresses with and without colons or
  angle brackets.  A sink whose state machine follows the RFC too
  closely never reaches DATA for those bots.  :class:`SmtpServerEngine`
  therefore has a ``strictness`` knob.
* *Satisfying fidelity* — bots check the greeting banner; the engine
  takes an arbitrary banner string so sinks can serve grabbed ones.

The engine is transport-agnostic: it consumes input bytes and emits
reply bytes through a callback, so the same code drives the SMTP sink,
victim mail exchangers in the simulated external world, and test
harnesses.
"""

from __future__ import annotations

import enum
import re
from typing import Callable, List, Optional

CRLF = b"\r\n"

#: Sentinel returned by the line framer when a strict-mode engine has
#: already answered 500 for an oversized line and discarded it.
_DISCARDED_LINE = object()

# How forgiving the server-side parser is (§7.1 "Protocol violations").
class Strictness(enum.Enum):
    STRICT = "strict"    # by-the-RFC: bad syntax => 5xx, repeated HELO => 503
    LENIENT = "lenient"  # accept real-world spambot dialects


class SmtpState(enum.Enum):
    """Server-side protocol states."""

    GREETING = "greeting"   # banner not yet sent/acknowledged
    COMMAND = "command"     # awaiting a command
    MAIL = "mail"           # MAIL FROM accepted
    RCPT = "rcpt"           # at least one RCPT TO accepted
    DATA = "data"           # consuming message body
    CLOSED = "closed"


class SmtpTransaction:
    """One accepted message: envelope plus body."""

    __slots__ = ("mail_from", "rcpt_to", "body", "helo", "completed_at")

    def __init__(self, mail_from: str, helo: str) -> None:
        self.mail_from = mail_from
        self.rcpt_to: List[str] = []
        self.body = b""
        self.helo = helo
        self.completed_at: Optional[float] = None


_STRICT_PATH = re.compile(r"^<[^<>\s]+@[^<>\s]+>$")
_LENIENT_ADDR = re.compile(r"([^<>\s:;,]+@[^<>\s:;,]+)")


def parse_address(argument: str, strictness: Strictness) -> Optional[str]:
    """Extract the address from a MAIL FROM / RCPT TO argument.

    Strict mode demands exactly ``<user@host>``; lenient mode accepts
    missing brackets, stray colons, and surrounding junk — the dialects
    the paper saw in the wild.
    """
    argument = argument.strip()
    if strictness is Strictness.STRICT:
        if _STRICT_PATH.match(argument):
            return argument[1:-1]
        return None
    match = _LENIENT_ADDR.search(argument)
    return match.group(1) if match else None


class SmtpServerEngine:
    """Server-side SMTP state machine.

    Parameters
    ----------
    send:
        Callback receiving reply bytes to transmit.
    banner:
        Greeting banner (without the leading ``220``); the SMTP sink's
        banner-grabbing mode substitutes a real server's banner here.
    strictness:
        Dialect tolerance; see :class:`Strictness`.
    on_message:
        Called with each completed :class:`SmtpTransaction`.
    hostname:
        Name used in replies.
    """

    #: Lines longer than this are protocol anomalies: lenient engines
    #: truncate and carry on (real spambots do send them), strict ones
    #: answer 500.  Also bounds the buffer for never-terminated input.
    MAX_LINE_LENGTH = 8192

    def __init__(
        self,
        send: Callable[[bytes], None],
        banner: str = "mail.example.com ESMTP Postfix",
        strictness: Strictness = Strictness.LENIENT,
        on_message: Optional[Callable[[SmtpTransaction], None]] = None,
        hostname: str = "mail.example.com",
        fault: Optional[dict] = None,
        max_line_length: Optional[int] = None,
        on_anomaly: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self._send = send
        self.banner = banner
        self.strictness = strictness
        self.on_message = on_message
        self.hostname = hostname
        # Scripted fault injection for exploratory containment (§7.1):
        # {"stage": "mail"|"rcpt"|"data", "code": 550, "text": "..."}.
        self.fault = fault
        self.max_line_length = (max_line_length if max_line_length is not None
                                else self.MAX_LINE_LENGTH)
        self.on_anomaly = on_anomaly

        self.state = SmtpState.COMMAND
        self.helo: str = ""
        self._buffer = bytearray()
        self._transaction: Optional[SmtpTransaction] = None
        self._data_lines: List[bytes] = []
        self._last_byte = 0

        self.transactions: List[SmtpTransaction] = []
        self.commands_seen: List[str] = []
        self.syntax_errors = 0
        self.quit_received = False
        # Protocol anomalies observed (bare_lf, oversized_line):
        # tolerated at lenient fidelity, rejected at strict — but
        # counted either way so telemetry sees the dialect.
        self.anomalies: dict = {"bare_lf": 0, "oversized_line": 0}

        self._reply(220, self.banner)

    # ------------------------------------------------------------------
    def _reply(self, code: int, text: str) -> None:
        # errors="replace": reply text may echo client bytes whose
        # upper-casing left latin-1 (e.g. µ -> Μ); never crash on it.
        self._send(f"{code} {text}".encode("latin-1", "replace") + CRLF)

    def _note_anomaly(self, kind: str, count: int = 1) -> None:
        self.anomalies[kind] = self.anomalies.get(kind, 0) + count
        if self.on_anomaly is not None:
            self.on_anomaly(kind, count)

    def feed(self, data: bytes) -> None:
        """Consume raw bytes from the client."""
        if data:
            # Count bare-LF line endings (C-speed; zero on CRLF input).
            bare = data.count(b"\n") - data.count(b"\r\n")
            if data[:1] == b"\n" and self._last_byte == 0x0D:
                bare -= 1  # CRLF split across feed chunks
            if bare:
                self._note_anomaly("bare_lf", bare)
            self._last_byte = data[-1]
        self._buffer.extend(data)
        while True:
            line = self._next_line()
            if line is None:
                return
            if line is _DISCARDED_LINE:
                continue
            if self.state == SmtpState.DATA:
                self._data_line(line)
            else:
                self._command_line(line)
            if self.state == SmtpState.CLOSED:
                return

    def _next_line(self):
        """One framed line, ``_DISCARDED_LINE`` (strict-mode oversize
        rejection), or None when the buffer holds no complete line."""
        index = self._buffer.find(CRLF)
        if index < 0 and self.strictness is Strictness.LENIENT:
            # Tolerate bare-LF line endings from sloppy clients.
            index_lf = self._buffer.find(b"\n")
            if index_lf >= 0:
                line = bytes(self._buffer[:index_lf]).rstrip(b"\r")
                del self._buffer[:index_lf + 1]
                return self._clip_line(line)
        if index < 0:
            if len(self._buffer) > self.max_line_length:
                # Never-terminated "line": bound the buffer instead of
                # letting a hostile sender grow it without limit.
                line = bytes(self._buffer[:self.max_line_length])
                self._buffer.clear()
                return self._clip_line(line, oversized=True)
            return None
        line = bytes(self._buffer[:index])
        del self._buffer[:index + len(CRLF)]
        return self._clip_line(line)

    def _clip_line(self, line: bytes, oversized: bool = False):
        if not oversized and len(line) <= self.max_line_length:
            return line
        self._note_anomaly("oversized_line")
        if (self.strictness is Strictness.STRICT
                and self.state != SmtpState.DATA):
            self.syntax_errors += 1
            self._reply(500, "line too long")
            return _DISCARDED_LINE
        # Lenient (or message body either way): truncate and carry on.
        return line[:self.max_line_length]

    # ------------------------------------------------------------------
    def _command_line(self, line: bytes) -> None:
        try:
            text = line.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            text = ""
        verb, _, argument = text.partition(" ")
        verb = verb.upper().strip()
        self.commands_seen.append(verb)

        if verb in ("HELO", "EHLO"):
            self._handle_helo(verb, argument)
        elif verb == "MAIL":
            self._handle_mail(argument)
        elif verb == "RCPT":
            self._handle_rcpt(argument)
        elif verb == "DATA":
            self._handle_data()
        elif verb == "RSET":
            self._transaction = None
            if self.state in (SmtpState.MAIL, SmtpState.RCPT):
                self.state = SmtpState.COMMAND
            self._reply(250, "OK")
        elif verb == "NOOP":
            self._reply(250, "OK")
        elif verb == "QUIT":
            self.quit_received = True
            self._reply(221, f"{self.hostname} closing connection")
            self.state = SmtpState.CLOSED
        else:
            self.syntax_errors += 1
            self._reply(500, f"unrecognized command {verb!r}")

    def _handle_helo(self, verb: str, argument: str) -> None:
        argument = argument.strip()
        if self.state != SmtpState.COMMAND and self.strictness is Strictness.STRICT:
            # RFC: HELO mid-transaction is out of sequence.
            self.syntax_errors += 1
            self._reply(503, "bad sequence of commands")
            return
        # Lenient: a repeated HELO implicitly resets, as real MTAs allow.
        self.helo = argument
        self._transaction = None
        self.state = SmtpState.COMMAND
        if verb == "EHLO":
            self._reply(250, f"{self.hostname} Hello {argument}")
        else:
            self._reply(250, f"{self.hostname}")

    def _fault_hits(self, stage: str) -> bool:
        if self.fault and self.fault.get("stage") == stage:
            self._reply(self.fault.get("code", 550),
                        self.fault.get("text", "rejected by policy"))
            return True
        return False

    def _handle_mail(self, argument: str) -> None:
        if self._fault_hits("mail"):
            return
        prefix, _, path = argument.partition(":")
        if prefix.strip().upper() != "FROM":
            if self.strictness is Strictness.STRICT:
                self.syntax_errors += 1
                self._reply(501, "syntax: MAIL FROM:<address>")
                return
            path = argument.upper().replace("FROM", "", 1) if "FROM" in argument.upper() else argument
        if self.state not in (SmtpState.COMMAND,):
            if self.strictness is Strictness.STRICT:
                self.syntax_errors += 1
                self._reply(503, "bad sequence of commands")
                return
        address = parse_address(path, self.strictness)
        if address is None:
            self.syntax_errors += 1
            self._reply(501, "malformed address")
            return
        self._transaction = SmtpTransaction(address, self.helo)
        self.state = SmtpState.MAIL

        self._reply(250, "OK")

    def _handle_rcpt(self, argument: str) -> None:
        if self._fault_hits("rcpt"):
            return
        if self._transaction is None:
            self.syntax_errors += 1
            self._reply(503, "need MAIL before RCPT")
            return
        prefix, _, path = argument.partition(":")
        if prefix.strip().upper() != "TO":
            if self.strictness is Strictness.STRICT:
                self.syntax_errors += 1
                self._reply(501, "syntax: RCPT TO:<address>")
                return
            path = argument
        address = parse_address(path, self.strictness)
        if address is None:
            self.syntax_errors += 1
            self._reply(501, "malformed address")
            return
        self._transaction.rcpt_to.append(address)
        self.state = SmtpState.RCPT
        self._reply(250, "OK")

    def _handle_data(self) -> None:
        if self._fault_hits("data"):
            return
        if self.state != SmtpState.RCPT or self._transaction is None:
            self.syntax_errors += 1
            self._reply(503, "need RCPT before DATA")
            return
        self._data_lines = []
        self.state = SmtpState.DATA
        self._reply(354, "end data with <CRLF>.<CRLF>")

    def _data_line(self, line: bytes) -> None:
        if line == b".":
            assert self._transaction is not None
            self.state = SmtpState.COMMAND
            if self.fault and self.fault.get("stage") == "body":
                # Bounce the complete message (exploratory containment).
                self._transaction = None
                self._reply(self.fault.get("code", 452),
                            self.fault.get("text", "message bounced"))
                return
            self._transaction.body = CRLF.join(self._data_lines)
            self.transactions.append(self._transaction)
            if self.on_message:
                self.on_message(self._transaction)
            self._transaction = None
            self._reply(250, "OK: queued")
            return
        if line.startswith(b".."):
            line = line[1:]  # dot-unstuffing
        self._data_lines.append(line)


class SmtpClientEngine:
    """Client-side SMTP driver with configurable dialect quirks.

    Spambot models use this to send messages; quirks reproduce the
    §7.1 dialects so the strict/lenient sink experiment is honest.

    Quirk flags:

    * ``repeat_helo`` — send HELO again before every MAIL FROM.
    * ``bare_addresses`` — MAIL FROM/RCPT TO without angle brackets.
    * ``no_colon`` — drop the colon after FROM/TO.
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        helo: str = "client.example.net",
        messages: Optional[List[dict]] = None,
        repeat_helo: bool = False,
        bare_addresses: bool = False,
        no_colon: bool = False,
        on_done: Optional[Callable[["SmtpClientEngine"], None]] = None,
        on_banner: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self._send = send
        self.helo = helo
        self.queue = list(messages or [])
        self.repeat_helo = repeat_helo
        self.bare_addresses = bare_addresses
        self.no_colon = no_colon
        self.on_done = on_done
        self.on_banner = on_banner

        self.sent = 0
        self.rejected = 0
        self.failure_phases: List[str] = []
        self.aborted = False
        self.banner: Optional[str] = None
        self.replies: List[str] = []

        self._buffer = bytearray()
        self._phase = "banner"
        self._current: Optional[dict] = None
        self._rcpt_index = 0

    # ------------------------------------------------------------------
    def _line(self, text: str) -> None:
        self._send(text.encode("latin-1") + CRLF)

    def _format_path(self, keyword: str, address: str) -> str:
        sep = "" if self.no_colon else ":"
        addr = address if self.bare_addresses else f"<{address}>"
        return f"{keyword}{sep}{addr}"

    def feed(self, data: bytes) -> None:
        """Consume server reply bytes and advance the dialogue."""
        self._buffer.extend(data)
        while True:
            index = self._buffer.find(CRLF)
            if index < 0:
                return
            line = bytes(self._buffer[:index]).decode("latin-1")
            del self._buffer[:index + len(CRLF)]
            self.replies.append(line)
            self._handle_reply(line)
            if self.aborted:
                return

    def _handle_reply(self, line: str) -> None:
        code = int(line[:3]) if line[:3].isdigit() else 0
        if self._phase == "banner":
            self.banner = line[4:] if len(line) > 4 else ""
            if self.on_banner is not None and not self.on_banner(self.banner):
                # The bot did not like the banner (Waledac/GMail lesson):
                # cease activity entirely.
                self.aborted = True
                return
            self._line(f"HELO {self.helo}")
            self._phase = "helo"
        elif self._phase == "helo":
            if code != 250:
                self.aborted = True
                return
            self._next_message()
        elif self._phase == "rehelo":
            # Bots that re-greet ignore whatever the server said and
            # barrel on into the transaction.
            self._send_mail_from()
        elif self._phase == "mail":
            if code != 250:
                self.rejected += 1
                self.failure_phases.append("mail")
                self._next_message()
                return
            self._rcpt_index = 0
            self._send_rcpt()
        elif self._phase == "rcpt":
            if code != 250:
                self.rejected += 1
                self.failure_phases.append("rcpt")
                self._next_message()
                return
            self._rcpt_index += 1
            if self._rcpt_index < len(self._current["rcpt_to"]):
                self._send_rcpt()
            else:
                self._line("DATA")
                self._phase = "data"
        elif self._phase == "data":
            if code != 354:
                self.rejected += 1
                self.failure_phases.append("data")
                self._next_message()
                return
            body = self._current.get("body", b"spam")
            if isinstance(body, str):
                body = body.encode("latin-1")
            # Dot-stuff the body.
            stuffed = body.replace(b"\r\n.", b"\r\n..")
            self._send(stuffed + CRLF + b"." + CRLF)
            self._phase = "sent"
        elif self._phase == "sent":
            if code == 250:
                self.sent += 1
            else:
                self.rejected += 1
                self.failure_phases.append("body")
            self._next_message()
        elif self._phase == "quit":
            pass  # 221 goodbye

    def _send_rcpt(self) -> None:
        recipient = self._current["rcpt_to"][self._rcpt_index]
        self._line(self._format_path("RCPT TO", recipient))
        self._phase = "rcpt"

    def _next_message(self) -> None:
        if not self.queue:
            self._line("QUIT")
            self._phase = "quit"
            if self.on_done:
                self.on_done(self)
            return
        self._current = self.queue.pop(0)
        if self.repeat_helo and self.sent + self.rejected > 0:
            # Quirk: re-HELO before each transaction (repeated greeting).
            self._line(f"HELO {self.helo}")
            self._phase = "rehelo"
            return
        self._send_mail_from()

    def _send_mail_from(self) -> None:
        assert self._current is not None
        self._line(self._format_path("MAIL FROM", self._current["mail_from"]))
        self._phase = "mail"
