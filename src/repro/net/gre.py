"""GRE encapsulation (RFC 2784, the IPv4-over-IPv4 slice).

§7.2: "Should this change, we may opt to use GRE tunnels in order to
connect additional routable address space available in other networks
(provided by colleagues or interested third parties) to the system."

This module provides the wire format; the endpoints live in
:mod:`repro.gateway.tunnel` (farm side) and
:mod:`repro.world.gre_pop` (the colleague's side).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.addresses import IPv4Address
from repro.net.errors import ParseError
from repro.net.packet import IPv4Packet

PROTO_GRE = 47
GRE_PROTO_IPV4 = 0x0800

#: :func:`unwrap` refuses nesting deeper than this — a GRE-in-GRE
#: "encapsulation bomb" must not drive the decapsulator into an
#: unbounded loop.
MAX_NESTING = 8

_HEADER = struct.Struct("!HH")  # flags/version, protocol type


def encapsulate(inner: IPv4Packet, outer_src: IPv4Address,
                outer_dst: IPv4Address) -> IPv4Packet:
    """Wrap ``inner`` in a GRE-over-IPv4 packet."""
    payload = _HEADER.pack(0, GRE_PROTO_IPV4) + inner.to_bytes()
    return IPv4Packet(outer_src, outer_dst, payload, proto=PROTO_GRE)


def decapsulate(outer: IPv4Packet) -> Optional[IPv4Packet]:
    """Unwrap a GRE packet; None if it is not IPv4-in-GRE."""
    if outer.proto != PROTO_GRE:
        return None
    raw = bytes(outer.payload)
    if len(raw) < _HEADER.size:
        return None
    flags_version, proto_type = _HEADER.unpack(raw[:_HEADER.size])
    if proto_type != GRE_PROTO_IPV4:
        return None
    if flags_version & 0x8000:
        return None  # checksummed GRE not used here
    try:
        return IPv4Packet.from_bytes(raw[_HEADER.size:])
    except ValueError:
        return None


def unwrap(outer: IPv4Packet, max_nesting: int = MAX_NESTING) -> IPv4Packet:
    """Fully decapsulate nested GRE, bounded against encapsulation bombs.

    Returns the innermost non-GRE packet.  A packet still GRE after
    ``max_nesting`` layers raises :class:`ParseError` — deep
    GRE-in-GRE nesting is an attack on decapsulator resources, not a
    legitimate tunnel topology.
    """
    packet = outer
    for _ in range(max_nesting):
        if packet.proto != PROTO_GRE:
            return packet
        inner = decapsulate(packet)
        if inner is None:
            return packet
        packet = inner
    if packet.proto == PROTO_GRE:
        raise ParseError("gre", f"encapsulation nested deeper than "
                         f"{max_nesting} layers", offset=0)
    return packet
