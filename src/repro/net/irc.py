"""Minimal IRC (RFC 1459 subset) — the classic botnet C&C channel.

§4 names IRC-based C&C as exactly the kind of family a versatile farm
must host without special-casing ("focus on a particular class of
botnets, say those using IRC as C&C ... restricts versatility").  The
subset here is what bot herding needs: registration (NICK/USER),
JOIN, channel topics carrying commands, PRIVMSG, and PING/PONG
keepalive.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

CRLF = b"\r\n"


class IrcChannel:
    """One channel: name, topic, member nicks, message log."""

    def __init__(self, name: str, topic: str = "") -> None:
        self.name = name
        self.topic = topic
        self.members: Set[str] = set()
        self.messages: List[tuple] = []


class IrcServerEngine:
    """Server side of one client connection (channels shared via the
    owning :class:`IrcNetwork`)."""

    def __init__(self, network: "IrcNetwork",
                 send: Callable[[bytes], None]) -> None:
        self.network = network
        self._send = send
        self.nick: Optional[str] = None
        self.registered = False
        self._buffer = bytearray()

    def _line(self, text: str) -> None:
        self._send(text.encode("latin-1") + CRLF)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            index = self._buffer.find(b"\n")
            if index < 0:
                return
            line = bytes(self._buffer[:index]).rstrip(b"\r").decode(
                "latin-1", "replace")
            del self._buffer[:index + 1]
            if line:
                self._command(line)

    def _command(self, line: str) -> None:
        verb, _, rest = line.partition(" ")
        verb = verb.upper()
        server = self.network.name
        if verb == "NICK":
            self.nick = rest.strip()
        elif verb == "USER":
            if self.nick:
                self.registered = True
                self.network.clients[self.nick] = self
                self._line(f":{server} 001 {self.nick} :Welcome to "
                           f"{server}")
        elif verb == "JOIN":
            if not self.registered:
                self._line(f":{server} 451 * :You have not registered")
                return
            channel_name = rest.strip().split(" ")[0]
            channel = self.network.channel(channel_name)
            channel.members.add(self.nick)
            self._line(f":{self.nick} JOIN {channel_name}")
            if channel.topic:
                self._line(f":{server} 332 {self.nick} {channel_name} "
                           f":{channel.topic}")
        elif verb == "PRIVMSG":
            target, _, message = rest.partition(" :")
            target = target.strip()
            self.network.privmsg(self.nick or "?", target, message)
        elif verb == "PING":
            token = rest.lstrip(":").strip()
            self._line(f":{server} PONG {server} :{token}")
        elif verb == "PONG":
            pass
        elif verb == "QUIT":
            if self.nick:
                self.network.clients.pop(self.nick, None)

    # Called by the network to push a message to this client.
    def deliver(self, source: str, target: str, message: str) -> None:
        self._line(f":{source} PRIVMSG {target} :{message}")

    def deliver_topic(self, channel: IrcChannel) -> None:
        self._line(f":{self.network.name} 332 {self.nick} "
                   f"{channel.name} :{channel.topic}")


class IrcNetwork:
    """Shared channel/nick state across all connections of a server."""

    def __init__(self, name: str = "irc.cnc.example") -> None:
        self.name = name
        self.channels: Dict[str, IrcChannel] = {}
        self.clients: Dict[str, IrcServerEngine] = {}
        self.messages_relayed = 0

    def channel(self, name: str) -> IrcChannel:
        if name not in self.channels:
            self.channels[name] = IrcChannel(name)
        return self.channels[name]

    def set_topic(self, channel_name: str, topic: str) -> None:
        """Herder-side: change a channel topic and notify members —
        the classic way of issuing commands to a whole botnet."""
        channel = self.channel(channel_name)
        channel.topic = topic
        for nick in list(channel.members):
            client = self.clients.get(nick)
            if client is not None:
                client.deliver_topic(channel)

    def privmsg(self, source: str, target: str, message: str) -> None:
        self.messages_relayed += 1
        if target.startswith("#"):
            channel = self.channel(target)
            channel.messages.append((source, message))
            for nick in list(channel.members):
                if nick == source:
                    continue
                client = self.clients.get(nick)
                if client is not None:
                    client.deliver(source, target, message)
        else:
            client = self.clients.get(target)
            if client is not None:
                client.deliver(source, target, message)


class IrcClientEngine:
    """Bot-side IRC: register, join, hand commands to a callback."""

    def __init__(
        self,
        send: Callable[[bytes], None],
        nick: str,
        channel: str,
        on_command: Callable[[str], None],
    ) -> None:
        self._send = send
        self.nick = nick
        self.channel = channel
        self.on_command = on_command
        self.registered = False
        self.joined = False
        self._buffer = bytearray()
        self._line(f"NICK {nick}")
        self._line(f"USER {nick} 0 * :{nick}")

    def _line(self, text: str) -> None:
        self._send(text.encode("latin-1") + CRLF)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            index = self._buffer.find(b"\n")
            if index < 0:
                return
            line = bytes(self._buffer[:index]).rstrip(b"\r").decode(
                "latin-1", "replace")
            del self._buffer[:index + 1]
            if line:
                self._reply(line)

    def _reply(self, line: str) -> None:
        parts = line.split(" ")
        if len(parts) >= 2 and parts[1] == "001":
            self.registered = True
            self._line(f"JOIN {self.channel}")
        elif len(parts) >= 2 and parts[1] == "JOIN":
            self.joined = True
        elif len(parts) >= 2 and parts[1] == "332":
            topic = line.split(" :", 1)[-1]
            self.on_command(topic)
        elif len(parts) >= 2 and parts[1] == "PRIVMSG":
            message = line.split(" :", 1)[-1]
            self.on_command(message)
        elif parts[0] == "PING":
            token = line.split(" ", 1)[-1].lstrip(":")
            self._line(f"PONG :{token}")
