"""Packet formats: Ethernet (with 802.1Q), IPv4, TCP, UDP.

Packets are plain mutable objects that the simulator passes by
reference; every layer also serializes to and from real wire bytes
(including IPv4 header checksums and TCP/UDP pseudo-header checksums)
so that wire formats — in particular the shim protocol the gateway
injects into TCP streams — are bit-accurate and testable.

The gateway mutates packets in flight (NAT rewriting, VLAN retagging,
sequence-number bumping), so :meth:`copy` is provided on each layer and
frames are deep-copied at capture points to keep traces immutable.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Dict, Optional, Tuple, Union

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.errors import ParseError

PROTO_TCP = 6
PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100

# TCP flag bits
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10


_NEEDS_BYTESWAP = sys.byteorder == "little"


def _ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum used by IPv4/TCP/UDP checksums.

    Implemented as one bulk ``array('H')`` sum followed by a fold loop
    rather than folding per word.  Both forms reduce the word sum S to a
    value ``v ≡ S (mod 0xFFFF)`` in ``[0, 0xFFFF]`` and both return 0
    only for all-zero input, so the result is bit-identical to the
    per-word version at a fraction of the interpreter cost.
    """
    if len(data) % 2:
        data += b"\x00"
    words = array("H", data)
    if _NEEDS_BYTESWAP:
        words.byteswap()
    total = sum(words)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum of ``data``."""
    return (~_ones_complement_sum(data)) & 0xFFFF


def ones_complement_sum(data: bytes) -> int:
    """Public entry to the folded 16-bit one's-complement sum.

    The batched serializer (repro.net.wirebatch) computes this once per
    run over the invariant bytes (pseudo-header, flags/window header
    fields, payload), then folds in only the per-packet seq/ack words —
    one's-complement addition is associative, so the result is
    bit-identical to checksumming each packet in full.
    """
    return _ones_complement_sum(data)


def fold_checksum(total: int) -> int:
    """Finish an accumulated one's-complement word sum into an RFC 1071
    checksum value (fold carries, complement, mask)."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _validate_tcp_options(options: bytes) -> None:
    """Walk the TCP option TLVs; malformed lengths raise ParseError.

    The stack itself never emits options (data offset is always 5), so
    anything here came off a hostile wire: a zero/short option length
    or one running past the header is how lying length fields smuggle
    mis-framing into naive parsers.
    """
    index = 0
    end = len(options)
    while index < end:
        kind = options[index]
        if kind == 0:        # End of Option List
            return
        if kind == 1:        # NOP
            index += 1
            continue
        if index + 1 >= end:
            raise ParseError("tcp", f"truncated option (kind {kind})",
                             offset=20 + index)
        length = options[index + 1]
        if length < 2:
            raise ParseError("tcp", f"option length below minimum "
                             f"(kind {kind}, len {length})",
                             offset=20 + index)
        if index + length > end:
            raise ParseError("tcp", f"option overruns header "
                             f"(kind {kind}, len {length})",
                             offset=20 + index)
        index += length


class TCPSegment:
    """A TCP segment with a byte-accurate sequence space.

    Serialization is cached per (src, dst) pseudo-header: the gateway
    mutates segments in flight, so any field write invalidates the
    cached wire image (see :meth:`__setattr__`).
    """

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window", "payload",
                 "_wire", "_wire_key")

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        payload: bytes = b"",
    ) -> None:
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.payload = payload
        object.__setattr__(self, "_wire_key", None)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    # Flag helpers -----------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def seq_len(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def flag_string(self) -> str:
        names = []
        if self.syn:
            names.append("SYN")
        if self.fin:
            names.append("FIN")
        if self.rst:
            names.append("RST")
        if self.has_ack:
            names.append("ACK")
        if self.flags & PSH:
            names.append("PSH")
        return "|".join(names) or "-"

    def copy(self) -> "TCPSegment":
        # Slot-level clone bypassing __init__ and the mutation hook —
        # the hot relay path copies every packet it forwards.  The
        # cached wire image stays valid for a field-identical copy and
        # is invalidated by the hook on the first mutation.
        clone = object.__new__(TCPSegment)
        setter = object.__setattr__
        setter(clone, "sport", self.sport)
        setter(clone, "dport", self.dport)
        setter(clone, "seq", self.seq)
        setter(clone, "ack", self.ack)
        setter(clone, "flags", self.flags)
        setter(clone, "window", self.window)
        setter(clone, "payload", self.payload)
        setter(clone, "_wire", self._wire)
        setter(clone, "_wire_key", self._wire_key)
        return clone

    def rebind(self, sport: int, dport: int, seq: int, ack: int) -> "TCPSegment":
        """New segment carrying this one's flags/window/payload under
        translated addressing and sequence fields — the relay's inner
        operation, built in one pass with no mutation-hook churn."""
        clone = object.__new__(TCPSegment)
        setter = object.__setattr__
        setter(clone, "sport", sport)
        setter(clone, "dport", dport)
        setter(clone, "seq", seq)
        setter(clone, "ack", ack)
        setter(clone, "flags", self.flags)
        setter(clone, "window", self.window)
        setter(clone, "payload", self.payload)
        setter(clone, "_wire", None)
        setter(clone, "_wire_key", None)
        return clone

    def to_bytes(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Serialize with a valid checksum over the pseudo-header."""
        key = (src.value, dst.value)
        if self._wire is not None and self._wire_key == key:
            return self._wire
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport, self.dport, self.seq, self.ack,
            5 << 4,  # data offset: 5 words, no options
            self.flags, self.window, 0, 0,
        )
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack(
            "!BBH", 0, PROTO_TCP, len(header) + len(self.payload)
        )
        checksum = internet_checksum(pseudo + header + self.payload)
        header = header[:16] + struct.pack("!H", checksum) + header[18:]
        wire = header + self.payload
        # Cached via object.__setattr__ so the write doesn't invalidate
        # itself through the mutation hook.
        object.__setattr__(self, "_wire_key", key)
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "TCPSegment":
        if len(data) < 20:
            raise ParseError("tcp", "truncated TCP header "
                             f"({len(data)} of 20 bytes)", offset=len(data))
        sport, dport, seq, ack, offset_flags, flags, window, _csum, _urg = (
            struct.unpack("!HHIIBBHHH", data[:20])
        )
        header_len = (offset_flags >> 4) * 4
        if header_len < 20:
            raise ParseError("tcp", f"data offset below minimum "
                             f"({header_len} < 20)", offset=12)
        if header_len > len(data):
            raise ParseError("tcp", "options extend past segment end "
                             f"(data offset {header_len}, segment "
                             f"{len(data)})", offset=20)
        if header_len > 20:
            _validate_tcp_options(data[20:header_len])
        return cls(sport, dport, seq, ack, flags, window, data[header_len:])

    def __repr__(self) -> str:
        return (
            f"<TCP {self.sport}->{self.dport} {self.flag_string()} "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}>"
        )


class UDPDatagram:
    """A UDP datagram.

    Like :class:`TCPSegment`, the serialized wire image is cached per
    (src, dst) pseudo-header and invalidated on any field write.
    """

    __slots__ = ("sport", "dport", "payload", "_wire", "_wire_key")

    def __init__(self, sport: int, dport: int, payload: bytes = b"") -> None:
        self.sport = sport
        self.dport = dport
        self.payload = payload
        object.__setattr__(self, "_wire_key", None)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def copy(self) -> "UDPDatagram":
        clone = object.__new__(UDPDatagram)
        setter = object.__setattr__
        setter(clone, "sport", self.sport)
        setter(clone, "dport", self.dport)
        setter(clone, "payload", self.payload)
        setter(clone, "_wire", self._wire)
        setter(clone, "_wire_key", self._wire_key)
        return clone

    def rebind(self, sport: int, dport: int) -> "UDPDatagram":
        """New datagram with this payload under translated ports."""
        clone = object.__new__(UDPDatagram)
        setter = object.__setattr__
        setter(clone, "sport", sport)
        setter(clone, "dport", dport)
        setter(clone, "payload", self.payload)
        setter(clone, "_wire", None)
        setter(clone, "_wire_key", None)
        return clone

    def to_bytes(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        key = (src.value, dst.value)
        if self._wire is not None and self._wire_key == key:
            return self._wire
        length = 8 + len(self.payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack(
            "!BBH", 0, PROTO_UDP, length
        )
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF
        header = header[:6] + struct.pack("!H", checksum)
        wire = header + self.payload
        object.__setattr__(self, "_wire_key", key)
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPDatagram":
        if len(data) < 8:
            raise ParseError("udp", "truncated UDP header "
                             f"({len(data)} of 8 bytes)", offset=len(data))
        sport, dport, length, _csum = struct.unpack("!HHHH", data[:8])
        if length < 8:
            # Snapping a capture never alters the length *field*, so a
            # value below the fixed header size is always a lie.
            raise ParseError("udp", f"length field below header size "
                             f"({length} < 8)", offset=4)
        # length > len(data) is tolerated: indistinguishable from a
        # frame snapped inside the payload (see capture.write_pcap).
        return cls(sport, dport, data[8:length])

    def __repr__(self) -> str:
        return f"<UDP {self.sport}->{self.dport} len={len(self.payload)}>"


TransportPayload = Union[TCPSegment, UDPDatagram, bytes]

#: Memoized checksummed IPv4 headers, keyed by the six header fields
#: they derive from.  Bounded so adversarial ident churn can't grow it.
_IPV4_HEADER_MEMO: Dict[Tuple[int, int, int, int, int, int], bytes] = {}
_IPV4_HEADER_MEMO_MAX = 8192


def checksummed_ipv4_header(src: IPv4Address, dst: IPv4Address, proto: int,
                            ttl: int, ident: int, total_len: int) -> bytes:
    """The 20-byte checksummed IPv4 header for the given fields.

    Shared (and memoized) between IPv4Packet.to_bytes and the batched
    serializer: a run of same-flow packets with equal payload lengths
    pays the pack + checksum exactly once.
    """
    key = (src.value, dst.value, proto, ttl, ident, total_len)
    header = _IPV4_HEADER_MEMO.get(key)
    if header is None:
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version 4, IHL 5
            0, total_len, ident, 0,
            ttl, proto, 0,
            src.to_bytes(), dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        if len(_IPV4_HEADER_MEMO) < _IPV4_HEADER_MEMO_MAX:
            _IPV4_HEADER_MEMO[key] = header
    return header


class IPv4Packet:
    """An IPv4 packet carrying TCP, UDP, or opaque bytes."""

    __slots__ = ("src", "dst", "proto", "ttl", "ident", "payload")

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        payload: TransportPayload,
        proto: Optional[int] = None,
        ttl: int = 64,
        ident: int = 0,
    ) -> None:
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        if proto is None:
            if isinstance(payload, TCPSegment):
                proto = PROTO_TCP
            elif isinstance(payload, UDPDatagram):
                proto = PROTO_UDP
            else:
                raise ValueError("proto required for opaque payload")
        self.proto = proto
        self.ttl = ttl
        self.ident = ident
        self.payload = payload

    @classmethod
    def wrap(cls, src: IPv4Address, dst: IPv4Address,
             payload: TransportPayload, proto: int) -> "IPv4Packet":
        """Fast construction from already-canonical addresses and an
        explicit protocol — skips __init__'s re-validation."""
        packet = object.__new__(cls)
        packet.src = src
        packet.dst = dst
        packet.proto = proto
        packet.ttl = 64
        packet.ident = 0
        packet.payload = payload
        return packet

    @property
    def tcp(self) -> TCPSegment:
        if not isinstance(self.payload, TCPSegment):
            raise TypeError("payload is not TCP")
        return self.payload

    @property
    def udp(self) -> UDPDatagram:
        if not isinstance(self.payload, UDPDatagram):
            raise TypeError("payload is not UDP")
        return self.payload

    def copy(self) -> "IPv4Packet":
        payload = self.payload
        if isinstance(payload, (TCPSegment, UDPDatagram)):
            payload = payload.copy()
        # Direct slot clone: skips __init__'s address re-validation and
        # proto sniffing (both already canonical on an existing packet).
        clone = object.__new__(IPv4Packet)
        clone.src = self.src
        clone.dst = self.dst
        clone.proto = self.proto
        clone.ttl = self.ttl
        clone.ident = self.ident
        clone.payload = payload
        return clone

    def to_bytes(self) -> bytes:
        if isinstance(self.payload, (TCPSegment, UDPDatagram)):
            body = self.payload.to_bytes(self.src, self.dst)
        else:
            body = bytes(self.payload)
        # The checksummed header is a pure function of six fields;
        # checksummed_ipv4_header memoizes so repeated flows skip the
        # pack + checksum.
        header = checksummed_ipv4_header(self.src, self.dst, self.proto,
                                         self.ttl, self.ident,
                                         20 + len(body))
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Packet":
        if len(data) < 20:
            raise ParseError("ipv4", "truncated IPv4 header "
                             f"({len(data)} of 20 bytes)", offset=len(data))
        (ver_ihl, _tos, total_len, ident, _frag, ttl, proto, _csum,
         src_raw, dst_raw) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if ver_ihl >> 4 != 4:
            raise ParseError("ipv4", f"not IPv4 (version {ver_ihl >> 4})",
                             offset=0)
        header_len = (ver_ihl & 0xF) * 4
        if header_len < 20:
            raise ParseError("ipv4", f"IHL below minimum "
                             f"({header_len} < 20)", offset=0)
        if header_len > len(data):
            raise ParseError("ipv4", "IHL extends past packet end "
                             f"({header_len} > {len(data)})", offset=0)
        if total_len < header_len:
            # Like UDP's length field, snapping never shrinks total_len:
            # a value below the header length is always hostile.
            raise ParseError("ipv4", f"total length below header length "
                             f"({total_len} < {header_len})", offset=2)
        # total_len > len(data) is tolerated (frame snapped in payload).
        body = data[header_len:total_len]
        src = IPv4Address.from_bytes(src_raw)
        dst = IPv4Address.from_bytes(dst_raw)
        payload: TransportPayload
        if proto == PROTO_TCP:
            payload = TCPSegment.from_bytes(body)
        elif proto == PROTO_UDP:
            payload = UDPDatagram.from_bytes(body)
        else:
            payload = body
        return cls(src, dst, payload, proto, ttl, ident)

    def __repr__(self) -> str:
        return f"<IPv4 {self.src}->{self.dst} proto={self.proto} {self.payload!r}>"


class EthernetFrame:
    """An Ethernet frame, optionally 802.1Q tagged.

    The inmate network hangs per-inmate isolation on the VLAN tag — in
    GQ the VLAN ID *is* the inmate identity — so the tag is a first-class
    attribute rather than a header afterthought.
    """

    __slots__ = ("src", "dst", "vlan", "ethertype", "payload")

    def __init__(
        self,
        src: MacAddress,
        dst: MacAddress,
        payload: Union[IPv4Packet, bytes],
        vlan: Optional[int] = None,
        ethertype: int = ETHERTYPE_IPV4,
    ) -> None:
        self.src = MacAddress(src)
        self.dst = MacAddress(dst)
        if vlan is not None and not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN ID out of 802.1Q range: {vlan}")
        self.vlan = vlan
        self.ethertype = ethertype
        self.payload = payload

    @property
    def ip(self) -> IPv4Packet:
        if not isinstance(self.payload, IPv4Packet):
            raise TypeError("payload is not IPv4")
        return self.payload

    def copy(self) -> "EthernetFrame":
        payload = self.payload
        if isinstance(payload, IPv4Packet):
            payload = payload.copy()
        clone = object.__new__(EthernetFrame)
        clone.src = self.src
        clone.dst = self.dst
        clone.vlan = self.vlan
        clone.ethertype = self.ethertype
        clone.payload = payload
        return clone

    def retag(self, vlan: Optional[int]) -> "EthernetFrame":
        """Return self with the VLAN tag replaced (mutates in place)."""
        if vlan is not None and not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN ID out of 802.1Q range: {vlan}")
        self.vlan = vlan
        return self

    def to_bytes(self) -> bytes:
        if isinstance(self.payload, IPv4Packet):
            body = self.payload.to_bytes()
        else:
            body = bytes(self.payload)
        header = self.dst.to_bytes() + self.src.to_bytes()
        if self.vlan is not None:
            header += struct.pack("!HH", ETHERTYPE_VLAN, self.vlan & 0x0FFF)
        header += struct.pack("!H", self.ethertype)
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < 14:
            raise ParseError("ethernet", "truncated Ethernet header "
                             f"({len(data)} of 14 bytes)", offset=len(data))
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        vlan = None
        offset = 14
        if ethertype == ETHERTYPE_VLAN:
            if len(data) < 18:
                raise ParseError("ethernet", "truncated 802.1Q tag "
                                 f"({len(data)} of 18 bytes)", offset=14)
            (tci, ethertype) = struct.unpack("!HH", data[14:18])
            vlan = tci & 0x0FFF
            if vlan == 0:
                vlan = None  # priority tag: VID 0 means "no VLAN"
            elif vlan == 4095:
                raise ParseError("ethernet", "reserved VLAN ID 4095",
                                 offset=14)
            offset = 18
        body = data[offset:]
        payload: Union[IPv4Packet, bytes]
        if ethertype == ETHERTYPE_IPV4:
            payload = IPv4Packet.from_bytes(body)
        else:
            payload = body
        return cls(src, dst, payload, vlan, ethertype)

    def __repr__(self) -> str:
        tag = f" vlan={self.vlan}" if self.vlan is not None else ""
        return f"<Eth {self.src}->{self.dst}{tag} {self.payload!r}>"
