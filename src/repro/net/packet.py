"""Packet formats: Ethernet (with 802.1Q), IPv4, TCP, UDP.

Packets are plain mutable objects that the simulator passes by
reference; every layer also serializes to and from real wire bytes
(including IPv4 header checksums and TCP/UDP pseudo-header checksums)
so that wire formats — in particular the shim protocol the gateway
injects into TCP streams — are bit-accurate and testable.

The gateway mutates packets in flight (NAT rewriting, VLAN retagging,
sequence-number bumping), so :meth:`copy` is provided on each layer and
frames are deep-copied at capture points to keep traces immutable.
"""

from __future__ import annotations

import struct
from typing import Optional, Union

from repro.net.addresses import IPv4Address, MacAddress

PROTO_TCP = 6
PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100

# TCP flag bits
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10


def _ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum used by IPv4/TCP/UDP checksums."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum of ``data``."""
    return (~_ones_complement_sum(data)) & 0xFFFF


class TCPSegment:
    """A TCP segment with a byte-accurate sequence space."""

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window", "payload")

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        payload: bytes = b"",
    ) -> None:
        self.sport = sport
        self.dport = dport
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.payload = payload

    # Flag helpers -----------------------------------------------------
    @property
    def syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def seq_len(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    def flag_string(self) -> str:
        names = []
        if self.syn:
            names.append("SYN")
        if self.fin:
            names.append("FIN")
        if self.rst:
            names.append("RST")
        if self.has_ack:
            names.append("ACK")
        if self.flags & PSH:
            names.append("PSH")
        return "|".join(names) or "-"

    def copy(self) -> "TCPSegment":
        return TCPSegment(
            self.sport, self.dport, self.seq, self.ack,
            self.flags, self.window, self.payload,
        )

    def to_bytes(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        """Serialize with a valid checksum over the pseudo-header."""
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport, self.dport, self.seq, self.ack,
            5 << 4,  # data offset: 5 words, no options
            self.flags, self.window, 0, 0,
        )
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack(
            "!BBH", 0, PROTO_TCP, len(header) + len(self.payload)
        )
        checksum = internet_checksum(pseudo + header + self.payload)
        header = header[:16] + struct.pack("!H", checksum) + header[18:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "TCPSegment":
        if len(data) < 20:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, offset_flags, flags, window, _csum, _urg = (
            struct.unpack("!HHIIBBHHH", data[:20])
        )
        header_len = (offset_flags >> 4) * 4
        return cls(sport, dport, seq, ack, flags, window, data[header_len:])

    def __repr__(self) -> str:
        return (
            f"<TCP {self.sport}->{self.dport} {self.flag_string()} "
            f"seq={self.seq} ack={self.ack} len={len(self.payload)}>"
        )


class UDPDatagram:
    """A UDP datagram."""

    __slots__ = ("sport", "dport", "payload")

    def __init__(self, sport: int, dport: int, payload: bytes = b"") -> None:
        self.sport = sport
        self.dport = dport
        self.payload = payload

    def copy(self) -> "UDPDatagram":
        return UDPDatagram(self.sport, self.dport, self.payload)

    def to_bytes(self, src: IPv4Address, dst: IPv4Address) -> bytes:
        length = 8 + len(self.payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        pseudo = src.to_bytes() + dst.to_bytes() + struct.pack(
            "!BBH", 0, PROTO_UDP, length
        )
        checksum = internet_checksum(pseudo + header + self.payload)
        if checksum == 0:
            checksum = 0xFFFF
        header = header[:6] + struct.pack("!H", checksum)
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPDatagram":
        if len(data) < 8:
            raise ValueError("truncated UDP header")
        sport, dport, length, _csum = struct.unpack("!HHHH", data[:8])
        return cls(sport, dport, data[8:length])

    def __repr__(self) -> str:
        return f"<UDP {self.sport}->{self.dport} len={len(self.payload)}>"


TransportPayload = Union[TCPSegment, UDPDatagram, bytes]


class IPv4Packet:
    """An IPv4 packet carrying TCP, UDP, or opaque bytes."""

    __slots__ = ("src", "dst", "proto", "ttl", "ident", "payload")

    def __init__(
        self,
        src: IPv4Address,
        dst: IPv4Address,
        payload: TransportPayload,
        proto: Optional[int] = None,
        ttl: int = 64,
        ident: int = 0,
    ) -> None:
        self.src = IPv4Address(src)
        self.dst = IPv4Address(dst)
        if proto is None:
            if isinstance(payload, TCPSegment):
                proto = PROTO_TCP
            elif isinstance(payload, UDPDatagram):
                proto = PROTO_UDP
            else:
                raise ValueError("proto required for opaque payload")
        self.proto = proto
        self.ttl = ttl
        self.ident = ident
        self.payload = payload

    @property
    def tcp(self) -> TCPSegment:
        if not isinstance(self.payload, TCPSegment):
            raise TypeError("payload is not TCP")
        return self.payload

    @property
    def udp(self) -> UDPDatagram:
        if not isinstance(self.payload, UDPDatagram):
            raise TypeError("payload is not UDP")
        return self.payload

    def copy(self) -> "IPv4Packet":
        payload = self.payload
        if isinstance(payload, (TCPSegment, UDPDatagram)):
            payload = payload.copy()
        return IPv4Packet(self.src, self.dst, payload, self.proto, self.ttl, self.ident)

    def to_bytes(self) -> bytes:
        if isinstance(self.payload, (TCPSegment, UDPDatagram)):
            body = self.payload.to_bytes(self.src, self.dst)
        else:
            body = bytes(self.payload)
        total_len = 20 + len(body)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,  # version 4, IHL 5
            0, total_len, self.ident, 0,
            self.ttl, self.proto, 0,
            self.src.to_bytes(), self.dst.to_bytes(),
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Packet":
        if len(data) < 20:
            raise ValueError("truncated IPv4 header")
        (ver_ihl, _tos, total_len, ident, _frag, ttl, proto, _csum,
         src_raw, dst_raw) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if ver_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        header_len = (ver_ihl & 0xF) * 4
        body = data[header_len:total_len]
        src = IPv4Address.from_bytes(src_raw)
        dst = IPv4Address.from_bytes(dst_raw)
        payload: TransportPayload
        if proto == PROTO_TCP:
            payload = TCPSegment.from_bytes(body)
        elif proto == PROTO_UDP:
            payload = UDPDatagram.from_bytes(body)
        else:
            payload = body
        return cls(src, dst, payload, proto, ttl, ident)

    def __repr__(self) -> str:
        return f"<IPv4 {self.src}->{self.dst} proto={self.proto} {self.payload!r}>"


class EthernetFrame:
    """An Ethernet frame, optionally 802.1Q tagged.

    The inmate network hangs per-inmate isolation on the VLAN tag — in
    GQ the VLAN ID *is* the inmate identity — so the tag is a first-class
    attribute rather than a header afterthought.
    """

    __slots__ = ("src", "dst", "vlan", "ethertype", "payload")

    def __init__(
        self,
        src: MacAddress,
        dst: MacAddress,
        payload: Union[IPv4Packet, bytes],
        vlan: Optional[int] = None,
        ethertype: int = ETHERTYPE_IPV4,
    ) -> None:
        self.src = MacAddress(src)
        self.dst = MacAddress(dst)
        if vlan is not None and not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN ID out of 802.1Q range: {vlan}")
        self.vlan = vlan
        self.ethertype = ethertype
        self.payload = payload

    @property
    def ip(self) -> IPv4Packet:
        if not isinstance(self.payload, IPv4Packet):
            raise TypeError("payload is not IPv4")
        return self.payload

    def copy(self) -> "EthernetFrame":
        payload = self.payload
        if isinstance(payload, IPv4Packet):
            payload = payload.copy()
        return EthernetFrame(self.src, self.dst, payload, self.vlan, self.ethertype)

    def retag(self, vlan: Optional[int]) -> "EthernetFrame":
        """Return self with the VLAN tag replaced (mutates in place)."""
        if vlan is not None and not 1 <= vlan <= 4094:
            raise ValueError(f"VLAN ID out of 802.1Q range: {vlan}")
        self.vlan = vlan
        return self

    def to_bytes(self) -> bytes:
        if isinstance(self.payload, IPv4Packet):
            body = self.payload.to_bytes()
        else:
            body = bytes(self.payload)
        header = self.dst.to_bytes() + self.src.to_bytes()
        if self.vlan is not None:
            header += struct.pack("!HH", ETHERTYPE_VLAN, self.vlan & 0x0FFF)
        header += struct.pack("!H", self.ethertype)
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < 14:
            raise ValueError("truncated Ethernet header")
        dst = MacAddress.from_bytes(data[0:6])
        src = MacAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        vlan = None
        offset = 14
        if ethertype == ETHERTYPE_VLAN:
            (tci, ethertype) = struct.unpack("!HH", data[14:18])
            vlan = tci & 0x0FFF
            offset = 18
        body = data[offset:]
        payload: Union[IPv4Packet, bytes]
        if ethertype == ETHERTYPE_IPV4:
            payload = IPv4Packet.from_bytes(body)
        else:
            payload = body
        return cls(src, dst, payload, vlan, ethertype)

    def __repr__(self) -> str:
        tag = f" vlan={self.vlan}" if self.vlan is not None else ""
        return f"<Eth {self.src}->{self.dst}{tag} {self.payload!r}>"
