"""Struct-of-arrays wire batches for the batched table datapath.

A :class:`WireBatch` holds N transport packets as parallel columns —
addresses, ports, sequence fields, flags, and payload *offsets* into
one shared byte buffer — instead of N trees of Python objects.  The
router's :meth:`~repro.gateway.router.SubfarmRouter.ingest_batch`
walks the key column for runs of same-flow packets, applies the
matching flow-table entry's translation vectorized over the run's
columns, and appends the results to a :class:`BatchOutput`, which
serializes each run in one pass: the per-run invariant bytes
(pseudo-header, flags/window fields, payload) are checksummed once and
only the per-packet seq/ack words are folded in per row.  One's-
complement addition is associative, so the wire bytes are bit-identical
to serializing every packet individually through
``TCPSegment.to_bytes`` — asserted by the bench's determinism gate.

The batch layer never touches containment state: rows whose key misses
the flow table (or whose run an entry declines) are materialized back
into packet objects and fall through the ordinary slow path.
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.net.packet import (
    IPv4Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCPSegment,
    UDPDatagram,
    checksummed_ipv4_header,
    fold_checksum,
    ones_complement_sum,
)

#: Where a row entered the gateway — decides which slow path a
#: table-miss row falls back to.
ORIGIN_INMATE = 0
ORIGIN_UPSTREAM = 1

_PACK_SEQ_ACK = struct.Struct("!II")
_PACK_CSUM = struct.Struct("!H")
_TCP_HDR = struct.Struct("!HHIIBBHHH")
_UDP_HDR = struct.Struct("!HHHH")
_PSEUDO = struct.Struct("!BBH")


class WireBatch:
    """N packets as parallel columns plus a shared payload buffer."""

    __slots__ = ("keys", "src", "dst", "sport", "dport", "seq", "ack",
                 "flags", "window", "proto", "origin", "vlan",
                 "pay_off", "pay_len", "pay_obj", "buf")

    def __init__(self) -> None:
        self.keys: List[tuple] = []       # probe keys (int 5-tuples)
        self.src = array("Q")
        self.dst = array("Q")
        self.sport = array("L")
        self.dport = array("L")
        self.seq = array("Q")
        self.ack = array("Q")
        self.flags = array("L")
        self.window = array("L")
        self.proto = array("B")
        self.origin = array("B")
        self.vlan = array("l")            # -1 for non-inmate rows
        self.pay_off = array("l")
        self.pay_len = array("l")
        self.pay_obj: List[bytes] = []    # zero-copy payload refs
        self.buf = bytearray()

    def __len__(self) -> int:
        return len(self.keys)

    def append_tcp(self, src: int, sport: int, dst: int, dport: int,
                   seq: int, ack: int, flags: int, window: int,
                   payload: bytes, origin: int = ORIGIN_INMATE,
                   vlan: int = -1) -> None:
        self.keys.append((src, sport, dst, dport, PROTO_TCP))
        self.src.append(src)
        self.dst.append(dst)
        self.sport.append(sport)
        self.dport.append(dport)
        self.seq.append(seq)
        self.ack.append(ack)
        self.flags.append(flags)
        self.window.append(window)
        self.proto.append(PROTO_TCP)
        self.origin.append(origin)
        self.vlan.append(vlan)
        self.pay_off.append(len(self.buf))
        self.pay_len.append(len(payload))
        self.pay_obj.append(payload)
        self.buf += payload

    def append_udp(self, src: int, sport: int, dst: int, dport: int,
                   payload: bytes, origin: int = ORIGIN_INMATE,
                   vlan: int = -1) -> None:
        self.keys.append((src, sport, dst, dport, PROTO_UDP))
        self.src.append(src)
        self.dst.append(dst)
        self.sport.append(sport)
        self.dport.append(dport)
        self.seq.append(0)
        self.ack.append(0)
        self.flags.append(0)
        self.window.append(0)
        self.proto.append(PROTO_UDP)
        self.origin.append(origin)
        self.vlan.append(vlan)
        self.pay_off.append(len(self.buf))
        self.pay_len.append(len(payload))
        self.pay_obj.append(payload)
        self.buf += payload

    def append_packet(self, packet: IPv4Packet,
                      origin: int = ORIGIN_INMATE, vlan: int = -1) -> None:
        """Decompose an object-form packet into columns."""
        transport = packet.payload
        if packet.proto == PROTO_TCP:
            self.append_tcp(packet.src.value, transport.sport,
                            packet.dst.value, transport.dport,
                            transport.seq, transport.ack, transport.flags,
                            transport.window, transport.payload,
                            origin=origin, vlan=vlan)
        else:
            self.append_udp(packet.src.value, transport.sport,
                            packet.dst.value, transport.dport,
                            transport.payload, origin=origin, vlan=vlan)

    def materialize(self, row: int) -> IPv4Packet:
        """Rebuild row ``row`` as an IPv4Packet for slow-path fallback."""
        proto = self.proto[row]
        payload = self.pay_obj[row]
        if proto == PROTO_TCP:
            transport = TCPSegment(self.sport[row], self.dport[row],
                                   self.seq[row], self.ack[row],
                                   self.flags[row], self.window[row],
                                   payload)
        else:
            transport = UDPDatagram(self.sport[row], self.dport[row],
                                    payload)
        return IPv4Packet.wrap(IPv4Address(self.src[row]),
                               IPv4Address(self.dst[row]),
                               transport, proto)


class BatchOutput:
    """Translated rows grouped by run, awaiting one serialization pass.

    Each run shares its emission channel, addressing, ports, and proto;
    only seq/ack/flags/window/payload vary per row.  Slow-path fallback
    emissions are captured as singleton object runs so row order across
    the whole batch is preserved exactly.
    """

    __slots__ = ("runs",)

    def __init__(self) -> None:
        # (emit_code, emit_arg, proto, src, dst, sport, dport,
        #  seqs, acks, flags, windows, payloads, packets)
        self.runs: List[tuple] = []

    def rows(self) -> int:
        return sum(len(run[11]) if run[12] is None else len(run[12])
                   for run in self.runs)

    def append_run(self, emit_code: int, emit_arg, proto: int,
                   src: IPv4Address, dst: IPv4Address, sport: int,
                   dport: int, seqs, acks, flags, windows,
                   payloads) -> None:
        self.runs.append((emit_code, emit_arg, proto, src, dst, sport,
                          dport, seqs, acks, flags, windows, payloads,
                          None))

    def append_packet(self, emit_code: int, emit_arg,
                      packet: IPv4Packet) -> None:
        self.runs.append((emit_code, emit_arg, packet.proto, None, None,
                          0, 0, None, None, None, None, None, [packet]))

    def serialize(self) -> List[Tuple[int, object, bytes]]:
        """One (emit_code, emit_arg, wire_bytes) tuple per row, in
        emission order, checksummed per-run where possible."""
        wires: List[Tuple[int, object, bytes]] = []
        for (code, arg, proto, src, dst, sport, dport, seqs, acks,
             flags, windows, payloads, packets) in self.runs:
            if packets is not None:
                for packet in packets:
                    wires.append((code, arg, packet.to_bytes()))
            elif proto == PROTO_TCP:
                for wire in serialize_tcp_rows(src, dst, sport, dport,
                                               seqs, acks, flags,
                                               windows, payloads):
                    wires.append((code, arg, wire))
            else:
                for wire in serialize_udp_rows(src, dst, sport, dport,
                                               payloads):
                    wires.append((code, arg, wire))
        return wires

    def by_channel(self) -> Dict[int, List[bytes]]:
        """Wire bytes per emission channel, order preserved within each
        channel — directly comparable to scalar capture lists."""
        channels: Dict[int, List[bytes]] = {}
        for code, _arg, wire in self.serialize():
            channels.setdefault(code, []).append(wire)
        return channels


def serialize_tcp_rows(src: IPv4Address, dst: IPv4Address, sport: int,
                       dport: int, seqs, acks, flags, windows,
                       payloads) -> List[bytes]:
    """Serialize a run of TCP rows sharing addressing and ports.

    Consecutive rows with equal (flags, window, payload) share one
    pseudo-header + zero-seq/ack header + payload checksum base and one
    memoized IPv4 header; each row then folds in only its four seq/ack
    words.  Rows breaking the group degrade gracefully: a new base is
    computed and amortization resumes.
    """
    wires: List[bytes] = []
    src_b = src.to_bytes()
    dst_b = dst.to_bytes()
    base = None
    group_key = None
    template = None
    ip_header = b""
    for row in range(len(seqs)):
        flag = flags[row]
        window = windows[row]
        payload = payloads[row]
        key = (flag, window, id(payload))
        if key != group_key:
            if group_key is not None and flag == group_key[0] \
                    and window == group_key[1] \
                    and payload == payloads[row - 1]:
                # Equal bytes under a different object: same base.
                group_key = key
            else:
                group_key = key
                seg_len = 20 + len(payload)
                header = _TCP_HDR.pack(sport, dport, 0, 0, 5 << 4, flag,
                                       window, 0, 0)
                pseudo = src_b + dst_b + _PSEUDO.pack(0, PROTO_TCP,
                                                      seg_len)
                base = ones_complement_sum(pseudo + header + payload)
                template = bytearray(header)
                ip_header = checksummed_ipv4_header(src, dst, PROTO_TCP,
                                                    64, 0, 20 + seg_len)
        seq = seqs[row]
        ack = acks[row]
        checksum = fold_checksum(base + (seq >> 16) + (seq & 0xFFFF)
                                 + (ack >> 16) + (ack & 0xFFFF))
        _PACK_SEQ_ACK.pack_into(template, 4, seq, ack)
        _PACK_CSUM.pack_into(template, 16, checksum)
        wires.append(ip_header + template + payload)
    return wires


def serialize_udp_rows(src: IPv4Address, dst: IPv4Address, sport: int,
                       dport: int, payloads) -> List[bytes]:
    """Serialize a run of UDP rows sharing addressing and ports.

    Same amortization as the TCP path — UDP headers carry no per-row
    fields at all, so a group of equal payloads serializes once and is
    reused by reference.
    """
    wires: List[bytes] = []
    src_b = src.to_bytes()
    dst_b = dst.to_bytes()
    group_payload = None
    wire = b""
    for payload in payloads:
        if group_payload is None or (payload is not group_payload
                                     and payload != group_payload):
            group_payload = payload
            length = 8 + len(payload)
            header = _UDP_HDR.pack(sport, dport, length, 0)
            pseudo = src_b + dst_b + _PSEUDO.pack(0, PROTO_UDP, length)
            checksum = fold_checksum(
                ones_complement_sum(pseudo + header + payload))
            if checksum == 0:
                checksum = 0xFFFF
            wire = (checksummed_ipv4_header(src, dst, PROTO_UDP, 64, 0,
                                            20 + length)
                    + header[:6] + _PACK_CSUM.pack(checksum) + payload)
        wires.append(wire)
    return wires
