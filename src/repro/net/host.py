"""Simulated hosts: one NIC, an ARP-backed IPv4 layer, TCP and UDP.

A :class:`Host` is the unit everything runs on — inmates, sink servers,
containment servers, external C&C servers, and victim mail exchangers
are all hosts with application code attached through the socket-like
APIs of :class:`~repro.net.tcp.TcpStack` and :class:`UdpStack`.

Addressing may be static (external-world servers) or dynamic (inmates
acquire their RFC 1918 address via the subfarm's DHCP service at boot,
reproducing the "boot-time chatter" the paper's NAT keys on).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.arp import ETHERTYPE_ARP, OP_REQUEST, ArpMessage
from repro.net.link import Port
from repro.net.packet import (
    ETHERTYPE_IPV4,
    EthernetFrame,
    IPv4Packet,
    PROTO_TCP,
    PROTO_UDP,
    UDPDatagram,
)
from repro.net.tcp import TcpStack
from repro.sim.engine import Simulator

BROADCAST_IP = IPv4Address("255.255.255.255")

UdpHandler = Callable[["Host", IPv4Packet, UDPDatagram], None]


class UdpStack:
    """Per-host UDP: bound ports and a sendto-style API."""

    def __init__(self, host: "Host") -> None:
        self.host = host
        self._handlers: Dict[int, UdpHandler] = {}
        self._any_handler: Optional[UdpHandler] = None
        self._next_ephemeral = 1024
        self.datagrams_sent = 0
        self.datagrams_received = 0

    def bind(self, port: int, handler: UdpHandler) -> None:
        if port in self._handlers:
            raise RuntimeError(f"UDP port {port} already bound")
        self._handlers[port] = handler

    def bind_any(self, handler: UdpHandler) -> None:
        """Wildcard bind: receive datagrams for any unbound port."""
        self._any_handler = handler

    def unbind(self, port: int) -> None:
        self._handlers.pop(port, None)

    def allocate_port(self) -> int:
        for _ in range(64512):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                self._next_ephemeral = 1024
            if port not in self._handlers:
                return port
        raise RuntimeError("UDP ephemeral port space exhausted")

    def sendto(
        self,
        payload: bytes,
        dst_ip: IPv4Address,
        dst_port: int,
        src_port: Optional[int] = None,
    ) -> int:
        """Send a datagram; returns the source port used."""
        if src_port is None:
            src_port = self.allocate_port()
        src_ip = self.host.ip if self.host.ip is not None else IPv4Address(0)
        datagram = UDPDatagram(src_port, dst_port, payload)
        self.datagrams_sent += 1
        self.host.send_ip(IPv4Packet(src_ip, dst_ip, datagram))
        return src_port

    def packet_arrived(self, packet: IPv4Packet) -> None:
        datagram = packet.udp
        handler = self._handlers.get(datagram.dport) or self._any_handler
        if handler is not None:
            self.datagrams_received += 1
            handler(self.host, packet, datagram)


class Host:
    """A simulated machine with one network interface."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: Optional[IPv4Address] = None,
        prefix_len: int = 24,
        gateway_ip: Optional[IPv4Address] = None,
        mac: Optional[MacAddress] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.ip = IPv4Address(ip) if ip is not None else None
        self.prefix_len = prefix_len
        self.gateway_ip = IPv4Address(gateway_ip) if gateway_ip is not None else None
        self.mac = mac if mac is not None else self._derive_mac(name)
        self.rng = sim.rng(f"host/{name}")

        self.port = Port(self, name=f"{name}.eth0")
        self.tcp = TcpStack(self)
        self.udp = UdpStack(self)

        self._arp_cache: Dict[IPv4Address, MacAddress] = {}
        self._arp_pending: Dict[IPv4Address, List[IPv4Packet]] = {}

        # Sink servers accept traffic for *any* destination address:
        # reflected flows arrive still addressed to their original
        # (spoofed) destination, which is how the SMTP sink learns what
        # real server to grab a banner from.
        self.accept_any_ip = False

        self.packets_sent = 0
        self.packets_received = 0
        self.packets_unroutable = 0

    @staticmethod
    def _derive_mac(name: str) -> MacAddress:
        digest = abs(hash(("mac", name))) & 0xFFFFFFFFFF
        return MacAddress(0x02_00_00_00_00_00 | digest & 0xFF_FF_FF_FF_FF)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_port(self) -> Port:
        return self.port

    def configure(
        self,
        ip: IPv4Address,
        prefix_len: Optional[int] = None,
        gateway_ip: Optional[IPv4Address] = None,
    ) -> None:
        """Set the interface address (statically or from DHCP)."""
        self.ip = IPv4Address(ip)
        if prefix_len is not None:
            self.prefix_len = prefix_len
        if gateway_ip is not None:
            self.gateway_ip = IPv4Address(gateway_ip)

    # ------------------------------------------------------------------
    # IPv4 send path
    # ------------------------------------------------------------------
    def _subnet_mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    def _on_link(self, dst: IPv4Address) -> bool:
        if self.ip is None:
            return True  # unconfigured hosts only broadcast anyway
        mask = self._subnet_mask()
        return (dst.value & mask) == (self.ip.value & mask)

    def _next_hop(self, dst: IPv4Address) -> Optional[IPv4Address]:
        if self._on_link(dst):
            return dst
        return self.gateway_ip  # None means no route (ENETUNREACH)

    def send_ip(self, packet: IPv4Packet) -> None:
        """Send an IPv4 packet, resolving the next hop via ARP.

        Off-link destinations without a default gateway are silently
        unroutable (counted), like ENETUNREACH on a real host: the
        application just never hears back.
        """
        self.packets_sent += 1
        if packet.dst == BROADCAST_IP or packet.dst.value == 0xFFFFFFFF:
            self._transmit(packet, MacAddress.broadcast())
            return
        next_hop = self._next_hop(packet.dst)
        if next_hop is None:
            self.packets_unroutable += 1
            return
        mac = self._arp_cache.get(next_hop)
        if mac is not None:
            self._transmit(packet, mac)
            return
        queue = self._arp_pending.setdefault(next_hop, [])
        queue.append(packet)
        if len(queue) == 1:
            self._send_arp_request(next_hop)

    def _transmit(self, packet: IPv4Packet, dst_mac: MacAddress) -> None:
        frame = EthernetFrame(self.mac, dst_mac, packet, ethertype=ETHERTYPE_IPV4)
        self.port.send(frame)

    def _send_arp_request(self, target_ip: IPv4Address) -> None:
        sender_ip = self.ip if self.ip is not None else IPv4Address(0)
        message = ArpMessage.request(self.mac, sender_ip, target_ip)
        frame = EthernetFrame(
            self.mac,
            MacAddress.broadcast(),
            message.to_bytes(),
            ethertype=ETHERTYPE_ARP,
        )
        self.port.send(frame)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, port: Port) -> None:
        if not frame.dst.is_broadcast and frame.dst != self.mac:
            return
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(frame)
            return
        if frame.ethertype != ETHERTYPE_IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return
        packet = frame.payload
        is_broadcast = packet.dst == BROADCAST_IP
        if (not is_broadcast and self.ip is not None
                and packet.dst != self.ip and not self.accept_any_ip):
            return
        if not is_broadcast and self.ip is None:
            # Unconfigured host: only DHCP-style broadcast is interesting,
            # but accept unicast addressed to our MAC (DHCP offers do this).
            pass
        self.packets_received += 1
        if packet.proto == PROTO_TCP:
            self.tcp.packet_arrived(packet)
        elif packet.proto == PROTO_UDP:
            self.udp.packet_arrived(packet)

    def _handle_arp(self, frame: EthernetFrame) -> None:
        try:
            message = ArpMessage.from_bytes(bytes(frame.payload))
        except ValueError:
            return
        if message.sender_ip.value != 0:
            self._arp_cache[message.sender_ip] = message.sender_mac
            self._drain_pending(message.sender_ip)
        if (
            message.op == OP_REQUEST
            and self.ip is not None
            and message.target_ip == self.ip
        ):
            reply = ArpMessage.reply(self.mac, self.ip, message.sender_mac,
                                     message.sender_ip)
            out = EthernetFrame(
                self.mac, message.sender_mac, reply.to_bytes(),
                ethertype=ETHERTYPE_ARP,
            )
            self.port.send(out)

    def _drain_pending(self, ip: IPv4Address) -> None:
        pending = self._arp_pending.pop(ip, None)
        if not pending:
            return
        mac = self._arp_cache[ip]
        for packet in pending:
            self._transmit(packet, mac)

    def arp_cache_snapshot(self) -> Dict[IPv4Address, MacAddress]:
        return dict(self._arp_cache)

    def __repr__(self) -> str:
        return f"<Host {self.name} ip={self.ip} mac={self.mac}>"
