"""Minimal HTTP/1.1 message handling.

HTTP carries most modern C&C: the auto-infection server (§6.6) is an
HTTP server realized as a REWRITE containment, the Figure 5 walkthrough
rewrites an HTTP GET in flight, and clickbot/spambot C&C rides on GET
and POST.  This module gives all of those a shared, incremental parser
that works over TCP byte streams (partial delivery is the norm).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.errors import ParseError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"

#: A header block that exceeds this without terminating is rejected —
#: bounding the parser's buffer against a hostile peer that streams
#: header bytes forever.
MAX_HEADER_BYTES = 65536


class HttpMessage:
    """Common machinery for requests and responses."""

    def __init__(self, headers: Optional[Dict[str, str]] = None,
                 body: bytes = b"") -> None:
        self.headers: Dict[str, str] = dict(headers or {})
        self.body = body

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    def set_header(self, name: str, value: str) -> None:
        for key in list(self.headers):
            if key.lower() == name.lower():
                del self.headers[key]
        self.headers[name] = value

    #: Responses always carry Content-Length so receivers can frame
    #: them without waiting for connection close.
    always_content_length = False

    def _encode_headers(self, start_line: str) -> bytes:
        lines = [start_line.encode("ascii")]
        headers = dict(self.headers)
        if (self.body or self.always_content_length) and not any(
            k.lower() == "content-length" for k in headers
        ):
            headers["Content-Length"] = str(len(self.body))
        for name, value in headers.items():
            lines.append(f"{name}: {value}".encode("latin-1"))
        return CRLF.join(lines) + HEADER_END


class HttpRequest(HttpMessage):
    """An HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
        version: str = "HTTP/1.1",
    ) -> None:
        super().__init__(headers, body)
        self.method = method.upper()
        self.path = path
        self.version = version

    def to_bytes(self) -> bytes:
        return self._encode_headers(
            f"{self.method} {self.path} {self.version}"
        ) + self.body

    @property
    def host_header(self) -> Optional[str]:
        return self.header("Host")

    def __repr__(self) -> str:
        return f"<HttpRequest {self.method} {self.path}>"


class HttpResponse(HttpMessage):
    """An HTTP response."""

    always_content_length = True

    REASONS = {
        200: "OK", 204: "No Content", 301: "Moved Permanently",
        302: "Found", 403: "Forbidden", 404: "NOT FOUND",
        500: "Internal Server Error", 503: "Service Unavailable",
    }

    def __init__(
        self,
        status: int,
        headers: Optional[Dict[str, str]] = None,
        body: bytes = b"",
        reason: Optional[str] = None,
        version: str = "HTTP/1.1",
    ) -> None:
        super().__init__(headers, body)
        self.status = status
        self.reason = reason or self.REASONS.get(status, "Unknown")
        self.version = version

    def to_bytes(self) -> bytes:
        return self._encode_headers(
            f"{self.version} {self.status} {self.reason}"
        ) + self.body

    def __repr__(self) -> str:
        return f"<HttpResponse {self.status} {self.reason}>"


def _parse_headers(block: bytes) -> Tuple[List[str], Dict[str, str]]:
    lines = block.split(CRLF)
    start = lines[0].decode("latin-1")
    headers: Dict[str, str] = {}
    for raw in lines[1:]:
        if not raw:
            continue
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip()] = value.strip()
    return start.split(" ", 2), headers


class HttpParser:
    """Incremental parser over a TCP byte stream.

    Feed bytes with :meth:`feed`; completed messages come back as a
    list.  ``role`` selects request or response framing.  Responses
    without Content-Length are framed by connection close (call
    :meth:`finish` when the peer closes).
    """

    def __init__(self, role: str = "request") -> None:
        if role not in ("request", "response"):
            raise ValueError("role must be 'request' or 'response'")
        self.role = role
        self._buffer = bytearray()
        self._headers_done = False
        self._current: Optional[HttpMessage] = None
        self._body_remaining = 0
        self._until_close = False

    def feed(self, data: bytes) -> List[HttpMessage]:
        self._buffer.extend(data)
        messages: List[HttpMessage] = []
        while True:
            message = self._try_parse_one()
            if message is None:
                break
            messages.append(message)
        return messages

    def finish(self) -> Optional[HttpMessage]:
        """Peer closed the connection: flush a close-framed body."""
        if self._until_close and self._current is not None:
            self._current.body = bytes(self._buffer)
            self._buffer.clear()
            message, self._current = self._current, None
            self._until_close = False
            self._headers_done = False
            return message
        return None

    def _try_parse_one(self) -> Optional[HttpMessage]:
        if not self._headers_done:
            end = self._buffer.find(HEADER_END)
            if end < 0:
                if len(self._buffer) > MAX_HEADER_BYTES:
                    raise ParseError(
                        "http", f"header block exceeds {MAX_HEADER_BYTES} "
                        "bytes without terminating",
                        offset=MAX_HEADER_BYTES)
                return None
            block = bytes(self._buffer[:end])
            del self._buffer[:end + len(HEADER_END)]
            parts, headers = _parse_headers(block)
            if self.role == "request":
                method, path = parts[0], parts[1] if len(parts) > 1 else "/"
                version = parts[2] if len(parts) > 2 else "HTTP/1.0"
                self._current = HttpRequest(method, path, headers, version=version)
            else:
                version = parts[0]
                if len(parts) > 1:
                    try:
                        status = int(parts[1])
                    except ValueError:
                        raise ParseError(
                            "http", f"non-numeric status {parts[1]!r}",
                            offset=len(version) + 1) from None
                else:
                    status = 200
                reason = parts[2] if len(parts) > 2 else ""
                self._current = HttpResponse(status, headers, reason=reason,
                                             version=version)
            length = self._current.header("Content-Length")
            if length is not None:
                try:
                    self._body_remaining = int(length)
                except ValueError:
                    raise ParseError(
                        "http", f"malformed Content-Length {length!r}",
                        offset=end) from None
                if self._body_remaining < 0:
                    raise ParseError(
                        "http", f"negative Content-Length {length!r}",
                        offset=end)
                self._until_close = False
            elif self.role == "response" and status not in (204, 304):
                # No length on a response: framed by close.
                self._body_remaining = 0
                self._until_close = True
                self._headers_done = True
                return None
            else:
                self._body_remaining = 0
                self._until_close = False
            self._headers_done = True

        if self._until_close:
            return None
        if len(self._buffer) < self._body_remaining:
            return None
        assert self._current is not None
        self._current.body = bytes(self._buffer[:self._body_remaining])
        del self._buffer[:self._body_remaining]
        message, self._current = self._current, None
        self._headers_done = False
        self._body_remaining = 0
        return message
