"""A generic IP router used as the simulated Internet backbone.

The external universe — C&C servers, victim mail exchangers, FTP
servers, blacklist infrastructure — hangs off one of these.  GQ's
gateway plugs its upstream interface into the same router, with the
farm's globally routable /24s routed toward it (§6.7).

The router proxy-ARPs on every port (it is everyone's default
gateway), performs longest-prefix-match forwarding, and decrements
TTL.  It is intentionally simple: the paper's system does not depend
on backbone behaviour beyond packets getting where they are addressed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.arp import ETHERTYPE_ARP, OP_REQUEST, ArpMessage
from repro.net.host import Host
from repro.net.link import Link, Port
from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame, IPv4Packet
from repro.sim.engine import Simulator


class Router:
    """Longest-prefix-match IP router with proxy ARP."""

    def __init__(self, sim: Simulator, name: str = "internet") -> None:
        self.sim = sim
        self.name = name
        self.mac = MacAddress(0x02_FE_00_00_00_01)
        self.ports: List[Port] = []
        self._routes: List[Tuple[IPv4Network, Port]] = []
        self._neighbor_macs: Dict[Port, MacAddress] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0

    def attach_port(self) -> Port:
        port = Port(self, name=f"{self.name}.p{len(self.ports)}")
        self.ports.append(port)
        return port

    def add_route(self, network: IPv4Network, port: Port) -> None:
        self._routes.append((network, port))
        # Keep longest prefixes first for LPM.
        self._routes.sort(key=lambda entry: -entry[0].prefix_len)

    def attach_host(self, host: Host, latency: float = 0.01,
                    gateway_ip: Optional[IPv4Address] = None) -> Port:
        """Wire a statically addressed host to the backbone.

        Routes the host's /32 toward it and points the host's default
        gateway at us (any address works: we proxy-ARP).
        """
        if host.ip is None:
            raise ValueError("backbone hosts need a static IP")
        port = self.attach_port()
        Link(self.sim, host.attach_port(), port, latency)
        self.add_route(IPv4Network(f"{host.ip}/32"), port)
        self._neighbor_macs[port] = host.mac
        if gateway_ip is None:
            # A same-subnet gateway address; value is arbitrary thanks to
            # proxy ARP, but must differ from the host's own.
            base = (host.ip.value & 0xFFFFFF00) + 1
            if base == host.ip.value:
                base += 1
            gateway_ip = IPv4Address(base)
        host.configure(host.ip, gateway_ip=gateway_ip)
        return port

    def attach_gateway(self, port_owner_mac: MacAddress, networks: List[IPv4Network],
                       peer_port: Port, latency: float = 0.01) -> Port:
        """Wire the farm gateway's upstream interface to the backbone."""
        port = self.attach_port()
        Link(self.sim, peer_port, port, latency)
        for network in networks:
            self.add_route(network, port)
        self._neighbor_macs[port] = port_owner_mac
        return port

    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, port: Port) -> None:
        if frame.ethertype == ETHERTYPE_ARP:
            self._handle_arp(frame, port)
            return
        if frame.ethertype != ETHERTYPE_IPV4 or not isinstance(
            frame.payload, IPv4Packet
        ):
            return
        self.forward(frame.payload, arrived_on=port)

    def forward(self, packet: IPv4Packet, arrived_on: Optional[Port] = None) -> None:
        out = self._lookup(packet.dst)
        if out is None or out is arrived_on:
            self.packets_dropped += 1
            return
        if packet.ttl <= 1:
            self.packets_dropped += 1
            return
        packet.ttl -= 1
        dst_mac = self._neighbor_macs.get(out, MacAddress.broadcast())
        self.packets_forwarded += 1
        out.send(EthernetFrame(self.mac, dst_mac, packet, ethertype=ETHERTYPE_IPV4))

    def _lookup(self, dst: IPv4Address) -> Optional[Port]:
        for network, port in self._routes:
            if network.contains(dst):
                return port
        return None

    def _handle_arp(self, frame: EthernetFrame, port: Port) -> None:
        try:
            message = ArpMessage.from_bytes(bytes(frame.payload))
        except ValueError:
            return
        if message.sender_ip.value != 0:
            self._neighbor_macs.setdefault(port, message.sender_mac)
        if message.op != OP_REQUEST:
            return
        # Proxy ARP: we answer for any address that is not the asker's.
        if message.target_ip == message.sender_ip:
            return
        reply = ArpMessage.reply(
            self.mac, message.target_ip, message.sender_mac, message.sender_ip
        )
        port.send(
            EthernetFrame(self.mac, message.sender_mac, reply.to_bytes(),
                          ethertype=ETHERTYPE_ARP)
        )

    def __repr__(self) -> str:
        return f"<Router {self.name} ports={len(self.ports)} routes={len(self._routes)}>"
