"""SOCKS4 message framing (RFC-less classic, per Koblas 1992).

Storm's proxy bots accept SOCKS message headers from upstream nodes
and open onward connections on their behalf — that capability is how
the iframe-injection jobs of §7.1 arrived.  The farm needs just the
SOCKS4 CONNECT request/response framing.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.net.errors import ParseError

VERSION = 4
CMD_CONNECT = 1

#: A request whose user-id field runs past this without its NUL
#: terminator is hostile (the field is a short identd name).
MAX_USER_ID = 512

REPLY_GRANTED = 90
REPLY_REJECTED = 91


class Socks4Request:
    """A SOCKS4 CONNECT request."""

    __slots__ = ("command", "port", "address", "user_id")

    def __init__(
        self,
        address: IPv4Address,
        port: int,
        command: int = CMD_CONNECT,
        user_id: bytes = b"",
    ) -> None:
        self.command = command
        self.port = port
        self.address = IPv4Address(address)
        self.user_id = user_id

    def to_bytes(self) -> bytes:
        return (
            struct.pack("!BBH", VERSION, self.command, self.port)
            + self.address.to_bytes()
            + self.user_id
            + b"\x00"
        )

    @classmethod
    def parse(cls, data: bytes) -> Optional[Tuple["Socks4Request", int]]:
        """Parse from a buffer; returns (request, bytes consumed) or
        None if more bytes are needed."""
        if len(data) < 9:
            return None
        version, command, port = struct.unpack("!BBH", data[:4])
        if version != VERSION:
            raise ParseError("socks4", f"not SOCKS4 (version {version})",
                             offset=0)
        address = IPv4Address.from_bytes(data[4:8])
        terminator = data.find(b"\x00", 8)
        if terminator < 0:
            if len(data) > 8 + MAX_USER_ID:
                raise ParseError("socks4", "user-id field exceeds "
                                 f"{MAX_USER_ID} bytes without terminator",
                                 offset=8)
            return None
        user_id = data[8:terminator]
        return cls(address, port, command, user_id), terminator + 1

    def __repr__(self) -> str:
        return f"<Socks4Request connect {self.address}:{self.port}>"


class Socks4Reply:
    """A SOCKS4 reply."""

    __slots__ = ("code", "port", "address")

    def __init__(self, code: int, port: int = 0,
                 address: Optional[IPv4Address] = None) -> None:
        self.code = code
        self.port = port
        self.address = address or IPv4Address(0)

    @property
    def granted(self) -> bool:
        return self.code == REPLY_GRANTED

    def to_bytes(self) -> bytes:
        return struct.pack("!BBH", 0, self.code, self.port) + self.address.to_bytes()

    @classmethod
    def parse(cls, data: bytes) -> Optional[Tuple["Socks4Reply", int]]:
        if len(data) < 8:
            return None
        _null, code, port = struct.unpack("!BBH", data[:4])
        return cls(code, port, IPv4Address.from_bytes(data[4:8])), 8

    def __repr__(self) -> str:
        verdict = "granted" if self.granted else f"code={self.code}"
        return f"<Socks4Reply {verdict}>"
