"""Address types: IPv4 and MAC.

Thin, hashable value types.  :class:`IPv4Address` wraps a 32-bit integer
(rather than the stdlib ``ipaddress`` objects) because the simulator
creates and compares millions of them and the gateway needs cheap
arithmetic for NAT pool management.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Union


class IPv4Address:
    """A 32-bit IPv4 address, hashable and totally ordered.

    Instances are interned: constructing the same address twice returns
    the same object (up to a bounded cache), so 5-tuple equality checks
    in the gateway's flow table usually short-circuit on identity.
    Treat instances as immutable.
    """

    __slots__ = ("value",)

    _intern: Dict[int, "IPv4Address"] = {}
    _INTERN_MAX = 65536

    def __new__(cls, address: Union[str, int, "IPv4Address"]) -> "IPv4Address":
        if isinstance(address, IPv4Address):
            return address
        if isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise ValueError(f"IPv4 value out of range: {address}")
            value = address
        elif isinstance(address, str):
            parts = address.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {address!r}")
            value = 0
            for part in parts:
                octet = int(part)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed IPv4 address: {address!r}")
                value = (value << 8) | octet
        else:
            raise TypeError(f"cannot build IPv4Address from {type(address)}")
        cache = cls._intern
        self = cache.get(value)
        if self is None or type(self) is not cls:
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            if type(self) is IPv4Address and len(cache) < cls._INTERN_MAX:
                cache[value] = self
        return self

    def to_bytes(self) -> bytes:
        return struct.pack("!I", self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise ValueError("IPv4 address requires exactly 4 bytes")
        return cls(struct.unpack("!I", data)[0])

    def is_rfc1918(self) -> bool:
        """True for 10/8, 172.16/12, and 192.168/16 space."""
        v = self.value
        return (
            (v >> 24) == 10
            or (v >> 20) == (172 << 4 | 1)  # 172.16.0.0/12
            or (v >> 16) == (192 << 8 | 168)
        )

    def in_network(self, network: "IPv4Network") -> bool:
        return network.contains(self)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def __sub__(self, other: "IPv4Address") -> int:
        return self.value - other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self.value == other.value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __le__(self, other: "IPv4Address") -> bool:
        return self.value <= other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"


class IPv4Network:
    """A CIDR network, used for NAT pools and address-space accounting."""

    __slots__ = ("network", "prefix_len")

    def __init__(self, cidr: str) -> None:
        address, _, prefix = cidr.partition("/")
        if not prefix:
            raise ValueError(f"network requires a prefix length: {cidr!r}")
        self.prefix_len = int(prefix)
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length: {self.prefix_len}")
        base = IPv4Address(address).value
        self.network = base & self.mask

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    def contains(self, address: IPv4Address) -> bool:
        return (address.value & self.mask) == self.network

    def hosts(self) -> Iterator[IPv4Address]:
        """Yield usable host addresses (excludes network/broadcast for
        prefixes shorter than /31)."""
        first, last = self.network, self.network + self.num_addresses - 1
        if self.prefix_len < 31:
            first += 1
            last -= 1
        for value in range(first, last + 1):
            yield IPv4Address(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IPv4Network)
            and self.network == other.network
            and self.prefix_len == other.prefix_len
        )

    def __hash__(self) -> int:
        return hash((self.network, self.prefix_len))

    def __str__(self) -> str:
        return f"{IPv4Address(self.network)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"


class MacAddress:
    """A 48-bit MAC address.

    Interned like :class:`IPv4Address`; treat instances as immutable.
    """

    __slots__ = ("value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    _intern: Dict[int, "MacAddress"] = {}
    _INTERN_MAX = 16384

    def __new__(cls, address: Union[str, int, "MacAddress"]) -> "MacAddress":
        if isinstance(address, MacAddress):
            return address
        if isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFFFFFF:
                raise ValueError(f"MAC value out of range: {address}")
            value = address
        elif isinstance(address, str):
            parts = address.split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC address: {address!r}")
            value = 0
            for part in parts:
                octet = int(part, 16)
                if not 0 <= octet <= 255:
                    raise ValueError(f"malformed MAC address: {address!r}")
                value = (value << 8) | octet
        else:
            raise TypeError(f"cannot build MacAddress from {type(address)}")
        cache = cls._intern
        self = cache.get(value)
        if self is None or type(self) is not cls:
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            if type(self) is MacAddress and len(cache) < cls._INTERN_MAX:
                cache[value] = self
        return self

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls(cls.BROADCAST_VALUE)

    @property
    def is_broadcast(self) -> bool:
        return self.value == self.BROADCAST_VALUE

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise ValueError("MAC address requires exactly 6 bytes")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        raw = self.value.to_bytes(6, "big")
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"


class MacAllocator:
    """Hands out locally administered, unique MAC addresses."""

    def __init__(self, oui: int = 0x02_00_00) -> None:
        self._oui = oui
        self._next = 1

    def allocate(self) -> MacAddress:
        value = (self._oui << 24) | self._next
        self._next += 1
        if self._next > 0xFFFFFF:
            raise RuntimeError("MAC allocator exhausted")
        return MacAddress(value)
