"""Minimal ARP (RFC 826) for IPv4-over-Ethernet.

Inmates must behave like real machines on boot — the paper's NAT
assignment is "triggered by the inmates' boot-time chatter" — so hosts
genuinely broadcast ARP requests and the gateway proxy-ARPs for
everything off-link.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.errors import ParseError

ETHERTYPE_ARP = 0x0806

OP_REQUEST = 1
OP_REPLY = 2


class ArpMessage:
    """An ARP request or reply for IPv4 over Ethernet."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(
        self,
        op: int,
        sender_mac: MacAddress,
        sender_ip: IPv4Address,
        target_mac: Optional[MacAddress],
        target_ip: IPv4Address,
    ) -> None:
        self.op = op
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac or MacAddress(0)
        self.target_ip = target_ip

    @classmethod
    def request(cls, sender_mac: MacAddress, sender_ip: IPv4Address,
                target_ip: IPv4Address) -> "ArpMessage":
        return cls(OP_REQUEST, sender_mac, sender_ip, None, target_ip)

    @classmethod
    def reply(cls, sender_mac: MacAddress, sender_ip: IPv4Address,
              target_mac: MacAddress, target_ip: IPv4Address) -> "ArpMessage":
        return cls(OP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    def to_bytes(self) -> bytes:
        return (
            struct.pack("!HHBBH", 1, 0x0800, 6, 4, self.op)
            + self.sender_mac.to_bytes()
            + self.sender_ip.to_bytes()
            + self.target_mac.to_bytes()
            + self.target_ip.to_bytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArpMessage":
        if len(data) < 28:
            raise ParseError("arp", f"truncated ARP message "
                             f"({len(data)} of 28 bytes)", offset=len(data))
        htype, ptype, hlen, plen, op = struct.unpack("!HHBBH", data[:8])
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ParseError("arp", "unsupported ARP hardware/protocol "
                             f"combination ({htype}/{ptype:#x}/{hlen}/{plen})",
                             offset=0)
        return cls(
            op,
            MacAddress.from_bytes(data[8:14]),
            IPv4Address.from_bytes(data[14:18]),
            MacAddress.from_bytes(data[18:24]),
            IPv4Address.from_bytes(data[24:28]),
        )

    def __repr__(self) -> str:
        kind = "who-has" if self.op == OP_REQUEST else "is-at"
        return (
            f"<ARP {kind} {self.target_ip} tell "
            f"{self.sender_ip} ({self.sender_mac})>"
        )
