"""Simulated network substrate.

This package provides everything GQ's gateway and containment machinery
operate on: Ethernet frames with 802.1Q VLAN tags, IPv4 packets, TCP
segments with a byte-accurate sequence space, UDP datagrams, links and
VLAN-aware switches, and per-host TCP/UDP stacks with a small socket
API.

Fidelity goals (what must be real for the reproduction to be honest):

* TCP sequence/acknowledgement numbers are real 32-bit stream offsets —
  the gateway's shim injection and stripping (paper Figure 5) performs
  genuine ``SEQ += |REQ SHIM|`` / ``SEQ -= |RSP SHIM|`` arithmetic.
* All packet headers have byte-level serializations with checksums, so
  wire formats (notably the shim protocol, Figure 4) are bit-accurate.
* Delivery is event-driven on the shared virtual clock; latency is per
  link and deterministic.
"""

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.errors import ParseError
from repro.net.flow import FiveTuple, FlowDirection
from repro.net.packet import (
    EthernetFrame,
    IPv4Packet,
    TCPSegment,
    UDPDatagram,
    PROTO_TCP,
    PROTO_UDP,
)

__all__ = [
    "IPv4Address",
    "MacAddress",
    "ParseError",
    "FiveTuple",
    "FlowDirection",
    "EthernetFrame",
    "IPv4Packet",
    "TCPSegment",
    "UDPDatagram",
    "PROTO_TCP",
    "PROTO_UDP",
]
