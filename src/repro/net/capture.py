"""Packet trace capture — GQ's two-pronged recording strategy (§5.6).

The gateway records each subfarm's activity from the inmate network's
perspective (internal RFC 1918 addresses: cheap anonymity for data
sharing) and, separately, everything crossing the upstream interface
as seen outside GQ.  :class:`PacketTrace` is the in-memory store both
analysis and reporting read from; :func:`write_pcap` emits genuine
libpcap files for interoperability.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Iterator, List, Optional

from repro.net.flow import FiveTuple
from repro.net.packet import EthernetFrame, IPv4Packet, PROTO_TCP, PROTO_UDP

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1


class TraceRecord:
    """One captured frame with its capture timestamp and point."""

    __slots__ = ("timestamp", "frame", "point")

    def __init__(self, timestamp: float, frame: EthernetFrame, point: str) -> None:
        self.timestamp = timestamp
        self.frame = frame
        self.point = point

    @property
    def ip(self) -> Optional[IPv4Packet]:
        payload = self.frame.payload
        return payload if isinstance(payload, IPv4Packet) else None

    @property
    def five_tuple(self) -> Optional[FiveTuple]:
        ip = self.ip
        if ip is None or ip.proto not in (PROTO_TCP, PROTO_UDP):
            return None
        try:
            return FiveTuple.from_packet(ip)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return f"<TraceRecord t={self.timestamp:.6f} {self.point} {self.frame!r}>"


class PacketTrace:
    """A capture buffer with query helpers and live observers.

    Two consumption models, mirroring §5.6/§6.5 practice:

    * *Post-hoc*: ``records`` holds captured frames for querying and
      pcap export.  ``max_records`` bounds the buffer (oldest frames
      rotate out, counted in ``rotated_out``) so day-scale runs do not
      hold every packet in memory.
    * *Streaming*: observers registered via :meth:`subscribe` see every
      record as it is captured — how the Bro-style analyzers process
      multi-day activity without retaining the packets.
    """

    def __init__(self, name: str = "trace",
                 max_records: Optional[int] = None) -> None:
        self.name = name
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.rotated_out = 0
        self._observers: List[Callable[[TraceRecord], None]] = []

    def subscribe(self, observer: Callable[[TraceRecord], None]) -> None:
        """Register a live observer; it sees each record at capture."""
        self._observers.append(observer)

    def capture(self, timestamp: float, frame: EthernetFrame,
                point: str = "") -> None:
        """Record a deep copy of the frame (it may be mutated later)."""
        record = TraceRecord(timestamp, frame.copy(), point)
        for observer in self._observers:
            observer(record)
        self.records.append(record)
        if self.max_records is not None and len(self.records) > self.max_records:
            overflow = len(self.records) - self.max_records
            del self.records[:overflow]
            self.rotated_out += overflow

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(
        self,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        point: Optional[str] = None,
        vlan: Optional[int] = None,
        proto: Optional[int] = None,
        dport: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Filter records by capture point, VLAN tag, proto, dst port."""
        out = []
        for record in self.records:
            if point is not None and record.point != point:
                continue
            if vlan is not None and record.frame.vlan != vlan:
                continue
            ip = record.ip
            if proto is not None and (ip is None or ip.proto != proto):
                continue
            if dport is not None:
                if ip is None:
                    continue
                if ip.proto == PROTO_TCP and ip.tcp.dport != dport:
                    continue
                if ip.proto == PROTO_UDP and ip.udp.dport != dport:
                    continue
                if ip.proto not in (PROTO_TCP, PROTO_UDP):
                    continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def flows(self) -> List[FiveTuple]:
        """Distinct originator-oriented five-tuples, first-seen order.

        A flow's originator is whoever sent the first packet we saw;
        for TCP that is the SYN sender.
        """
        seen = {}
        for record in self.records:
            key = record.five_tuple
            if key is None:
                continue
            if key in seen or key.reversed() in seen:
                continue
            seen[key] = True
        return list(seen)

    def tcp_payload(self, flow: FiveTuple, direction: str = "orig") -> bytes:
        """Concatenated TCP payload bytes for one direction of a flow.

        Duplicate segments (same sequence number) are ignored so NAT'd
        captures of retransmissions do not double bytes.
        """
        seen = set()
        chunks = []
        for record in self.records:
            ip = record.ip
            if ip is None or ip.proto != PROTO_TCP:
                continue
            match = flow.matches_packet(ip)
            if match is None or match.value != direction:
                continue
            segment = ip.tcp
            if not segment.payload or segment.seq in seen:
                continue
            seen.add(segment.seq)
            chunks.append((segment.seq, segment.payload))
        chunks.sort(key=lambda pair: pair[0])
        return b"".join(payload for _seq, payload in chunks)


def write_pcap(path: str, records: Iterable[TraceRecord],
               snaplen: int = 65535) -> int:
    """Write records as a classic libpcap file; returns frames written.

    Frames longer than ``snaplen`` are snapped: ``incl_len`` records
    the bytes actually stored, ``orig_len`` the wire length, exactly
    as libpcap specifies.
    """
    if snaplen <= 0:
        raise ValueError("snaplen must be positive")
    count = 0
    with open(path, "wb") as handle:
        handle.write(
            struct.pack(
                "!IHHiIII",
                PCAP_MAGIC, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET,
            )
        )
        for record in records:
            data = record.frame.to_bytes()
            seconds = int(record.timestamp)
            micros = int(round((record.timestamp - seconds) * 1_000_000))
            if micros >= 1_000_000:
                # Sub-microsecond timestamps round up past the second
                # boundary (e.g. t = 3.9999999); carry, never emit an
                # out-of-range microseconds field.
                seconds += micros // 1_000_000
                micros %= 1_000_000
            incl = data[:snaplen]
            handle.write(struct.pack("!IIII", seconds, micros,
                                     len(incl), len(data)))
            handle.write(incl)
            count += 1
    return count


def read_pcap(path: str) -> List[TraceRecord]:
    """Read a classic libpcap file written by :func:`write_pcap`.

    Snapped records (``incl_len < orig_len``) whose remaining bytes no
    longer parse as a frame are skipped; a record body shorter than
    its own ``incl_len`` means the file itself is truncated and is an
    error.
    """
    records = []
    with open(path, "rb") as handle:
        header = handle.read(24)
        if len(header) < 24:
            raise ValueError("truncated pcap header")
        (magic,) = struct.unpack("!I", header[:4])
        if magic != PCAP_MAGIC:
            raise ValueError("not a pcap file (or unsupported byte order)")
        while True:
            record_header = handle.read(16)
            if not record_header:
                break
            if len(record_header) < 16:
                raise ValueError("truncated pcap record header")
            seconds, micros, caplen, origlen = struct.unpack(
                "!IIII", record_header)
            data = handle.read(caplen)
            if len(data) < caplen:
                raise ValueError("truncated pcap record")
            try:
                frame = EthernetFrame.from_bytes(data)
            except Exception:
                if caplen < origlen:
                    continue  # snapped beyond parseability
                raise
            records.append(TraceRecord(seconds + micros / 1_000_000, frame, "pcap"))
    return records
