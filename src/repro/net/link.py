"""Links, ports, and VLAN-aware switches.

Topology model: devices expose ``receive_frame(frame, port)``; a
:class:`Link` joins two device ports and delivers frames after a fixed
latency on the virtual clock.  :class:`Switch` is an 802.1Q learning
switch with per-port access/trunk modes — the physical switches behind
GQ's gateway that enforce per-inmate VLAN assignment (§5.2).

The switch intentionally enforces strict VLAN isolation: frames never
cross VLANs here.  Controlled crosstalk between inmate VLANs is the
*gateway's* job (the learning VLAN bridge, §5.1), subject to policy.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.addresses import MacAddress
from repro.net.packet import EthernetFrame
from repro.sim.engine import Simulator

FrameHandler = Callable[[EthernetFrame, "Port"], None]


class Port:
    """One end of a link, owned by a device."""

    def __init__(self, owner: object, name: str = "") -> None:
        self.owner = owner
        self.name = name
        self.link: Optional["Link"] = None
        self.frames_sent = 0
        self.frames_received = 0
        # Batch coalescing: set to the owning Simulator to let this
        # port claim all same-instant deliveries queued behind the one
        # firing and hand them to the owner's receive_frame_batch in
        # one call.  None (the default) keeps scalar delivery.
        self.coalesce: Optional[Simulator] = None

    @property
    def connected(self) -> bool:
        return self.link is not None

    def send(self, frame: EthernetFrame) -> None:
        """Transmit a frame out this port (no-op when unplugged)."""
        if self.link is None:
            return
        self.frames_sent += 1
        self.link.transmit(self, frame)

    def deliver(self, frame: EthernetFrame) -> None:
        sim = self.coalesce
        if sim is not None:
            more = sim.drain_coincident(self.deliver)
            if more:
                receive_batch = getattr(self.owner, "receive_frame_batch",
                                        None)
                if receive_batch is not None:
                    frames = [frame]
                    frames.extend(args[0] for args in more)
                    self.frames_received += len(frames)
                    receive_batch(frames, self)
                    return
                # Owner cannot batch: replay the claimed frames
                # individually, preserving order.
                self.frames_received += 1 + len(more)
                receive = getattr(self.owner, "receive_frame")
                receive(frame, self)
                for args in more:
                    receive(args[0], self)
                return
        self.frames_received += 1
        receive = getattr(self.owner, "receive_frame")
        receive(frame, self)

    def __repr__(self) -> str:
        return f"<Port {self.name or id(self)} of {self.owner!r}>"


class Link:
    """A reliable point-to-point link with fixed one-way latency."""

    def __init__(
        self,
        sim: Simulator,
        port_a: Port,
        port_b: Port,
        latency: float = 0.0005,
        batch_window: Optional[float] = None,
    ) -> None:
        if port_a.link is not None or port_b.link is not None:
            raise RuntimeError("port already linked")
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.latency = latency
        # Coalescing window (virtual seconds).  A positive window
        # quantizes delivery times up to the next window boundary, so
        # frames in flight during the same window arrive at the same
        # instant and a coalescing receiver (Port.coalesce) batches
        # them.  0.0 or None leaves per-frame timing untouched — with a
        # coalescing receiver, only naturally coincident frames merge.
        self.batch_window = batch_window
        self.frames_carried = 0
        port_a.link = self
        port_b.link = self

    def transmit(self, from_port: Port, frame: EthernetFrame) -> None:
        peer = self.port_b if from_port is self.port_a else self.port_a
        self.frames_carried += 1
        window = self.batch_window
        if window:
            when = self.sim.now + self.latency
            self.sim.schedule_at(-(-when // window) * window, peer.deliver,
                                 frame, label="link-deliver")
            return
        self.sim.schedule(self.latency, peer.deliver, frame, label="link-deliver")

    def disconnect(self) -> None:
        self.port_a.link = None
        self.port_b.link = None


def connect(
    sim: Simulator, device_a: object, device_b: object, latency: float = 0.0005
) -> Tuple[Port, Port]:
    """Convenience: attach two devices that expose ``attach_port()``."""
    port_a = device_a.attach_port()  # type: ignore[attr-defined]
    port_b = device_b.attach_port()  # type: ignore[attr-defined]
    Link(sim, port_a, port_b, latency)
    return port_a, port_b


class PortMode(enum.Enum):
    """802.1Q port roles: untagged access or tagged trunk."""

    ACCESS = "access"  # untagged; fixed VLAN
    TRUNK = "trunk"    # tagged; carries a set of VLANs (or all)


class SwitchPortConfig:
    """Per-port VLAN configuration."""

    def __init__(
        self,
        mode: PortMode = PortMode.ACCESS,
        access_vlan: int = 1,
        trunk_vlans: Optional[frozenset] = None,
    ) -> None:
        self.mode = mode
        self.access_vlan = access_vlan
        self.trunk_vlans = trunk_vlans  # None => all VLANs allowed

    def carries(self, vlan: int) -> bool:
        if self.mode is PortMode.ACCESS:
            return vlan == self.access_vlan
        return self.trunk_vlans is None or vlan in self.trunk_vlans


class Switch:
    """An 802.1Q learning switch.

    Frames arriving on access ports are classified into the port's
    VLAN; frames leaving access ports are untagged.  Trunk ports carry
    tagged frames for their allowed VLAN set.  MAC learning is keyed on
    (vlan, mac) so identical MACs on different VLANs never collide —
    inmates are routinely cloned from the same image and share MACs.
    """

    def __init__(self, sim: Simulator, name: str = "switch") -> None:
        self.sim = sim
        self.name = name
        self.ports: List[Port] = []
        self.configs: Dict[Port, SwitchPortConfig] = {}
        self._mac_table: Dict[Tuple[int, MacAddress], Port] = {}
        self.frames_switched = 0
        self.frames_flooded = 0
        self.frames_filtered = 0

    def attach_port(
        self,
        mode: PortMode = PortMode.ACCESS,
        access_vlan: int = 1,
        trunk_vlans: Optional[frozenset] = None,
    ) -> Port:
        port = Port(self, name=f"{self.name}.p{len(self.ports)}")
        self.ports.append(port)
        self.configs[port] = SwitchPortConfig(mode, access_vlan, trunk_vlans)
        return port

    def configure_port(self, port: Port, config: SwitchPortConfig) -> None:
        if port not in self.configs:
            raise KeyError("port does not belong to this switch")
        self.configs[port] = config

    def receive_frame(self, frame: EthernetFrame, port: Port) -> None:
        config = self.configs[port]
        if config.mode is PortMode.ACCESS:
            vlan = config.access_vlan
        else:
            if frame.vlan is None:
                self.frames_filtered += 1
                return  # untagged frames on trunks are dropped
            vlan = frame.vlan
            if not config.carries(vlan):
                self.frames_filtered += 1
                return

        self._mac_table[(vlan, frame.src)] = port

        if not frame.dst.is_broadcast:
            out = self._mac_table.get((vlan, frame.dst))
            if out is not None and out is not port:
                self._emit(frame, out, vlan)
                self.frames_switched += 1
                return
            if out is port:
                return  # hairpin; drop
        # Flood within the VLAN.
        self.frames_flooded += 1
        for candidate in self.ports:
            if candidate is port:
                continue
            if self.configs[candidate].carries(vlan):
                self._emit(frame, candidate, vlan)

    def _emit(self, frame: EthernetFrame, port: Port, vlan: int) -> None:
        config = self.configs[port]
        out = frame.copy()
        if config.mode is PortMode.ACCESS:
            out.retag(None)
        else:
            out.retag(vlan)
        port.send(out)

    def mac_table_snapshot(self) -> Dict[Tuple[int, MacAddress], Port]:
        return dict(self._mac_table)

    def __repr__(self) -> str:
        return f"<Switch {self.name} ports={len(self.ports)}>"
