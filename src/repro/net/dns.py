"""DNS over UDP: message format plus stub resolver and server helpers.

The inmate network offers a recursive resolver as an infrastructure
service (§5.3); botnet models use it to look up C&C hostnames, and
domain-generation-algorithm behaviour is exercised through it.

Only the slice of RFC 1035 the farm needs is implemented: A and MX
queries, compressed-name-free encoding, single-question messages.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.net.errors import ParseError

QTYPE_A = 1
QTYPE_MX = 15

RCODE_OK = 0
RCODE_NXDOMAIN = 3

#: RFC 1035 §4.1.4 compression-pointer chains are bounded twice over:
#: every pointer must point strictly backward (which alone guarantees
#: termination) *and* chains longer than this are rejected outright —
#: a self-referential or looping pointer raises ParseError instead of
#: hanging the resolver.
MAX_POINTER_HOPS = 16
MAX_NAME_LENGTH = 255


def encode_name(name: str) -> bytes:
    """Encode a dotted name as DNS labels (no compression)."""
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("ascii")
        if not 0 < len(raw) < 64:
            raise ValueError(f"bad DNS label in {name!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode labels at ``offset``; returns (name, next offset).

    Follows RFC 1035 compression pointers with two loop guards: each
    pointer must point strictly backward, and chains are capped at
    :data:`MAX_POINTER_HOPS`.  Hostile names (self-referential
    pointers, forward pointers, over-long names, non-ASCII labels)
    raise :class:`ParseError` rather than hanging or recursing.
    """
    labels = []
    name_length = 0
    hops = 0
    end: Optional[int] = None  # next offset in the un-compressed stream
    while True:
        if offset >= len(data):
            raise ParseError("dns", "truncated name", offset=len(data))
        length = data[offset]
        if length & 0xC0 == 0xC0:
            if offset + 1 >= len(data):
                raise ParseError("dns", "truncated compression pointer",
                                 offset=offset)
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if end is None:
                end = offset + 2
            if pointer >= offset:
                raise ParseError(
                    "dns", "compression pointer does not point backward "
                    f"({pointer} >= {offset})", offset=offset)
            hops += 1
            if hops > MAX_POINTER_HOPS:
                raise ParseError("dns", "compression pointer chain exceeds "
                                 f"{MAX_POINTER_HOPS} hops", offset=offset)
            offset = pointer
            continue
        if length & 0xC0:
            raise ParseError("dns", f"reserved label type {length >> 6:#x}",
                             offset=offset)
        offset += 1
        if length == 0:
            break
        name_length += length + 1
        if name_length > MAX_NAME_LENGTH:
            raise ParseError("dns", f"name exceeds {MAX_NAME_LENGTH} bytes",
                             offset=offset)
        if offset + length > len(data):
            raise ParseError("dns", "truncated label", offset=offset)
        try:
            labels.append(data[offset:offset + length].decode("ascii"))
        except UnicodeDecodeError:
            raise ParseError("dns", "non-ascii label", offset=offset) from None
        offset += length
    return ".".join(labels), (end if end is not None else offset)


class DnsQuestion:
    """The single question of a query: name plus record type."""

    __slots__ = ("name", "qtype")

    def __init__(self, name: str, qtype: int = QTYPE_A) -> None:
        self.name = name.lower().rstrip(".")
        self.qtype = qtype

    def to_bytes(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype, 1)

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> Tuple["DnsQuestion", int]:
        name, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise ParseError("dns", "truncated question", offset=offset)
        qtype, _qclass = struct.unpack("!HH", data[offset:offset + 4])
        return cls(name, qtype), offset + 4


class DnsRecord:
    """A resource record: A (address) or MX (priority, exchange)."""

    __slots__ = ("name", "rtype", "ttl", "address", "priority", "exchange")

    def __init__(
        self,
        name: str,
        rtype: int,
        ttl: int = 300,
        address: Optional[IPv4Address] = None,
        priority: int = 10,
        exchange: str = "",
    ) -> None:
        self.name = name.lower().rstrip(".")
        self.rtype = rtype
        self.ttl = ttl
        self.address = address
        self.priority = priority
        self.exchange = exchange

    @classmethod
    def a(cls, name: str, address: IPv4Address, ttl: int = 300) -> "DnsRecord":
        return cls(name, QTYPE_A, ttl, address=IPv4Address(address))

    @classmethod
    def mx(cls, name: str, exchange: str, priority: int = 10,
           ttl: int = 300) -> "DnsRecord":
        return cls(name, QTYPE_MX, ttl, priority=priority, exchange=exchange)

    def to_bytes(self) -> bytes:
        head = encode_name(self.name) + struct.pack("!HHI", self.rtype, 1, self.ttl)
        if self.rtype == QTYPE_A:
            rdata = self.address.to_bytes()  # type: ignore[union-attr]
        elif self.rtype == QTYPE_MX:
            rdata = struct.pack("!H", self.priority) + encode_name(self.exchange)
        else:
            raise ValueError(f"unsupported record type {self.rtype}")
        return head + struct.pack("!H", len(rdata)) + rdata

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> Tuple["DnsRecord", int]:
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise ParseError("dns", "truncated record header", offset=offset)
        rtype, _rclass, ttl, rdlen = struct.unpack("!HHIH", data[offset:offset + 10])
        offset += 10
        if offset + rdlen > len(data):
            raise ParseError("dns", f"rdata length overruns message "
                             f"({rdlen} bytes claimed)", offset=offset)
        rdata = data[offset:offset + rdlen]
        offset += rdlen
        if rtype == QTYPE_A:
            if len(rdata) != 4:
                raise ParseError("dns", f"A rdata must be 4 bytes "
                                 f"(got {len(rdata)})", offset=offset - rdlen)
            return cls.a(name, IPv4Address.from_bytes(rdata), ttl), offset
        if rtype == QTYPE_MX:
            if len(rdata) < 3:
                raise ParseError("dns", "truncated MX rdata",
                                 offset=offset - rdlen)
            (priority,) = struct.unpack("!H", rdata[:2])
            exchange, _ = decode_name(rdata, 2)
            return cls.mx(name, exchange, priority, ttl), offset
        raise ParseError("dns", f"unsupported record type {rtype}",
                         offset=offset - rdlen - 10)


class DnsMessage:
    """A single-question DNS message."""

    def __init__(
        self,
        txid: int,
        question: DnsQuestion,
        answers: Optional[List[DnsRecord]] = None,
        is_response: bool = False,
        rcode: int = RCODE_OK,
        recursion_desired: bool = True,
    ) -> None:
        self.txid = txid
        self.question = question
        self.answers = answers or []
        self.is_response = is_response
        self.rcode = rcode
        self.recursion_desired = recursion_desired

    @classmethod
    def query(cls, txid: int, name: str, qtype: int = QTYPE_A) -> "DnsMessage":
        return cls(txid, DnsQuestion(name, qtype))

    def reply(self, answers: List[DnsRecord], rcode: int = RCODE_OK) -> "DnsMessage":
        return DnsMessage(self.txid, self.question, answers,
                          is_response=True, rcode=rcode)

    def to_bytes(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000 | 0x0080  # QR, RA
        if self.recursion_desired:
            flags |= 0x0100
        flags |= self.rcode & 0xF
        header = struct.pack(
            "!HHHHHH", self.txid, flags, 1, len(self.answers), 0, 0
        )
        body = self.question.to_bytes()
        for record in self.answers:
            body += record.to_bytes()
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DnsMessage":
        if len(data) < 12:
            raise ParseError("dns", f"truncated DNS header "
                             f"({len(data)} of 12 bytes)", offset=len(data))
        txid, flags, qdcount, ancount, _ns, _ar = struct.unpack("!HHHHHH", data[:12])
        if qdcount != 1:
            raise ParseError("dns", "only single-question messages "
                             f"supported (qdcount={qdcount})", offset=4)
        question, offset = DnsQuestion.from_bytes(data, 12)
        answers = []
        for _ in range(ancount):
            record, offset = DnsRecord.from_bytes(data, offset)
            answers.append(record)
        return cls(
            txid, question, answers,
            is_response=bool(flags & 0x8000),
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
        )

    def __repr__(self) -> str:
        kind = "response" if self.is_response else "query"
        return f"<DNS {kind} txid={self.txid} {self.question.name!r} answers={len(self.answers)}>"


class StubResolverClient:
    """Async stub resolver for hosts: one in-flight query per call."""

    def __init__(self, host, resolver_ip: IPv4Address, port: int = 53) -> None:
        self.host = host
        self.resolver_ip = IPv4Address(resolver_ip)
        self.port = port
        self._next_txid = 1
        self._pending: Dict[Tuple[int, int], object] = {}

    def resolve(self, name: str, callback, qtype: int = QTYPE_A) -> None:
        """Look up ``name``; ``callback(records)`` gets [] on NXDOMAIN."""
        txid = self._next_txid
        self._next_txid = (self._next_txid + 1) & 0xFFFF
        query = DnsMessage.query(txid, name, qtype)
        src_port = self.host.udp.allocate_port()

        def on_reply(host, packet, datagram):
            host.udp.unbind(src_port)
            try:
                message = DnsMessage.from_bytes(datagram.payload)
            except ValueError:
                callback([])
                return
            if message.txid != txid or not message.is_response:
                callback([])
                return
            callback(message.answers if message.rcode == RCODE_OK else [])

        self.host.udp.bind(src_port, on_reply)
        self.host.udp.sendto(query.to_bytes(), self.resolver_ip, self.port, src_port)
