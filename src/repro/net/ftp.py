"""FTP control-channel primitives.

Exists for one reason: the paper's §7.1 "Unexpected visitors" episode.
An upstream botmaster pushed SOCKS-framed jobs through Storm proxy
bots, instructing them to log into FTP servers with known credentials,
download an HTML page, and re-upload it with a malicious iframe
injected.  GQ's reflect-everything-but-C&C policy caught the FTP
connection attempts at the sink.

The model here is a small command/reply engine rich enough for that
scenario: USER/PASS login, RETR, STOR, QUIT over a single connection
(in-band data transfer — a simplification that keeps the containment
story identical without a second data channel).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

CRLF = b"\r\n"


class FtpServerEngine:
    """A minimal FTP server with an in-memory filesystem."""

    def __init__(
        self,
        send: Callable[[bytes], None],
        accounts: Optional[Dict[str, str]] = None,
        files: Optional[Dict[str, bytes]] = None,
        banner: str = "FTP server ready",
    ) -> None:
        self._send = send
        self.accounts = dict(accounts or {})
        # Kept by reference: all sessions of one site share the same
        # filesystem, so uploads are visible site-wide.
        self.files: Dict[str, bytes] = files if files is not None else {}
        self._buffer = bytearray()
        self._user: Optional[str] = None
        self.authenticated = False
        self._storing: Optional[str] = None
        self._store_buffer = bytearray()
        self.uploads: List[Tuple[str, bytes]] = []
        self.downloads: List[str] = []
        self.login_failures = 0
        self._reply(220, banner)

    def _reply(self, code: int, text: str) -> None:
        # Replies can echo client-supplied bytes (unknown verbs); e.g.
        # b"\xb5".decode("latin-1").upper() leaves latin-1's range, so
        # the echo must never crash the server.
        self._send(f"{code} {text}".encode("latin-1", "replace") + CRLF)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            if self._storing is not None:
                end = self._buffer.find(b"\r\n.\r\n")
                if end < 0:
                    return
                content = bytes(self._buffer[:end])
                del self._buffer[:end + 5]
                self.files[self._storing] = content
                self.uploads.append((self._storing, content))
                self._storing = None
                self._reply(226, "transfer complete")
                continue
            index = self._buffer.find(CRLF)
            if index < 0:
                return
            line = bytes(self._buffer[:index]).decode("latin-1")
            del self._buffer[:index + 2]
            self._command(line)

    def _command(self, line: str) -> None:
        verb, _, argument = line.partition(" ")
        verb = verb.upper()
        if verb == "USER":
            self._user = argument.strip()
            self._reply(331, "password required")
        elif verb == "PASS":
            if self._user is not None and self.accounts.get(self._user) == argument.strip():
                self.authenticated = True
                self._reply(230, "login successful")
            else:
                self.login_failures += 1
                self._reply(530, "login incorrect")
        elif verb == "RETR":
            if not self.authenticated:
                self._reply(530, "not logged in")
            elif argument.strip() in self.files:
                name = argument.strip()
                self.downloads.append(name)
                self._reply(150, "opening data connection")
                self._send(self.files[name] + b"\r\n.\r\n")
                self._reply(226, "transfer complete")
            else:
                self._reply(550, "file not found")
        elif verb == "STOR":
            if not self.authenticated:
                self._reply(530, "not logged in")
            else:
                self._storing = argument.strip()
                self._store_buffer.clear()
                self._reply(150, "ok to send data")
        elif verb == "QUIT":
            self._reply(221, "goodbye")
        else:
            self._reply(502, f"command {verb!r} not implemented")


class FtpClientEngine:
    """Scripted FTP client: login, fetch a file, transform, re-upload.

    The exact behaviour of the Storm iframe-injection job: the
    ``transform`` callable receives the downloaded bytes and returns
    the bytes to upload (e.g. with an iframe inserted).
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        username: str,
        password: str,
        filename: str,
        transform: Callable[[bytes], bytes],
        on_done: Optional[Callable[["FtpClientEngine"], None]] = None,
    ) -> None:
        self._send = send
        self.username = username
        self.password = password
        self.filename = filename
        self.transform = transform
        self.on_done = on_done

        self._buffer = bytearray()
        self._phase = "banner"
        self._downloading = False
        self._download = bytearray()
        self.downloaded: Optional[bytes] = None
        self.uploaded = False
        self.failed = False

    def _line(self, text: str) -> None:
        self._send(text.encode("latin-1") + CRLF)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)
        while True:
            if self._downloading:
                end = self._buffer.find(b"\r\n.\r\n")
                if end < 0:
                    return
                self.downloaded = bytes(self._buffer[:end])
                del self._buffer[:end + 5]
                self._downloading = False
                continue
            index = self._buffer.find(CRLF)
            if index < 0:
                return
            line = bytes(self._buffer[:index]).decode("latin-1")
            del self._buffer[:index + 2]
            self._reply(line)
            if self.failed:
                return

    def _reply(self, line: str) -> None:
        code = int(line[:3]) if line[:3].isdigit() else 0
        if self._phase == "banner":
            self._line(f"USER {self.username}")
            self._phase = "user"
        elif self._phase == "user":
            if code != 331:
                self._fail()
                return
            self._line(f"PASS {self.password}")
            self._phase = "pass"
        elif self._phase == "pass":
            if code != 230:
                self._fail()
                return
            self._line(f"RETR {self.filename}")
            self._phase = "retr"
        elif self._phase == "retr":
            if code == 150:
                self._downloading = True  # data follows in-band
                return
            if code != 226 or self.downloaded is None:
                self._fail()
                return
            self._line(f"STOR {self.filename}")
            self._phase = "stor"
        elif self._phase == "stor":
            if code == 150:
                payload = self.transform(self.downloaded or b"")
                self._send(payload + b"\r\n.\r\n")
                return
            if code == 226:
                self.uploaded = True
                self._line("QUIT")
                self._phase = "quit"
                if self.on_done:
                    self.on_done(self)
            else:
                self._fail()
        elif self._phase == "quit":
            pass

    def _fail(self) -> None:
        self.failed = True
        if self.on_done:
            self.on_done(self)
