"""Network address translation for the inmate network (§5.3).

Every inmate lives behind NAT: the packet forwarder assigns internal
RFC 1918 addresses (triggered by boot-time chatter) and maps them
1:1 onto the farm's globally routable address space.  Outside->inside
flows are either dropped (emulating a typical home-user setup) or
forwarded with destination rewriting (providing Internet-reachable
servers) — per-subfarm configurable.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.obs.telemetry import NULL_TELEMETRY


class InboundMode(enum.Enum):
    """What happens to unsolicited outside->inside flows."""

    DROP = "drop"        # home-user NAT: nothing gets in
    FORWARD = "forward"  # honeyfarm: rewrite and deliver to the inmate


class AddressPoolExhausted(RuntimeError):
    """No addresses left in an allocation pool."""


class AddressPool:
    """Sequential allocator over one or more networks."""

    def __init__(self, networks: List[IPv4Network],
                 reserved: Optional[List[IPv4Address]] = None) -> None:
        self.networks = list(networks)
        self._reserved = set(reserved or [])
        self._iterator = self._walk()
        self._released: List[IPv4Address] = []
        self.allocated = 0

    def add_network(self, network: IPv4Network) -> None:
        """Grow the pool — e.g. tunneled address space donated by a
        third party (§7.2)."""
        self.networks.append(network)

    def _walk(self) -> Iterator[IPv4Address]:
        index = 0
        while index < len(self.networks):  # networks may grow while walking
            network = self.networks[index]
            for address in network.hosts():
                if address not in self._reserved:
                    yield address
            index += 1

    @property
    def capacity(self) -> int:
        total = sum(
            max(network.num_addresses - (2 if network.prefix_len < 31 else 0), 0)
            for network in self.networks
        )
        return total - len(self._reserved)

    def allocate(self) -> IPv4Address:
        if self._released:
            self.allocated += 1
            return self._released.pop()
        try:
            address = next(self._iterator)
        except StopIteration:
            raise AddressPoolExhausted(
                f"pool over {[str(n) for n in self.networks]} exhausted"
            ) from None
        self.allocated += 1
        return address

    def release(self, address: IPv4Address) -> None:
        self.allocated -= 1
        self._released.append(address)


class NatTable:
    """1:1 VLAN-keyed NAT between internal and global addresses.

    The VLAN ID identifies the inmate, so the binding is
    ``vlan -> (internal address, global address)``.  Ports are
    preserved (1:1 NAT), which keeps flow bookkeeping simple and
    matches how GQ gives each inmate a stable, dedicated global
    address (§6.7 — a scarce resource worth protecting from
    blacklisting).
    """

    def __init__(self, internal_pool: AddressPool,
                 global_pool: AddressPool,
                 inbound_mode: InboundMode = InboundMode.FORWARD,
                 telemetry=None, subfarm: str = "") -> None:
        self.internal_pool = internal_pool
        self.global_pool = global_pool
        self.inbound_mode = inbound_mode
        self._internal_by_vlan: Dict[int, IPv4Address] = {}
        self._global_by_vlan: Dict[int, IPv4Address] = {}
        self._vlan_by_internal: Dict[IPv4Address, int] = {}
        self._vlan_by_global: Dict[IPv4Address, int] = {}
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_binds = telemetry.counter(
            "gw.nat.binds", "Inmate address bindings created"
        ).bind(subfarm=subfarm)
        self._g_bindings = telemetry.gauge(
            "gw.nat.bindings", "Live VLAN->address bindings"
        ).bind(subfarm=subfarm)
        self._g_pool_used = telemetry.gauge(
            "gw.nat.pool.used", "Global addresses allocated"
        ).bind(subfarm=subfarm)
        self._g_pool_capacity = telemetry.gauge(
            "gw.nat.pool.capacity", "Global addresses in the pool"
        ).bind(subfarm=subfarm)

    def _update_pool_gauges(self) -> None:
        self._g_bindings.set(len(self._internal_by_vlan))
        self._g_pool_used.set(self.global_pool.allocated)
        self._g_pool_capacity.set(self.global_pool.capacity)

    # ------------------------------------------------------------------
    def bind(self, vlan: int) -> IPv4Address:
        """Assign (or return) the internal address for an inmate."""
        if vlan in self._internal_by_vlan:
            return self._internal_by_vlan[vlan]
        internal = self.internal_pool.allocate()
        global_ip = self.global_pool.allocate()
        self._internal_by_vlan[vlan] = internal
        self._global_by_vlan[vlan] = global_ip
        self._vlan_by_internal[internal] = vlan
        self._vlan_by_global[global_ip] = vlan
        self._m_binds.inc()
        self._update_pool_gauges()
        return internal

    def unbind(self, vlan: int) -> None:
        internal = self._internal_by_vlan.pop(vlan, None)
        global_ip = self._global_by_vlan.pop(vlan, None)
        if internal is not None:
            del self._vlan_by_internal[internal]
            self.internal_pool.release(internal)
        if global_ip is not None:
            del self._vlan_by_global[global_ip]
            self.global_pool.release(global_ip)
        self._update_pool_gauges()

    # ------------------------------------------------------------------
    def internal_for(self, vlan: int) -> Optional[IPv4Address]:
        return self._internal_by_vlan.get(vlan)

    def global_for(self, vlan: int) -> Optional[IPv4Address]:
        return self._global_by_vlan.get(vlan)

    def vlan_for_internal(self, address: IPv4Address) -> Optional[int]:
        return self._vlan_by_internal.get(address)

    def vlan_for_global(self, address: IPv4Address) -> Optional[int]:
        return self._vlan_by_global.get(address)

    def to_global(self, internal: IPv4Address) -> Optional[IPv4Address]:
        vlan = self._vlan_by_internal.get(internal)
        return self._global_by_vlan.get(vlan) if vlan is not None else None

    def to_internal(self, global_ip: IPv4Address) -> Optional[IPv4Address]:
        vlan = self._vlan_by_global.get(global_ip)
        return self._internal_by_vlan.get(vlan) if vlan is not None else None

    def bindings(self) -> Dict[int, tuple]:
        return {
            vlan: (self._internal_by_vlan[vlan], self._global_by_vlan[vlan])
            for vlan in self._internal_by_vlan
        }
