"""The gateway malice barrier: fail-closed handling of hostile bytes.

GQ's inmates run live malware, so every byte the gateway parses is
adversarial.  The containment guarantee is only as strong as the
weakest parser on the path: an exception unwinding out of a frame
handler would take the event loop — and with it the whole farm — down,
which is the exact opposite of fail-closed containment.

:class:`MaliceBarrier` is the single choke point where
:class:`~repro.net.errors.ParseError` stops.  The router and the
containment server wrap their ingest paths in it; when a parser rejects
input the barrier

* **drops and counts** the frame per (vlan, protocol) — mirrored into
  telemetry as ``barrier.parse_errors`` cells, bound lazily so an
  all-well-formed run stays byte-identical to a build without the
  barrier;
* **quarantines** the offending bytes verbatim in a bounded ring,
  exportable to a real pcap for offline analysis;
* applies the :class:`~repro.farm.FarmConfig` policy — ``isolate``
  aborts the offending flow (when one is identifiable), ``fail-stop``
  freezes the whole subfarm's ingest, ``count`` only records.

Any exception that is *not* a ParseError still propagates: that is by
definition a parser bug, and exactly what :mod:`repro.fuzz` hunts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.capture import write_pcap
from repro.net.errors import ParseError

#: Accepted FarmConfig.malice_policy values.
POLICIES = ("isolate", "fail-stop", "count")

#: Default bound on the quarantine ring.
DEFAULT_QUARANTINE_MAX = 1024


class _RawFrame:
    """Duck-typed stand-in for EthernetFrame in quarantine records.

    Offending bytes often failed Ethernet parsing, so there is no frame
    object to hold; this wrapper preserves them verbatim while giving
    :func:`repro.net.capture.write_pcap` the ``to_bytes()`` it needs.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def to_bytes(self) -> bytes:
        return self.data

    def __repr__(self) -> str:
        return f"<RawFrame {len(self.data)} bytes>"


class QuarantineEntry:
    """One quarantined input: the bytes, when, and why."""

    __slots__ = ("timestamp", "frame", "point", "vlan", "protocol", "reason")

    def __init__(self, timestamp: float, data: bytes, vlan: int,
                 protocol: str, reason: str) -> None:
        self.timestamp = timestamp
        self.frame = _RawFrame(data)
        self.point = "quarantine"
        self.vlan = vlan
        self.protocol = protocol
        self.reason = reason

    def __repr__(self) -> str:
        return (f"<Quarantine t={self.timestamp:.6f} vlan={self.vlan} "
                f"{self.protocol}: {self.reason}>")


class MaliceBarrier:
    """Catches ParseError at gateway/CS ingest; never lets it unwind.

    One barrier per subfarm, shared by the router and its containment
    server(s), so the per-(vlan, protocol) counters and the quarantine
    tell one coherent story per subfarm.
    """

    def __init__(self, sim, name: str, telemetry=None,
                 policy: str = "isolate",
                 quarantine_max_frames: int = DEFAULT_QUARANTINE_MAX) -> None:
        if policy not in POLICIES:
            raise ValueError(f"malice policy must be one of {POLICIES}, "
                             f"got {policy!r}")
        self.sim = sim
        self.name = name
        self.telemetry = telemetry
        # Decision journal (NULL_JOURNAL unless the farm attached one
        # before constructing the subfarm).
        self.journal = sim.journal
        self.policy = policy
        self.quarantine_max_frames = quarantine_max_frames

        #: (vlan, protocol) -> dropped-frame count.  vlan 0 means "not
        #: attributable to a VLAN" (e.g. CS stream bytes, upstream).
        self.counts: Dict[Tuple[int, str], int] = {}
        self.parse_errors = 0
        self.isolated_flows = 0
        self.failstop_drops = 0
        self.fail_stopped = False
        self.fail_stopped_at: Optional[float] = None
        self.quarantine: List[QuarantineEntry] = []
        self.quarantine_rotated = 0

        # Telemetry cells bound lazily per (vlan, protocol): a clean
        # run binds nothing, so snapshots stay byte-identical.
        self._metric = None
        self._cells: Dict[Tuple[int, str], object] = {}

    # ------------------------------------------------------------------
    def record(self, error: ParseError, vlan: Optional[int] = None,
               data: Optional[bytes] = None, frame=None) -> str:
        """Account for one rejected input; returns the policy to apply.

        ``data`` wins over ``frame`` for quarantine bytes; a frame that
        parsed far enough to exist is serialized back to wire form.
        """
        protocol = getattr(error, "protocol", None) or "unknown"
        vkey = vlan if vlan is not None else 0
        key = (vkey, protocol)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.parse_errors += 1

        if self.telemetry is not None:
            cell = self._cells.get(key)
            if cell is None:
                if self._metric is None:
                    self._metric = self.telemetry.counter(
                        "barrier.parse_errors",
                        "Frames dropped by the malice barrier, "
                        "by VLAN and protocol")
                cell = self._metric.bind(subfarm=self.name, vlan=str(vkey),
                                         protocol=protocol)
                self._cells[key] = cell
            cell.inc()

        raw = data
        if raw is None and frame is not None:
            try:
                raw = frame.to_bytes()
            except Exception:
                raw = b""
        frame_index = None
        if raw is not None:
            if len(self.quarantine) >= self.quarantine_max_frames:
                del self.quarantine[0]
                self.quarantine_rotated += 1
            self.quarantine.append(QuarantineEntry(
                self.sim.now, bytes(raw), vkey, protocol,
                getattr(error, "reason", str(error))))
            # Absolute index of this entry in the quarantine pcap
            # stream (survives ring rotation) — the journal cross-
            # references it so the audit trail points at exact bytes.
            frame_index = self.quarantine_rotated + len(self.quarantine) - 1

        if self.journal.enabled:
            self.journal.record(
                "barrier.quarantine", vlan=vkey, subfarm=self.name,
                protocol=protocol,
                reason=getattr(error, "reason", str(error)),
                policy=self.policy, frame_index=frame_index)

        if self.policy == "fail-stop" and not self.fail_stopped:
            self.fail_stopped = True
            self.fail_stopped_at = self.sim.now
            if self.journal.enabled:
                self.journal.record("barrier.failstop", vlan=vkey,
                                    subfarm=self.name, protocol=protocol)
        return self.policy

    def note_failstop_drop(self) -> None:
        """A well-formed frame refused because the subfarm fail-stopped."""
        self.failstop_drops += 1

    def note_isolation(self) -> None:
        """The router isolated (aborted) an offending flow."""
        self.isolated_flows += 1

    # ------------------------------------------------------------------
    def export_quarantine(self, path: str) -> int:
        """Write the quarantined bytes as a pcap; returns frames written."""
        return write_pcap(path, self.quarantine)

    def summary(self) -> dict:
        """Report/telemetry summary (sorted, JSON-safe)."""
        return {
            "policy": self.policy,
            "parse_errors": self.parse_errors,
            "isolated_flows": self.isolated_flows,
            "fail_stopped": self.fail_stopped,
            "failstop_drops": self.failstop_drops,
            "quarantined": len(self.quarantine) + self.quarantine_rotated,
            "by_vlan_protocol": {
                f"vlan{vlan}/{protocol}": count
                for (vlan, protocol), count in sorted(self.counts.items())
            },
        }

    def __repr__(self) -> str:
        return (f"<MaliceBarrier {self.name} policy={self.policy} "
                f"errors={self.parse_errors}>")


__all__ = ["MaliceBarrier", "QuarantineEntry", "POLICIES",
           "DEFAULT_QUARANTINE_MAX"]
