"""The safety filter (§5.1).

A last line of defense that is deliberately independent of containment
policy: "a safety filter ensures that the rate of connections across
destinations and to a given destination never exceeds configurable
thresholds."  Even a buggy FORWARD-happy policy cannot turn an inmate
into a usable flooder.

Implementation: sliding-window counters per inmate (across all
destinations) and per (inmate, destination) pair.  Flows beyond a
threshold are refused at creation and counted as alerts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.net.addresses import IPv4Address
from repro.obs.telemetry import NULL_TELEMETRY


class SafetyAlert:
    """One refused flow, kept for reporting."""

    __slots__ = ("timestamp", "vlan", "destination", "reason")

    def __init__(self, timestamp: float, vlan: int,
                 destination: IPv4Address, reason: str) -> None:
        self.timestamp = timestamp
        self.vlan = vlan
        self.destination = destination
        self.reason = reason

    def __repr__(self) -> str:
        return (
            f"<SafetyAlert t={self.timestamp:.1f} vlan={self.vlan} "
            f"dst={self.destination} {self.reason}>"
        )


class SafetyFilter:
    """Sliding-window connection-rate limiter.

    Parameters
    ----------
    max_flows_per_window:
        Budget of new flows per inmate across all destinations.
    max_flows_per_destination:
        Budget of new flows per (inmate, destination) pair.
    window:
        Window length in seconds for both budgets.
    """

    def __init__(
        self,
        max_flows_per_window: int = 500,
        max_flows_per_destination: int = 100,
        window: float = 60.0,
        telemetry=None,
        subfarm: str = "",
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.max_flows_per_window = max_flows_per_window
        self.max_flows_per_destination = max_flows_per_destination
        self.window = window
        self._per_inmate: Dict[int, Deque[float]] = {}
        self._per_pair: Dict[Tuple[int, IPv4Address], Deque[float]] = {}
        self.alerts: List[SafetyAlert] = []
        self.flows_admitted = 0
        self.flows_refused = 0
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_admitted = self.telemetry.counter(
            "gw.safety.admitted", "Flows the safety filter admitted"
        ).bind(subfarm=subfarm)
        trips = self.telemetry.counter(
            "gw.safety.trips", "Flows the safety filter refused, by reason")
        self._m_trip_inmate = trips.bind(subfarm=subfarm, reason="per-inmate")
        self._m_trip_pair = trips.bind(subfarm=subfarm,
                                       reason="per-destination")

    def _prune(self, history: Deque[float], now: float) -> None:
        horizon = now - self.window
        while history and history[0] <= horizon:
            history.popleft()

    def admit(self, now: float, vlan: int, destination: IPv4Address) -> bool:
        """Account a new flow; False means the flow must be refused."""
        inmate_history = self._per_inmate.setdefault(vlan, deque())
        pair_key = (vlan, destination)
        pair_history = self._per_pair.setdefault(pair_key, deque())
        self._prune(inmate_history, now)
        self._prune(pair_history, now)

        if len(inmate_history) >= self.max_flows_per_window:
            self._m_trip_inmate.inc()
            self._refuse(now, vlan, destination, "per-inmate flow rate")
            return False
        if len(pair_history) >= self.max_flows_per_destination:
            self._m_trip_pair.inc()
            self._refuse(now, vlan, destination, "per-destination flow rate")
            return False

        inmate_history.append(now)
        pair_history.append(now)
        self.flows_admitted += 1
        self._m_admitted.inc()
        return True

    def _refuse(self, now: float, vlan: int, destination: IPv4Address,
                reason: str) -> None:
        self.flows_refused += 1
        self.alerts.append(SafetyAlert(now, vlan, destination, reason))
        if self.telemetry.enabled:
            self.telemetry.publish("safety.trip", vlan=vlan,
                                   destination=str(destination),
                                   reason=reason)

    def bounds(self) -> dict:
        """The filter's static rate envelope, for isolation
        certificates: whatever the policy plane grants, no inmate can
        exceed these new-flow budgets."""
        return {
            "max_flows_per_window": self.max_flows_per_window,
            "max_flows_per_destination": self.max_flows_per_destination,
            "window": self.window,
        }

    def reset_inmate(self, vlan: int) -> None:
        """Forget an inmate's history (it was reverted/terminated)."""
        self._per_inmate.pop(vlan, None)
        for key in [k for k in self._per_pair if k[0] == vlan]:
            del self._per_pair[key]
