"""The per-subfarm packet router (§5.1, §6.1).

One router instance handles a disjoint set of VLAN IDs — a *subfarm*
(Figure 3).  The router is pure mechanism: it couples every flow to
the subfarm's containment server through the shim protocol, then
enforces whatever verdict comes back.  Policy lives entirely in the
containment server.

TCP containment walk-through (Figure 5, REWRITE case):

1. Inmate SYN to target ``T`` arrives on the trunk.  The router
   creates a :class:`~repro.gateway.flows.FlowRecord`, rewrites the
   destination to the containment server's fixed address/port (and the
   source port to a per-flow mux port so concurrent flows cannot
   collide on the server), and forwards it.  The handshake therefore
   physically completes between the inmate's stack and the containment
   server's — with the router translating addresses so the inmate
   believes it is talking to ``T``.
2. On the inmate's final ACK the router injects the 24-byte request
   shim into the stream (``SEQ += |REQ SHIM|`` for everything after).
3. The containment server replies with the response shim, which the
   router strips from the return stream (``SEQ -= |RSP SHIM|``),
   learning the verdict.
4. REWRITE flows stay coupled to the server (content control); the
   server may open an onward connection through its nonce port, which
   the router NATs to the inmate's global address so the real target
   sees the inmate.  All other verdicts are *handed off*: the router
   replays the original SYN (plus any buffered payload) toward the
   enforced destination, aborts the containment-server leg, and
   translates sequence numbers between the two server ISNs for the
   rest of the flow's life.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.core.shim import (
    RequestShim,
    ResponseShim,
    ShimError,
    peek_length,
)
from repro.core.verdicts import ContainmentDecision, Verdict
from repro.gateway.barrier import MaliceBarrier
from repro.gateway.bridge import LearningBridge
from repro.gateway.flows import (
    FlowLogEntry,
    FlowPhase,
    FlowRecord,
    TokenBucket,
)
from repro.gateway.flowtable import (
    ACT_DROP_TCP,
    ACT_DROP_UDP,
    ACT_TCP_C2CS,
    ACT_TCP_C2D,
    ACT_TCP_CS2C,
    ACT_TCP_D2C,
    ACT_UDP_C2CS,
    ACT_UDP_C2D,
    ACT_UDP_D2C,
    EMIT_CS,
    EMIT_SERVICE,
    EMIT_UPSTREAM,
    EMIT_VLAN,
    FlowEntry,
    FlowTable,
    execute_run,
)
from repro.net.wirebatch import ORIGIN_UPSTREAM
from repro.gateway.nat import InboundMode, NatTable
from repro.gateway.safety import SafetyFilter
from repro.net.addresses import IPv4Address
from repro.net.capture import PacketTrace
from repro.net.errors import ParseError
from repro.net.flow import FiveTuple
from repro.obs.journal import ROOT as JOURNAL_ROOT
from repro.net.packet import (
    ACK,
    EthernetFrame,
    FIN,
    IPv4Packet,
    PROTO_TCP,
    PROTO_UDP,
    PSH,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.net.tcp import seq_add, seq_sub
from repro.services.dhcp import DhcpMessage, DHCP_SERVER_PORT, DHCP_CLIENT_PORT
from repro.sim.engine import Simulator

# Emission callbacks supplied by the owning Gateway.
EmitToVlan = Callable[[int, IPv4Packet], None]
EmitToService = Callable[[IPv4Address, IPv4Packet], None]
EmitUpstream = Callable[[IPv4Packet], None]


class SubfarmRouter:
    """Packet forwarding plus containment mechanism for one subfarm."""

    MUX_PORT_BASE = 20000
    NONCE_PORT_BASE = 40000

    def __init__(
        self,
        sim: Simulator,
        name: str,
        vlan_ids: Set[int],
        nat: NatTable,
        safety: SafetyFilter,
        cs_ip: IPv4Address,
        cs_tcp_port: int,
        cs_udp_port: int,
        gateway_ip: IPv4Address,
        dns_ip: Optional[IPv4Address],
        emit_to_vlan: EmitToVlan,
        emit_to_service: EmitToService,
        emit_upstream: EmitUpstream,
        control_pool=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.vlan_ids = set(vlan_ids)
        self.nat = nat
        self.safety = safety
        self.cs_ip = IPv4Address(cs_ip)
        # Containment-server cluster support (§7.2): additional
        # servers registered via add_containment_server(); selection
        # is sticky per inmate (same VLAN -> same server).
        self.cs_ips = {self.cs_ip}
        self._cs_list = [self.cs_ip]
        self.cs_tcp_port = cs_tcp_port
        self.cs_udp_port = cs_udp_port
        self.gateway_ip = IPv4Address(gateway_ip)
        self.dns_ip = IPv4Address(dns_ip) if dns_ip is not None else None
        self._emit_to_vlan = emit_to_vlan
        self._emit_to_service = emit_to_service
        self._emit_upstream = emit_upstream
        self.control_pool = control_pool

        # Fault-injection and resilience seams.  Both stay None unless
        # the farm installs them (non-empty FaultPlan / configured
        # verdict deadline), in which case every packet crossing the
        # shim link consults the fault view and every SHIM-phase flow
        # runs under a verdict deadline.  With both None the packet
        # path is byte-identical to a build without these layers.
        self.shim_link_faults = None
        self.resilience = None

        # The malice barrier is always on: with no hostile input it
        # costs one attribute read per ingest (its try/except is free
        # when nothing raises, and its telemetry cells bind lazily), so
        # a clean run stays byte-identical to a build without it.
        self.barrier = MaliceBarrier(sim, name, telemetry=sim.telemetry)

        self.telemetry = sim.telemetry
        # Decision journal (repro.obs.journal): NULL_JOURNAL unless the
        # farm attached a live one before building this router.  All
        # journal call sites are flow-level (never per-packet) and
        # guarded on .enabled, so a disabled journal costs one
        # attribute read on the slow path only.
        self.journal = sim.journal
        self.bridge = LearningBridge(telemetry=self.telemetry, subfarm=name)
        self.trace = PacketTrace(f"{name}-inmate-side")

        # Infra services reachable without containment (the restricted
        # broadcast domain of §5.3) plus all registered service hosts.
        self.trusted_ips: Set[IPv4Address] = set()
        self.service_ips: Set[IPv4Address] = set()
        if self.dns_ip is not None:
            self.trusted_ips.add(self.dns_ip)

        self._flows: List[FlowRecord] = []
        self._index: Dict[FiveTuple, FlowRecord] = {}
        self._by_mux: Dict[int, FlowRecord] = {}
        self._by_nonce: Dict[int, FlowRecord] = {}
        self._next_mux = self.MUX_PORT_BASE
        self._next_nonce = self.NONCE_PORT_BASE

        # Established-flow fast path (the compiled forwarding path of
        # §4), realised as a match-action flow table: post-verdict
        # flows get pure-data FlowEntry rules bound to the directed
        # tuples their packets arrive on, so the steady state pays one
        # dict hit and one executor call instead of _dispatch_known's
        # branch tree.  Toggleable for A/B benchmarking.
        self.fastpath_enabled = True
        self.flowtable = FlowTable(name, telemetry=self.telemetry)
        # Alias of the table's entry dict, keyed by int-tuple (see
        # _fp_key), not FiveTuple: the per-packet probe must not pay
        # Python-level __hash__/__eq__ or an extra attribute hop.
        self._fastpath: Dict[tuple, FlowEntry] = self.flowtable.entries
        # Entry aging on the virtual clock (None = no aging, matching
        # the pre-table fast path): consulted at install time, enforced
        # lazily at probe time and eagerly by the housekeeping sweep.
        self.flowtable_idle_timeout: Optional[float] = None
        self.flowtable_hard_timeout: Optional[float] = None

        # Per-service NAT for outbound service traffic (control /24).
        self._service_nat: Dict[IPv4Address, IPv4Address] = {}
        self._service_nat_rev: Dict[IPv4Address, IPv4Address] = {}

        # Flow-table housekeeping: mux/nonce ports and index entries of
        # idle flows are reclaimed periodically so day-scale runs never
        # exhaust the port spaces.  The sweeper arms itself while flows
        # exist and goes quiet with them (keeping the event queue
        # drainable).
        self.housekeeping_interval = 300.0
        self.flow_idle_timeout = 600.0
        self._housekeeping_armed = False

        self.flow_log: List[FlowLogEntry] = []
        self.counters = {
            "flows_created": 0,
            "flows_refused": 0,
            "shims_injected": 0,
            "shims_stripped": 0,
            "handoffs": 0,
            "packets_relayed": 0,
            "dhcp_leases": 0,
        }

        # Telemetry: bound cells mirroring the counters dict, the
        # per-verdict flow counter (bound lazily — label set depends on
        # the decision), the shim round-trip histogram, and per-flow
        # trace state keyed by mux port (cleaned up in _evict).
        tel = self.telemetry
        self._m_flows_created = tel.counter(
            "router.flows.created", "Flows entering containment"
        ).bind(subfarm=name)
        self._m_flows_refused = tel.counter(
            "router.flows.refused", "Flows refused by the safety filter"
        ).bind(subfarm=name)
        self._m_shims_injected = tel.counter(
            "router.shims.injected", "Request shims sent to the CS"
        ).bind(subfarm=name)
        self._m_shims_stripped = tel.counter(
            "router.shims.stripped", "Response shims parsed and removed"
        ).bind(subfarm=name)
        self._m_handoffs = tel.counter(
            "router.handoffs", "Flows handed off to their destination"
        ).bind(subfarm=name)
        self._m_packets = tel.counter(
            "router.packets.relayed", "Packets relayed through the router"
        ).bind(subfarm=name)
        self._m_dhcp = tel.counter(
            "service.dhcp.leases", "DHCP leases acknowledged"
        ).bind(subfarm=name)
        self._m_verdicts = tel.counter(
            "router.flows.verdict",
            "Containment verdicts applied, by verdict and protocol")
        # Per-(vlan, verdict, proto) bound cells, resolved lazily so the
        # label-sort-and-lookup cost is paid once per combination rather
        # than on every verdict.
        self._verdict_cells: Dict[tuple, object] = {}
        self._h_shim_rtt = tel.histogram(
            "router.shim.rtt",
            "Virtual seconds from flow creation to verdict"
        ).bind(subfarm=name)
        self._shim_spans: Dict[int, object] = {}
        self._proxy_spans: Dict[int, object] = {}
        self._trace_ids: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def flows(self) -> List[FlowRecord]:
        return list(self._flows)

    def active_flow_count(self) -> int:
        return sum(
            1 for f in self._flows
            if f.phase in (FlowPhase.SHIM, FlowPhase.HANDOFF, FlowPhase.ENFORCED)
        )

    def register_service(self, ip: IPv4Address, trusted: bool = False) -> None:
        ip = IPv4Address(ip)
        self.service_ips.add(ip)
        if trusted:
            self.trusted_ips.add(ip)

    def add_containment_server(self, ip: IPv4Address) -> None:
        """Register an additional containment server (cluster mode)."""
        ip = IPv4Address(ip)
        if ip not in self.cs_ips:
            self.cs_ips.add(ip)
            self._cs_list.append(ip)

    def _select_cs(self, vlan: int) -> IPv4Address:
        """Sticky selection: the same server always handles the same
        inmate (§7.2's suggested policy)."""
        return self._cs_list[vlan % len(self._cs_list)]

    def _emit_to_cs(self, cs_ip: IPv4Address, packet: IPv4Packet) -> None:
        """Emit toward a containment server, through the shim-link
        fault view when one is installed."""
        faults = self.shim_link_faults
        if faults is None:
            self._emit_to_service(cs_ip, packet)
        else:
            faults.send(cs_ip, packet, self._emit_to_service)

    # ------------------------------------------------------------------
    # Allocation helpers
    # ------------------------------------------------------------------
    def _allocate_mux(self) -> int:
        for _ in range(20000):
            port = self._next_mux
            self._next_mux += 1
            if self._next_mux >= self.NONCE_PORT_BASE:
                self._next_mux = self.MUX_PORT_BASE
            if port not in self._by_mux:
                return port
        raise RuntimeError("mux port space exhausted")

    def _allocate_nonce(self) -> int:
        for _ in range(20000):
            port = self._next_nonce
            self._next_nonce += 1
            if self._next_nonce >= 60000:
                self._next_nonce = self.NONCE_PORT_BASE
            if port not in self._by_nonce:
                return port
        raise RuntimeError("nonce port space exhausted")

    # ------------------------------------------------------------------
    # Entry point: frames from inmates (trunk, tagged)
    # ------------------------------------------------------------------
    def inmate_frame(self, frame, vlan: int) -> None:
        barrier = self.barrier
        if barrier.fail_stopped:
            barrier.note_failstop_drop()
            return
        try:
            self._inmate_frame_body(frame, vlan)
        except ParseError as error:
            self._on_parse_error(error, vlan=vlan, frame=frame)

    def ingest_wire(self, vlan: int, data: bytes) -> None:
        """Raw-bytes trunk ingest: one wire-format Ethernet frame.

        This is the hostile surface :mod:`repro.fuzz` drives — inmates
        emit arbitrary bytes, so parse failures here are routine, not
        exceptional.  Any :class:`ParseError` lands in the barrier;
        anything else that escapes is a parser bug.
        """
        barrier = self.barrier
        if barrier.fail_stopped:
            barrier.note_failstop_drop()
            return
        try:
            frame = EthernetFrame.from_bytes(data)
        except ParseError as error:
            self._on_parse_error(error, vlan=vlan, data=data)
            return
        if frame.vlan is not None:
            vlan = frame.vlan
        try:
            self._inmate_frame_body(frame, vlan)
        except ParseError as error:
            self._on_parse_error(error, vlan=vlan, data=data)

    def _inmate_preamble(self, frame, vlan: int) -> Optional[IPv4Packet]:
        """Per-frame admission work shared by the scalar and batched
        trunk paths: trace capture, bridge learning, and the traffic
        classes that never reach containment (DHCP, gateway-addressed,
        broadcast, trusted services).  Returns the packet when it
        should continue to the flow table / slow path, None when the
        frame was fully handled here."""
        self.trace.capture(self.sim.now, frame, point="inmate")
        packet = frame.payload
        if not isinstance(packet, IPv4Packet):
            return None
        self.bridge.learn(vlan, frame.src, self.sim.now,
                          ip=packet.src if packet.src.value else None)

        if packet.proto == PROTO_UDP and packet.udp.dport == DHCP_SERVER_PORT:
            self._handle_dhcp(vlan, frame, packet)
            return None
        if packet.dst == self.gateway_ip:
            return None  # traffic to the gateway itself (nothing listens)
        if packet.dst.value == 0xFFFFFFFF:
            return None  # other broadcast boot chatter
        if packet.dst in self.trusted_ips:
            # Restricted broadcast domain: DHCP/DNS-style services are
            # reachable without containment.
            self._emit_to_service(packet.dst, packet)
            return None
        return packet

    def _inmate_frame_body(self, frame, vlan: int) -> None:
        packet = self._inmate_preamble(frame, vlan)
        if packet is None:
            return
        proto = packet.proto
        if proto == PROTO_TCP or proto == PROTO_UDP:
            transport = packet.payload
            entry = self._fastpath.get(
                (packet.src.value, transport.sport,
                 packet.dst.value, transport.dport, proto))
            if entry is not None:
                now = self.sim.now
                if now < entry.expires_at and (
                        entry.idle_timeout is None
                        or now - entry.record.last_activity
                        < entry.idle_timeout):
                    entry.hits += 1
                    self.flowtable.hits += 1
                    entry.run(self, entry, packet)
                    return
                self._fastpath_timeout(entry, now)
            self.flowtable.misses += 1
            key = FiveTuple(packet.src, transport.sport,
                            packet.dst, transport.dport, proto)
            record = self._index.get(key)
            if record is not None:
                self._dispatch_known(record, packet, key)
                return
        self._new_flow(packet, vlan=vlan, inmate_is_originator=True)

    def _inmate_packet_or_entry(self, packet: IPv4Packet,
                                vlan: int) -> Optional[FlowEntry]:
        """Probe the flow table for an admitted inmate packet.  A live
        hit returns the entry (the caller starts or extends a batched
        run; hits are counted at flush time); otherwise the packet is
        fully handled on the slow path here and None is returned."""
        proto = packet.proto
        if proto == PROTO_TCP or proto == PROTO_UDP:
            transport = packet.payload
            entry = self._fastpath.get(
                (packet.src.value, transport.sport,
                 packet.dst.value, transport.dport, proto))
            if entry is not None:
                now = self.sim.now
                if now < entry.expires_at and (
                        entry.idle_timeout is None
                        or now - entry.record.last_activity
                        < entry.idle_timeout):
                    return entry
                self._fastpath_timeout(entry, now)
            self.flowtable.misses += 1
            key = FiveTuple(packet.src, transport.sport,
                            packet.dst, transport.dport, proto)
            record = self._index.get(key)
            if record is not None:
                self._dispatch_known(record, packet, key)
                return None
        self._new_flow(packet, vlan=vlan, inmate_is_originator=True)
        return None

    def _flush_entry_run(self, entry: FlowEntry, packets: list) -> None:
        count = len(packets)
        entry.hits += count
        self.flowtable.hits += count
        if count == 1:
            entry.run(self, entry, packets[0])
        else:
            execute_run(self, entry, packets)

    def inmate_frame_batch(self, items) -> None:
        """Trunk ingest for a coalesced batch of ``(frame, vlan)``
        pairs delivered at the same virtual instant.

        Per-frame admission (trace capture, bridge learning, DHCP,
        trusted-service delivery, parse errors) runs scalar and in
        order; consecutive packets matching the same live flow-table
        entry execute as one vectorized run.  A pending run is always
        flushed before any frame that does not extend it, so every
        emission happens in exactly the scalar order and the output is
        byte-identical to per-frame ingestion.
        """
        barrier = self.barrier
        run_entry = None
        run_packets = None
        for frame, vlan in items:
            if run_entry is not None:
                payload = frame.payload
                if (not barrier.fail_stopped
                        and isinstance(payload, IPv4Packet)
                        and (payload.proto == PROTO_TCP
                             or payload.proto == PROTO_UDP)):
                    transport = payload.payload
                    if (payload.src.value, transport.sport,
                            payload.dst.value, transport.dport,
                            payload.proto) == run_entry.key:
                        # Extends the current run.  A key can only be
                        # live in the table if its packets clear the
                        # preamble's special cases, so only the
                        # preamble's observation side runs here.
                        self.trace.capture(self.sim.now, frame,
                                           point="inmate")
                        self.bridge.learn(
                            vlan, frame.src, self.sim.now,
                            ip=(payload.src if payload.src.value
                                else None))
                        run_packets.append(payload)
                        continue
                self._flush_entry_run(run_entry, run_packets)
                run_entry = None
            if barrier.fail_stopped:
                barrier.note_failstop_drop()
                continue
            try:
                packet = self._inmate_preamble(frame, vlan)
                if packet is None:
                    continue
                entry = self._inmate_packet_or_entry(packet, vlan)
            except ParseError as error:
                self._on_parse_error(error, vlan=vlan, frame=frame)
                continue
            if entry is not None:
                run_entry = entry
                run_packets = [packet]
        if run_entry is not None:
            self._flush_entry_run(run_entry, run_packets)

    # ------------------------------------------------------------------
    # Struct-of-arrays batched datapath
    # ------------------------------------------------------------------
    def ingest_batch(self, batch, out) -> None:
        """Run a :class:`repro.net.wirebatch.WireBatch` through the
        flow table, vectorized per same-key run, collecting all output
        into ``out`` (a :class:`repro.net.wirebatch.BatchOutput`).

        This is the raw datapath surface: rows are transport packets
        already past frame admission (no trace capture or bridge
        learning happens here).  Runs whose entry declines batching —
        state-changing flags, shaped emission, an active shim-link
        fault view — and table-miss rows are materialized back into
        packet objects and take the ordinary scalar paths, with their
        emissions captured into ``out`` so row order across the whole
        batch is preserved exactly.  Inmate-origin rows must carry
        their vlan; upstream rows fall back to _upstream_packet_body.
        """
        barrier = self.barrier
        if barrier.fail_stopped:
            for _ in range(len(batch)):
                barrier.note_failstop_drop()
            return
        table = self.flowtable
        entries = table.entries
        keys = batch.keys
        n = len(keys)
        saved = (self._emit_to_vlan, self._emit_to_service,
                 self._emit_upstream)
        self._emit_to_vlan = (lambda vlan, p:
                              out.append_packet(EMIT_VLAN, vlan, p))
        self._emit_to_service = (lambda ip, p:
                                 out.append_packet(EMIT_SERVICE, ip, p))
        self._emit_upstream = (lambda p:
                               out.append_packet(EMIT_UPSTREAM, None, p))
        try:
            i = 0
            while i < n:
                key = keys[i]
                j = i + 1
                while j < n and keys[j] == key:
                    j += 1
                entry = entries.get(key)
                if entry is not None:
                    now = self.sim.now
                    if now < entry.expires_at and (
                            entry.idle_timeout is None
                            or now - entry.record.last_activity
                            < entry.idle_timeout):
                        count = j - i
                        entry.hits += count
                        table.hits += count
                        self._run_soa(entry, batch, i, j, out)
                        i = j
                        continue
                    self._fastpath_timeout(entry, now)
                for row in range(i, j):
                    self._ingest_row_slow(batch, row, entries, table)
                i = j
        finally:
            (self._emit_to_vlan, self._emit_to_service,
             self._emit_upstream) = saved

    def _ingest_row_slow(self, batch, row: int, entries, table) -> None:
        packet = batch.materialize(row)
        if batch.origin[row] == ORIGIN_UPSTREAM:
            self._upstream_packet_body(packet)  # probes internally
            return
        # Inmate-origin: an earlier row in this batch may have
        # (re-)installed a rule for this key, so probe again.
        entry = entries.get(batch.keys[row])
        if entry is not None:
            now = self.sim.now
            if now < entry.expires_at and (
                    entry.idle_timeout is None
                    or now - entry.record.last_activity
                    < entry.idle_timeout):
                entry.hits += 1
                table.hits += 1
                entry.run(self, entry, packet)
                return
            self._fastpath_timeout(entry, now)
        table.misses += 1
        transport = packet.payload
        key = FiveTuple(packet.src, transport.sport,
                        packet.dst, transport.dport, packet.proto)
        record = self._index.get(key)
        if record is not None:
            self._dispatch_known(record, packet, key)
            return
        self._new_flow(packet, vlan=batch.vlan[row],
                       inmate_is_originator=True)

    def _run_soa(self, entry: FlowEntry, batch, i: int, j: int,
                 out) -> None:
        """Apply one entry's action vectorized over rows [i, j) of a
        WireBatch, appending a single run to ``out``.  Runs the entry
        cannot batch degrade to per-row scalar execution (emissions
        still land in ``out`` via the swapped emit callbacks)."""
        kind = entry.kind
        record = entry.record
        flags_col = batch.flags
        scalar = (entry.shaped
                  or (entry.emit_code == EMIT_CS
                      and self.shim_link_faults is not None))
        if not scalar:
            if kind == ACT_TCP_C2D or kind == ACT_TCP_C2CS:
                scalar = any(flags_col[r] & 0x06 for r in range(i, j))
            elif kind == ACT_TCP_CS2C:
                scalar = any(flags_col[r] & RST for r in range(i, j))
            elif kind == ACT_DROP_TCP:
                scalar = any(flags_col[r] & SYN for r in range(i, j))
        if scalar:
            run = entry.run
            for row in range(i, j):
                run(self, entry, batch.materialize(row))
            return
        count = j - i
        if kind == ACT_DROP_TCP or kind == ACT_DROP_UDP:
            record.last_activity = self.sim.now
            return
        payloads = batch.pay_obj[i:j]
        nbytes = 0
        pay_len = batch.pay_len
        for r in range(i, j):
            nbytes += pay_len[r]
        counters = self.counters
        if kind <= ACT_TCP_CS2C:  # the four TCP translations
            seq_col = batch.seq
            ack_col = batch.ack
            sd = entry.seq_delta
            ad = entry.ack_delta
            mask = 0xFFFFFFFF
            seqs = ([(seq_col[r] + sd) & mask for r in range(i, j)]
                    if sd else list(seq_col[i:j]))
            if kind == ACT_TCP_C2CS:
                acks = [(ack_col[r] + ad) & mask
                        if flags_col[r] & ACK else 0
                        for r in range(i, j)]
            else:
                acks = [(ack_col[r] + ad) & mask
                        if flags_col[r] & ACK else ack_col[r]
                        for r in range(i, j)]
            if kind == ACT_TCP_C2D or kind == ACT_TCP_C2CS:
                record.last_activity = self.sim.now
                record.c2s_packets += count
                record.c2s_bytes += nbytes
                if kind == ACT_TCP_C2CS and any(
                        flags_col[r] & FIN for r in range(i, j)):
                    record.client_fin = True
            elif kind == ACT_TCP_D2C:
                record.last_activity = self.sim.now
                record.s2c_packets += count
                record.s2c_bytes += nbytes
            else:  # ACT_TCP_CS2C: no last_activity (slow-path parity)
                record.s2c_packets += count
                record.s2c_bytes += nbytes
            counters["packets_relayed"] += count
            self._m_packets.inc(count)
            out.append_run(entry.emit_code, entry.emit_arg, PROTO_TCP,
                           entry.src_ip, entry.dst_ip, entry.out_sport,
                           entry.out_dport, seqs, acks,
                           list(flags_col[i:j]), list(batch.window[i:j]),
                           payloads)
            return
        if kind == ACT_UDP_C2D:
            record.last_activity = self.sim.now
            record.c2s_packets += count
            record.c2s_bytes += nbytes
            counters["packets_relayed"] += count
            self._m_packets.inc(count)
        elif kind == ACT_UDP_D2C:
            record.last_activity = self.sim.now
            record.s2c_packets += count
            record.s2c_bytes += nbytes
        else:  # ACT_UDP_C2CS: shim prefix per datagram
            record.last_activity = self.sim.now
            record.c2s_packets += count
            record.c2s_bytes += nbytes
            counters["shims_injected"] += count
            self._m_shims_injected.inc(count)
            payloads = [entry.payload_prefix + p for p in payloads]
        out.append_run(entry.emit_code, entry.emit_arg, PROTO_UDP,
                       entry.src_ip, entry.dst_ip, entry.out_sport,
                       entry.out_dport, None, None, None, None, payloads)

    # ------------------------------------------------------------------
    # Entry point: frames from subfarm service hosts
    # ------------------------------------------------------------------
    def service_frame(self, frame) -> None:
        faults = self.shim_link_faults
        if faults is not None:
            packet = frame.payload
            if isinstance(packet, IPv4Packet) and packet.src in self.cs_ips:
                # Frames from a containment server cross the faulty
                # link too; delayed frames re-enter via the body so
                # they are not charged twice.
                if not faults.admit_return(frame, self._service_frame_body):
                    return
        self._service_frame_body(frame)

    def _service_frame_body(self, frame) -> None:
        barrier = self.barrier
        if barrier.fail_stopped:
            barrier.note_failstop_drop()
            return
        try:
            self._service_frame_inner(frame)
        except ParseError as error:
            self._on_parse_error(error, vlan=None, frame=frame)

    def _service_frame_inner(self, frame) -> None:
        packet = frame.payload
        if not isinstance(packet, IPv4Packet):
            return
        proto = packet.proto
        if proto == PROTO_TCP or proto == PROTO_UDP:
            transport = packet.payload
            entry = self._fastpath.get(
                (packet.src.value, transport.sport,
                 packet.dst.value, transport.dport, proto))
            if entry is not None:
                now = self.sim.now
                if now < entry.expires_at and (
                        entry.idle_timeout is None
                        or now - entry.record.last_activity
                        < entry.idle_timeout):
                    entry.hits += 1
                    self.flowtable.hits += 1
                    entry.run(self, entry, packet)
                    return
                self._fastpath_timeout(entry, now)
            self.flowtable.misses += 1
            key = FiveTuple(packet.src, transport.sport,
                            packet.dst, transport.dport, proto)
            record = self._index.get(key)
            if record is not None:
                self._dispatch_known(record, packet, key)
                return
        # Containment-server legs are matched by mux/nonce source port
        # when not in the alias index yet (first SYN of a nonce leg).
        if packet.src in self.cs_ips and packet.proto == PROTO_TCP:
            segment = packet.tcp
            if segment.sport == self.cs_tcp_port and segment.dport in self._by_mux:
                self._relay_server_packet(self._by_mux[segment.dport], packet, "cs")
                return
            if segment.sport in self._by_nonce:
                self._handle_nonce_leg(self._by_nonce[segment.sport], packet)
                return
        if packet.src in self.cs_ips and packet.proto == PROTO_UDP:
            datagram = packet.udp
            if datagram.sport == self.cs_udp_port and datagram.dport in self._by_mux:
                self._handle_cs_udp(self._by_mux[datagram.dport], packet)
                return
        # Stateless service traffic: replies to inmates, service-to-
        # service chatter, or service-originated outbound (DNS
        # recursion, banner grabs) which rides the control-network NAT.
        vlan = self.bridge.vlan_for_ip(packet.dst)
        if vlan is not None:
            self._emit_to_vlan(vlan, packet)
            return
        if packet.dst in self.service_ips:
            self._emit_to_service(packet.dst, packet)
            return
        self._service_outbound(packet)

    # ------------------------------------------------------------------
    # Entry point: packets from upstream addressed into this subfarm
    # ------------------------------------------------------------------
    def upstream_packet(self, packet: IPv4Packet) -> None:
        barrier = self.barrier
        if barrier.fail_stopped:
            barrier.note_failstop_drop()
            return
        try:
            self._upstream_packet_body(packet)
        except ParseError as error:
            self._on_parse_error(error, vlan=None, packet=packet)

    def _upstream_packet_body(self, packet: IPv4Packet) -> None:
        proto = packet.proto
        if proto == PROTO_TCP or proto == PROTO_UDP:
            transport = packet.payload
            entry = self._fastpath.get(
                (packet.src.value, transport.sport,
                 packet.dst.value, transport.dport, proto))
            if entry is not None:
                now = self.sim.now
                if now < entry.expires_at and (
                        entry.idle_timeout is None
                        or now - entry.record.last_activity
                        < entry.idle_timeout):
                    entry.hits += 1
                    self.flowtable.hits += 1
                    entry.run(self, entry, packet)
                    return
                self._fastpath_timeout(entry, now)
            self.flowtable.misses += 1
            key = FiveTuple(packet.src, transport.sport,
                            packet.dst, transport.dport, proto)
            record = self._index.get(key)
            if record is not None:
                self._dispatch_known(record, packet, key)
                return
        # Return traffic for service-originated outbound?
        internal = self._service_nat_rev.get(packet.dst)
        if internal is not None:
            packet.dst = internal
            self._emit_to_service(internal, packet)
            return
        # Unsolicited inbound toward an inmate's global address.
        vlan = self.nat.vlan_for_global(packet.dst)
        if vlan is None:
            return
        if self.nat.inbound_mode is InboundMode.DROP:
            return  # home-user NAT: nothing gets in
        if packet.proto == PROTO_TCP and (
            not packet.tcp.syn or packet.tcp.has_ack
        ):
            return  # stray non-SYN (or SYN-ACK) for an unknown flow
        self._new_flow(packet, vlan=vlan, inmate_is_originator=False)

    def owns_global(self, address: IPv4Address) -> bool:
        """Does this router answer for a global (upstream) address?"""
        return (
            self.nat.vlan_for_global(address) is not None
            or address in self._service_nat_rev
        )

    # ------------------------------------------------------------------
    # Malice barrier: hostile-input handling (never unwind the loop)
    # ------------------------------------------------------------------
    def _on_parse_error(self, error: ParseError, vlan: Optional[int] = None,
                        frame=None, data: Optional[bytes] = None,
                        packet: Optional[IPv4Packet] = None) -> None:
        """A parser rejected ingested bytes: drop, count, quarantine,
        and apply the configured policy."""
        wire = frame if frame is not None else packet
        policy = self.barrier.record(error, vlan=vlan, data=data, frame=wire)
        if policy != "isolate":
            return
        if packet is None and frame is not None:
            payload = getattr(frame, "payload", None)
            if isinstance(payload, IPv4Packet):
                packet = payload
        if packet is not None:
            self._isolate_offender(packet)

    def _isolate_offender(self, packet: IPv4Packet) -> None:
        """Abort the flow the offending bytes arrived on and drop its
        demux state, so nothing more from it reaches a parser."""
        if packet.proto not in (PROTO_TCP, PROTO_UDP):
            return
        record = self._index.get(FiveTuple.from_packet(packet))
        if record is None:
            return
        if self.journal.enabled:
            self.journal.record(
                "barrier.isolated",
                flow=self._trace_ids.get(record.mux_port),
                vlan=record.vlan)
        self._abort_flow(record, notify_client=False)
        self._evict(record)
        self.barrier.note_isolation()

    # ------------------------------------------------------------------
    # DHCP (the gateway assigns internal addresses itself — §5.3)
    # ------------------------------------------------------------------
    def _handle_dhcp(self, vlan: int, frame, packet: IPv4Packet) -> None:
        try:
            message = DhcpMessage.from_bytes(packet.udp.payload)
        except ValueError:
            return
        internal = self.nat.bind(vlan)
        if message.kind == DhcpMessage.DISCOVER:
            reply = DhcpMessage.offer(
                message.xid, message.chaddr, internal,
                router=self.gateway_ip, dns=self.dns_ip or self.gateway_ip,
            )
        elif message.kind == DhcpMessage.REQUEST:
            reply = DhcpMessage.ack(
                message.xid, message.chaddr, internal,
                router=self.gateway_ip, dns=self.dns_ip or self.gateway_ip,
            )
            self.counters["dhcp_leases"] += 1
            self._m_dhcp.inc()
        else:
            return
        out = IPv4Packet(
            self.gateway_ip, internal,
            UDPDatagram(DHCP_SERVER_PORT, DHCP_CLIENT_PORT, reply.to_bytes()),
        )
        self._emit_to_vlan(vlan, out)

    # ------------------------------------------------------------------
    # Flow creation and the shim (SHIM phase)
    # ------------------------------------------------------------------
    @staticmethod
    def _directed_key(packet: IPv4Packet) -> Optional[FiveTuple]:
        if packet.proto not in (PROTO_TCP, PROTO_UDP):
            return None
        return FiveTuple.from_packet(packet)

    def _new_flow(self, packet: IPv4Packet, vlan: int,
                  inmate_is_originator: bool) -> None:
        key = self._directed_key(packet)
        if key is None:
            return
        if packet.proto == PROTO_TCP and (
            not packet.tcp.syn or packet.tcp.has_ack
        ):
            return  # mid-flow packet for an unknown flow: drop

        # The safety filter guards against *outbound* harm; inbound
        # traffic (e.g. worm scans the honeyfarm wants to attract) is
        # not rate-limited here.
        if inmate_is_originator and not self.safety.admit(
            self.sim.now, vlan, key.resp_ip
        ):
            record = FlowRecord(key, vlan, inmate_is_originator,
                                self.sim.now, 0, 0)
            record.phase = FlowPhase.REFUSED
            self._flows.append(record)
            self.flow_log.append(FlowLogEntry(self.sim.now, record))
            self.counters["flows_refused"] += 1
            self._m_flows_refused.inc()
            if self.telemetry.enabled:
                trace_id = (f"{self.name}/vlan{vlan}/refused"
                            f"/t{self.sim.now:.6f}")
                self.telemetry.point(
                    trace_id, "flow.safety", subfarm=self.name,
                    vlan=str(vlan), admitted="false",
                    destination=str(key.resp_ip))
            if self.journal.enabled:
                self.journal.record(
                    "flow.refused",
                    flow=(f"{self.name}/vlan{vlan}/refused"
                          f"/t{self.sim.now:.6f}"),
                    vlan=vlan, parent=JOURNAL_ROOT,
                    destination=str(key.resp_ip))
            return

        mux = self._allocate_mux()
        nonce = self._allocate_nonce()
        record = FlowRecord(key, vlan, inmate_is_originator,
                            self.sim.now, mux, nonce)
        record.cs_ip = self._select_cs(vlan)
        self._arm_housekeeping()
        self._flows.append(record)
        self.counters["flows_created"] += 1
        self._m_flows_created.inc()
        self._by_mux[mux] = record
        self._by_nonce[nonce] = record
        # Client-side aliases (as the originator addresses the flow).
        reverse = key.reversed()
        self._index[key] = record
        self._index[reverse] = record
        record.index_keys.append(key)
        record.index_keys.append(reverse)

        if self.telemetry.enabled:
            proto = "tcp" if packet.proto == PROTO_TCP else "udp"
            trace_id = (f"{self.name}/vlan{vlan}/mux{mux}"
                        f"/t{self.sim.now:.6f}")
            self._trace_ids[mux] = trace_id
            self.telemetry.point(
                trace_id, "flow.bridge", subfarm=self.name,
                vlan=str(vlan), proto=proto,
                destination=str(key.resp_ip))
            if inmate_is_originator:
                self.telemetry.point(
                    trace_id, "flow.safety", subfarm=self.name,
                    vlan=str(vlan), admitted="true")
            self._shim_spans[mux] = self.telemetry.span(
                trace_id, "flow.shim_rtt", subfarm=self.name,
                vlan=str(vlan), proto=proto)

        if self.journal.enabled:
            # Same id scheme as flow traces, computed independently so
            # journaling works with telemetry off.  The five-tuple
            # alias lets the containment server — which only ever sees
            # the flow through serialized shim bytes — journal onto the
            # same causal chain.
            flow_id = self._trace_ids.get(mux)
            if flow_id is None:
                flow_id = (f"{self.name}/vlan{vlan}/mux{mux}"
                           f"/t{self.sim.now:.6f}")
                self._trace_ids[mux] = flow_id
            self.journal.bind_flow(f"vlan{vlan}/{key}", flow_id)
            self.journal.record(
                "flow.created", flow=flow_id, vlan=vlan,
                parent=JOURNAL_ROOT,
                proto="tcp" if packet.proto == PROTO_TCP else "udp",
                destination=str(key.resp_ip))

        resilience = self.resilience
        if packet.proto == PROTO_TCP:
            record.client_isn = packet.tcp.seq
            if resilience is not None and resilience.handle_new_flow(record):
                return  # degraded: resolved by the pending policy
            self._send_to_cs_tcp(record, packet.tcp)
        else:
            record.udp_pending.append(packet.udp.copy())
            if resilience is not None and resilience.handle_new_flow(record):
                return  # degraded: resolved by the pending policy
            self._send_to_cs_udp(record, packet.udp)
        if resilience is not None:
            resilience.arm(record)

    # ---- TCP toward the containment server ---------------------------
    def _send_to_cs_tcp(self, record: FlowRecord, segment: TCPSegment) -> None:
        out = segment.copy()
        out.sport = record.mux_port
        out.dport = self.cs_tcp_port
        out.seq = seq_add(out.seq, record.c2s_inj)
        out.ack = seq_add(out.ack, record.s2c_rem) if out.has_ack else 0
        packet = IPv4Packet(record.orig.orig_ip, record.cs_ip, out)
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_to_cs(record.cs_ip, packet)

    def _inject_request_shim(self, record: FlowRecord) -> None:
        shim = RequestShim(record.orig, record.vlan, record.nonce_port)
        payload = shim.to_bytes()
        segment = TCPSegment(
            sport=record.mux_port, dport=self.cs_tcp_port,
            seq=seq_add(record.client_isn, 1),
            ack=seq_add(record.cs_isn, 1),
            flags=ACK | PSH, payload=payload,
        )
        record.c2s_inj = len(payload)
        record.shim_injected = True
        self.counters["shims_injected"] += 1
        self._m_shims_injected.inc()
        packet = IPv4Packet(record.orig.orig_ip, record.cs_ip, segment)
        self._emit_to_cs(record.cs_ip, packet)

    def _replay_cs_handshake(self, record: FlowRecord) -> None:
        """Complete a re-homed containment-server leg on the client's
        behalf: ACK the fresh SYN-ACK, re-inject the request shim, and
        replay any payload the client already sent (the handoff replay
        idiom of _complete_handoff, pointed at the new server)."""
        ack = TCPSegment(
            sport=record.orig.orig_port, dport=record.orig.resp_port,
            seq=seq_add(record.client_isn, 1),
            ack=seq_add(record.cs_isn, 1),
            flags=ACK,
        )
        self._send_to_cs_tcp(record, ack)
        self._inject_request_shim(record)
        if record.client_buffer:
            data = TCPSegment(
                sport=record.orig.orig_port, dport=record.orig.resp_port,
                seq=seq_add(record.client_isn, 1),
                ack=seq_add(record.cs_isn, 1),
                flags=ACK | PSH, payload=bytes(record.client_buffer),
            )
            self._send_to_cs_tcp(record, data)

    # ---- UDP toward the containment server ---------------------------
    def _send_to_cs_udp(self, record: FlowRecord, datagram: UDPDatagram) -> None:
        shim = RequestShim(record.orig, record.vlan, record.nonce_port)
        wrapped = UDPDatagram(
            record.mux_port, self.cs_udp_port,
            shim.to_bytes() + datagram.payload,
        )
        self.counters["shims_injected"] += 1
        self._m_shims_injected.inc()
        packet = IPv4Packet(record.orig.orig_ip, record.cs_ip, wrapped)
        self._emit_to_cs(record.cs_ip, packet)

    # ------------------------------------------------------------------
    # Known-flow dispatch
    # ------------------------------------------------------------------
    def _dispatch_known(self, record: FlowRecord, packet: IPv4Packet,
                        key: FiveTuple) -> None:
        record.touch(self.sim.now)
        # A pure SYN with a new ISN on the originator tuple is a new
        # incarnation of the flow (port reuse after close, or a fresh
        # host generation after a revert): evict the stale record and
        # start containment over.
        if (packet.proto == PROTO_TCP and key == record.orig
                and packet.tcp.syn and not packet.tcp.has_ack
                and packet.tcp.seq != record.client_isn):
            self._evict(record)
            self._new_flow(packet, vlan=record.vlan,
                           inmate_is_originator=record.inmate_is_originator)
            return
        if record.phase in (FlowPhase.DROPPED, FlowPhase.REFUSED,
                            FlowPhase.CLOSED):
            # Table-miss after a timeout eviction: re-install a DROPPED
            # flow's swallow rule so repeat traffic stays off the slow
            # path (OpenFlow's table-miss -> flow_mod cycle).
            if (record.phase is FlowPhase.DROPPED and self.fastpath_enabled
                    and not record.fast_keys):
                self._fastpath_install(record)
            return
        # Table-miss re-install for live enforced flows whose rules
        # were evicted by an idle/hard timeout: the flow is still
        # valid, so compile fresh entries before relaying this packet
        # on the slow path.
        if (self.fastpath_enabled and not record.fast_keys
                and record.phase is FlowPhase.ENFORCED
                and record.decision is not None):
            self._fastpath_install(record)
        # Which leg did this packet arrive on?
        if key == record.orig:
            self._relay_client_packet(record, packet)
        elif key == record.orig.reversed():
            # Only possible for legs whose return alias equals the
            # reversed originator tuple (never the case: CS and dst legs
            # register their own aliases).  Treat as server packet.
            self._relay_server_packet(record, packet, "dst")
        elif packet.src in self.cs_ips:
            if (packet.proto == PROTO_TCP
                    and packet.tcp.sport == record.nonce_port):
                self._handle_nonce_leg(record, packet)
            elif packet.proto == PROTO_UDP:
                self._handle_cs_udp(record, packet)
            else:
                self._relay_server_packet(record, packet, "cs")
        elif record.nonce_active and self._is_nonce_return(record, packet):
            self._relay_nonce_return(record, packet)
        else:
            self._relay_server_packet(record, packet, "dst")

    # ------------------------------------------------------------------
    # Established-flow fast path (the paper's compiled forwarding path)
    # ------------------------------------------------------------------
    # At verdict time the flow's forwarding becomes fixed: which leg
    # each directed tuple belongs to, the port/sequence translations,
    # the destination addressing, and the emission target are all
    # decided.  _fastpath_install compiles that knowledge into bound
    # per-packet closures keyed by the tuples the flow's packets arrive
    # on, so steady-state forwarding is one dict hit plus one call.
    # Packets that can change flow state (SYN, RST) fall back to the
    # slow path, which is kept byte-identical and remains the single
    # source of truth for verdicts and handoffs.

    @staticmethod
    def _fp_key(tuple_: FiveTuple):
        """Fast-path dict key: a plain int tuple, so probes hash and
        compare in C instead of through IPv4Address's methods."""
        return (tuple_.orig_ip.value, tuple_.orig_port,
                tuple_.resp_ip.value, tuple_.resp_port, tuple_.proto)

    def _fastpath_install(self, record: FlowRecord) -> None:
        if not self.fastpath_enabled:
            return
        if record.phase == FlowPhase.DROPPED:
            entries = self._compile_dropped(record)
        elif record.phase == FlowPhase.ENFORCED and record.decision is not None:
            if record.decision.verdict & Verdict.REWRITE:
                entries = self._compile_rewrite(record)
            else:
                entries = self._compile_endpoint(record)
        else:
            return
        # Transactional commit: compilation finished (and may have
        # raised) before any table mutation, so a failed compile can
        # never leave orphan entries or a half-installed rule set.
        self._fastpath_uninstall(record)
        table = self.flowtable
        for entry in entries:
            table.entries[entry.key] = entry
            record.fast_keys.append(entry.key)
        table.installs += len(entries)
        table.sync_metrics()
        if record.fast_keys and self.journal.enabled:
            self.journal.record(
                "fastpath.install",
                flow=self._trace_ids.get(record.mux_port),
                vlan=record.vlan, phase=record.phase.value,
                handlers=len(record.fast_keys))

    def _fastpath_uninstall(self, record: FlowRecord,
                            reason: Optional[str] = None) -> None:
        if record.fast_keys and self.journal.enabled:
            payload = dict(flow=self._trace_ids.get(record.mux_port),
                           vlan=record.vlan,
                           handlers=len(record.fast_keys))
            if reason is not None:
                payload["reason"] = reason
            self.journal.record("fastpath.evict", **payload)
        table = self.flowtable
        entries = table.entries
        removed = 0
        for key in record.fast_keys:
            entry = entries.get(key)
            if entry is not None and entry.record is record:
                del entries[key]
                removed += 1
        record.fast_keys.clear()
        if removed:
            table.evictions += removed
            table.sync_metrics()

    def _fastpath_timeout(self, entry: FlowEntry, now: float) -> None:
        """An entry's idle or hard timeout has passed: evict the whole
        flow's rules (both directions age together, like
        expire_idle_flows) and journal the reason.  The next packet
        re-installs via the table-miss path if the flow is still live."""
        reason = entry.timeout_reason(now)
        if reason == "hard":
            self.flowtable.timeout_hard += 1
        else:
            self.flowtable.timeout_idle += 1
        self._fastpath_uninstall(entry.record, reason=reason)

    def _client_emit_plan(self, record: FlowRecord):
        """Resolve _emit_to_client's routing to (emit_code, arg)."""
        if record.inmate_is_originator:
            return EMIT_VLAN, record.vlan
        return EMIT_UPSTREAM, None

    def _dst_emit_plan(self, record: FlowRecord):
        """Resolve _emit_dst's routing to (emit_code, arg)."""
        if record.dst_is_inmate_vlan is not None:
            return EMIT_VLAN, record.dst_is_inmate_vlan
        if record.dst_ip in self.service_ips:
            return EMIT_SERVICE, record.dst_ip
        return EMIT_UPSTREAM, None

    def _emit_entry(self, entry: FlowEntry, packet: IPv4Packet) -> None:
        """Dispatch a translated packet on the entry's emission code —
        the action half of a match-action rule, shared by the scalar
        executors and the batched run executor."""
        code = entry.emit_code
        if not entry.shaped:
            if code == EMIT_VLAN:
                self._emit_to_vlan(entry.emit_arg, packet)
            elif code == EMIT_UPSTREAM:
                self._emit_upstream(packet)
            elif code == EMIT_CS:
                self._emit_to_cs(entry.emit_arg, packet)
            else:
                self._emit_to_service(entry.emit_arg, packet)
            return
        if code == EMIT_VLAN:
            base = (lambda p, emit=self._emit_to_vlan,
                    vlan=entry.emit_arg: emit(vlan, p))
        elif code == EMIT_UPSTREAM:
            base = self._emit_upstream
        else:
            base = (lambda p, emit=self._emit_to_service,
                    ip=entry.emit_arg: emit(ip, p))
        self._emit_shaped(entry.record, packet, base)

    def _compile_endpoint(self, record: FlowRecord):
        """Entries for handed-off flows (FORWARD/LIMIT/REDIRECT/
        REFLECT over TCP, plus all UDP endpoint verdicts)."""
        orig = record.orig
        orig_ip, orig_port = orig.orig_ip, orig.orig_port
        resp_ip, resp_port = orig.resp_ip, orig.resp_port
        dst_port = record.dst_port
        proto = orig.proto
        shaped = record.shaper is not None
        client_code, client_arg = self._client_emit_plan(record)
        dst_code, dst_arg = self._dst_emit_plan(record)
        now = self.sim.now
        idle = self.flowtable_idle_timeout
        hard = self.flowtable_hard_timeout

        # Destination addressing, as _address_dst_packet decides it.
        if record.spoof_preserve:
            dst_src_ip, dst_dst_ip = orig_ip, resp_ip
            dst_key = FiveTuple(resp_ip, dst_port, orig_ip, orig_port, proto)
        else:
            if (record.dst_is_inmate_vlan is not None
                    or record.dst_ip in self.service_ips):
                local_ip = orig_ip
            else:
                local_ip = record.nat_global or orig_ip
            dst_src_ip, dst_dst_ip = local_ip, record.dst_ip
            dst_key = FiveTuple(record.dst_ip, dst_port, local_ip,
                                orig_port, proto)

        if proto == PROTO_UDP:
            return [
                FlowEntry(self._fp_key(orig), ACT_UDP_C2D, record,
                          orig_port, dst_port, dst_src_ip, dst_dst_ip,
                          emit_code=dst_code, emit_arg=dst_arg,
                          shaped=shaped, installed_at=now,
                          idle_timeout=idle, hard_timeout=hard),
                FlowEntry(self._fp_key(dst_key), ACT_UDP_D2C, record,
                          resp_port, orig_port, resp_ip, orig_ip,
                          emit_code=client_code, emit_arg=client_arg,
                          shaped=shaped, installed_at=now,
                          idle_timeout=idle, hard_timeout=hard),
            ]

        isn_delta = record.isn_delta
        c2s_inj = record.c2s_inj
        return [
            FlowEntry(self._fp_key(orig), ACT_TCP_C2D, record,
                      orig_port, dst_port, dst_src_ip, dst_dst_ip,
                      seq_delta=0, ack_delta=(-isn_delta) & 0xFFFFFFFF,
                      emit_code=dst_code, emit_arg=dst_arg,
                      shaped=shaped, installed_at=now,
                      idle_timeout=idle, hard_timeout=hard),
            FlowEntry(self._fp_key(dst_key), ACT_TCP_D2C, record,
                      resp_port, orig_port, resp_ip, orig_ip,
                      seq_delta=isn_delta,
                      ack_delta=(-c2s_inj) & 0xFFFFFFFF,
                      emit_code=client_code, emit_arg=client_arg,
                      shaped=shaped, installed_at=now,
                      idle_timeout=idle, hard_timeout=hard),
        ]

    def _compile_rewrite(self, record: FlowRecord):
        """Entries for REWRITE flows, which stay coupled to the
        containment server for life.  Toward-CS rules emit on EMIT_CS
        (the shim-link fault seam is re-read per packet)."""
        orig = record.orig
        orig_ip, orig_port = orig.orig_ip, orig.orig_port
        resp_ip, resp_port = orig.resp_ip, orig.resp_port
        cs_ip = record.cs_ip
        mux = record.mux_port
        client_code, client_arg = self._client_emit_plan(record)
        shaped = record.shaper is not None
        now = self.sim.now
        idle = self.flowtable_idle_timeout
        hard = self.flowtable_hard_timeout

        if orig.proto == PROTO_UDP:
            shim_bytes = RequestShim(orig, record.vlan,
                                     record.nonce_port).to_bytes()
            # Return datagrams carry a response shim each and must be
            # parsed, so the CS->client direction stays on the slow path.
            return [FlowEntry(self._fp_key(orig), ACT_UDP_C2CS, record,
                              mux, self.cs_udp_port, orig_ip, cs_ip,
                              emit_code=EMIT_CS, emit_arg=cs_ip,
                              payload_prefix=shim_bytes,
                              installed_at=now, idle_timeout=idle,
                              hard_timeout=hard)]

        c2s_inj = record.c2s_inj
        s2c_rem = record.s2c_rem
        cs_key = FiveTuple(cs_ip, self.cs_tcp_port, orig_ip, mux,
                           PROTO_TCP)
        return [
            FlowEntry(self._fp_key(orig), ACT_TCP_C2CS, record,
                      mux, self.cs_tcp_port, orig_ip, cs_ip,
                      seq_delta=c2s_inj, ack_delta=s2c_rem,
                      emit_code=EMIT_CS, emit_arg=cs_ip,
                      installed_at=now, idle_timeout=idle,
                      hard_timeout=hard),
            FlowEntry(self._fp_key(cs_key), ACT_TCP_CS2C, record,
                      resp_port, orig_port, resp_ip, orig_ip,
                      seq_delta=(-s2c_rem) & 0xFFFFFFFF,
                      ack_delta=(-c2s_inj) & 0xFFFFFFFF,
                      emit_code=client_code, emit_arg=client_arg,
                      shaped=shaped, installed_at=now,
                      idle_timeout=idle, hard_timeout=hard),
        ]

    def _compile_dropped(self, record: FlowRecord):
        """Terminal-phase rule: touch and swallow, except TCP SYNs
        which may be a new incarnation of the tuple."""
        orig = record.orig
        kind = ACT_DROP_TCP if orig.proto == PROTO_TCP else ACT_DROP_UDP
        return [FlowEntry(self._fp_key(orig), kind, record,
                          orig.orig_port, orig.resp_port,
                          orig.orig_ip, orig.resp_ip,
                          installed_at=self.sim.now,
                          idle_timeout=self.flowtable_idle_timeout,
                          hard_timeout=self.flowtable_hard_timeout)]

    # ------------------------------------------------------------------
    # Client-side relay
    # ------------------------------------------------------------------
    def _relay_client_packet(self, record: FlowRecord, packet: IPv4Packet) -> None:
        if packet.proto == PROTO_UDP:
            self._relay_client_udp(record, packet)
            return
        segment = packet.tcp
        record.c2s_packets += 1
        record.c2s_bytes += len(segment.payload)

        if segment.rst:
            self._abort_flow(record, notify_client=False)
            return

        if record.phase == FlowPhase.SHIM or (
            record.phase == FlowPhase.ENFORCED and record.decision is not None
            and record.decision.verdict & Verdict.REWRITE
        ):
            # Toward the containment server.  Inject the request shim
            # the moment the inmate completes the handshake.
            if (record.phase == FlowPhase.SHIM
                    and not record.shim_injected
                    and record.cs_isn is not None
                    and segment.has_ack and not segment.syn):
                self._send_to_cs_tcp(record, segment)
                self._inject_request_shim(record)
                if segment.payload:
                    record.client_buffer.extend(segment.payload)
                if segment.fin:
                    record.client_fin = True
                return
            if record.phase == FlowPhase.SHIM and segment.payload:
                record.client_buffer.extend(segment.payload)
            if segment.fin:
                record.client_fin = True
            self._send_to_cs_tcp(record, segment)
            return

        if record.phase == FlowPhase.HANDOFF:
            # Destination handshake still in flight: buffer payload.
            if segment.payload:
                record.client_buffer.extend(segment.payload)
            if segment.fin:
                record.client_fin = True
            return

        if record.phase == FlowPhase.ENFORCED:
            self._send_to_dst(record, segment)

    def _relay_client_udp(self, record: FlowRecord, packet: IPv4Packet) -> None:
        datagram = packet.udp
        record.c2s_packets += 1
        record.c2s_bytes += len(datagram.payload)
        if record.phase == FlowPhase.SHIM:
            record.udp_pending.append(datagram.copy())
            return
        if record.phase != FlowPhase.ENFORCED or record.decision is None:
            return
        verdict = record.decision.verdict
        if verdict & Verdict.REWRITE:
            self._send_to_cs_udp(record, datagram)
            return
        self._send_udp_to_dst(record, datagram)

    # ------------------------------------------------------------------
    # Server-side relay (containment server leg or destination leg)
    # ------------------------------------------------------------------
    def _relay_server_packet(self, record: FlowRecord, packet: IPv4Packet,
                             leg: str) -> None:
        if packet.proto == PROTO_UDP:
            # Return datagrams from the enforced destination (or sink)
            # flow straight back to the originator, re-addressed as the
            # original destination.
            if leg == "dst" and record.phase == FlowPhase.ENFORCED:
                record.s2c_packets += 1
                self._deliver_udp_to_client(record, packet.udp.payload)
            return
        if packet.proto != PROTO_TCP:
            return
        segment = packet.tcp
        record.s2c_packets += 1

        if leg == "cs":
            self._server_packet_from_cs(record, segment)
        else:
            self._server_packet_from_dst(record, segment)

    def _server_packet_from_cs(self, record: FlowRecord,
                               segment: TCPSegment) -> None:
        if segment.rst:
            # The containment server aborted (or acknowledged our own
            # teardown); surface as reset to the client if still coupled.
            if record.phase == FlowPhase.SHIM or (
                record.decision is not None
                and record.decision.verdict & Verdict.REWRITE
            ):
                self._abort_flow(record, notify_client=True)
            return

        if segment.syn and segment.has_ack and record.cs_isn is None:
            record.cs_isn = segment.seq
            if record.cs_handshake_replay:
                # Failover re-home of a flow whose client already
                # handshook against the old server: finish the fresh
                # leg ourselves, never showing the client a second
                # SYN-ACK.
                record.cs_handshake_replay = False
                self._replay_cs_handshake(record)
                return
            self._forward_to_client(record, segment)
            return

        if record.phase == FlowPhase.SHIM:
            if segment.payload:
                record.shim_buffer.extend(segment.payload)
                self._try_parse_response_shim(record)
            elif segment.fin:
                # Server closed before issuing a verdict: treat as drop.
                self._apply_decision(record, ContainmentDecision.drop(
                    policy="cs-closed", annotation="no verdict"))
            else:
                self._forward_to_client(record, segment)  # bare ACK
            return

        # ENFORCED REWRITE: continuous proxying through the server.
        self._forward_to_client(record, segment)
        if segment.payload:
            record.s2c_bytes += len(segment.payload)

    def _server_packet_from_dst(self, record: FlowRecord,
                                segment: TCPSegment) -> None:
        if record.phase == FlowPhase.HANDOFF:
            if segment.rst:
                self._synthesize_client_rst(record)
                record.phase = FlowPhase.CLOSED
                return
            if segment.syn and segment.has_ack:
                record.dst_isn = segment.seq
                self._complete_handoff(record, segment)
            return
        if record.phase != FlowPhase.ENFORCED:
            return
        if segment.payload:
            record.s2c_bytes += len(segment.payload)
        self._forward_to_client(record, segment)

    # ------------------------------------------------------------------
    # Response shim parsing and verdict application
    # ------------------------------------------------------------------
    def _try_parse_response_shim(self, record: FlowRecord) -> None:
        length = peek_length(bytes(record.shim_buffer[:8])) \
            if len(record.shim_buffer) >= 8 else None
        if length is None or len(record.shim_buffer) < length:
            return
        blob = bytes(record.shim_buffer[:length])
        leftover = bytes(record.shim_buffer[length:])
        record.shim_buffer.clear()
        try:
            shim = ResponseShim.from_bytes(blob, proto=record.orig.proto)
        except ShimError:
            self._apply_decision(record, ContainmentDecision.drop(
                policy="shim-error", annotation="malformed response shim"))
            return
        record.s2c_rem = length
        self.counters["shims_stripped"] += 1
        self._m_shims_stripped.inc()
        if self.resilience is not None:
            self.resilience.note_verdict(record.cs_ip)
        decision = shim.to_decision(record.orig)
        self._apply_decision(record, decision, leftover)

    def _record_verdict(self, record: FlowRecord,
                        decision: ContainmentDecision) -> None:
        """Telemetry bookkeeping at verdict time: close the shim-RTT
        span, observe the RTT histogram, count the verdict, and (for
        REWRITE) open the long-lived proxy span."""
        proto = "tcp" if record.orig.proto == PROTO_TCP else "udp"
        verdict = decision.verdict.label
        cell_key = (record.vlan, verdict, proto)
        cell = self._verdict_cells.get(cell_key)
        if cell is None:
            cell = self._m_verdicts.bind(
                subfarm=self.name, vlan=str(record.vlan),
                verdict=verdict, proto=proto)
            self._verdict_cells[cell_key] = cell
        cell.inc()
        self._h_shim_rtt.observe(self.sim.now - record.created_at)
        if self.journal.enabled:
            self.journal.record(
                "verdict.applied",
                flow=self._trace_ids.get(record.mux_port),
                vlan=record.vlan, verdict=verdict, proto=proto,
                policy=decision.policy,
                annotation=decision.annotation or "")
        if not self.telemetry.enabled:
            return
        span = self._shim_spans.pop(record.mux_port, None)
        if span is not None:
            span.finish()
        trace_id = self._trace_ids.get(record.mux_port)
        if trace_id is not None:
            self.telemetry.point(trace_id, "flow.verdict",
                                 subfarm=self.name, verdict=verdict,
                                 proto=proto, policy=decision.policy)
            if decision.verdict & Verdict.REWRITE:
                self._proxy_spans[record.mux_port] = self.telemetry.span(
                    trace_id, "flow.proxy", subfarm=self.name,
                    vlan=str(record.vlan), proto=proto)

    def _finish_proxy_span(self, record: FlowRecord) -> None:
        span = self._proxy_spans.pop(record.mux_port, None)
        if span is not None:
            span.finish()

    def _apply_decision(self, record: FlowRecord,
                        decision: ContainmentDecision,
                        leftover: bytes = b"") -> None:
        record.decision = decision
        self.flow_log.append(FlowLogEntry(self.sim.now, record))
        self._record_verdict(record, decision)
        verdict = decision.verdict

        if verdict & Verdict.REWRITE:
            # Content control: stay coupled to the containment server.
            record.phase = FlowPhase.ENFORCED
            if decision.rate is not None:
                record.shaper = TokenBucket(decision.rate)
            if leftover:
                self._deliver_cs_content(record, leftover)
            self._fastpath_install(record)
            return

        endpoint = verdict.endpoint_op
        if endpoint == Verdict.DROP:
            record.phase = FlowPhase.DROPPED
            self._teardown_cs_leg(record)
            self._synthesize_client_rst(record)
            self._fastpath_install(record)
            return

        # FORWARD / LIMIT / REDIRECT / REFLECT: resolve destination,
        # hand the flow off, and take the containment server out of the
        # path.
        if endpoint in (Verdict.REDIRECT, Verdict.REFLECT):
            record.dst_ip = decision.target_ip
            record.dst_port = (
                decision.target_port
                if decision.target_port is not None
                else record.orig.resp_port
            )
            # Reflection preserves the spoofed original destination
            # address so the sink sees what the specimen dialled.
            record.spoof_preserve = endpoint == Verdict.REFLECT
        else:
            if record.inmate_is_originator:
                record.dst_ip = record.orig.resp_ip
                record.dst_port = record.orig.resp_port
            else:
                # Inbound flow: the enforced destination is the inmate.
                record.dst_ip = self.nat.internal_for(record.vlan)
                record.dst_port = record.orig.resp_port
        if verdict & Verdict.LIMIT and decision.rate is not None:
            record.shaper = TokenBucket(decision.rate)

        self._classify_destination(record)
        self._teardown_cs_leg(record)
        if record.orig.proto == PROTO_TCP:
            self._begin_handoff(record)
        else:
            record.phase = FlowPhase.ENFORCED
            self._register_dst_alias(record)
            while record.udp_pending:
                self._send_udp_to_dst(record, record.udp_pending.popleft())
            self._fastpath_install(record)

    def _classify_destination(self, record: FlowRecord) -> None:
        """Work out whether the enforced destination is an inmate, a
        subfarm service, or an external host (and NAT accordingly)."""
        assert record.dst_ip is not None
        record.dst_is_inmate_vlan = None
        vlan = self.bridge.vlan_for_ip(record.dst_ip)
        if vlan is None:
            vlan = self.nat.vlan_for_internal(record.dst_ip)
        if vlan is not None:
            record.dst_is_inmate_vlan = vlan
            return
        if record.dst_ip in self.service_ips:
            return
        # External: the inmate-side endpoint needs its global address.
        if record.inmate_is_originator:
            record.nat_global = self.nat.global_for(record.vlan)
            if self.telemetry.enabled and record.nat_global is not None:
                trace_id = self._trace_ids.get(record.mux_port)
                if trace_id is not None:
                    self.telemetry.point(
                        trace_id, "flow.nat", subfarm=self.name,
                        vlan=str(record.vlan),
                        global_ip=str(record.nat_global))

    # ------------------------------------------------------------------
    # Handoff to the enforced destination
    # ------------------------------------------------------------------
    def _begin_handoff(self, record: FlowRecord) -> None:
        record.phase = FlowPhase.HANDOFF
        self.counters["handoffs"] += 1
        self._m_handoffs.inc()
        self._register_dst_alias(record)
        syn = TCPSegment(
            sport=record.orig.orig_port, dport=record.dst_port,
            seq=record.client_isn, flags=SYN,
        )
        self._send_to_dst(record, syn, raw=True)

    def _complete_handoff(self, record: FlowRecord,
                          synack: TCPSegment) -> None:
        record.phase = FlowPhase.ENFORCED
        ack = TCPSegment(
            sport=record.orig.orig_port, dport=record.dst_port,
            seq=seq_add(record.client_isn, 1),
            ack=seq_add(record.dst_isn, 1),
            flags=ACK,
        )
        self._send_to_dst(record, ack, raw=True)
        seq = seq_add(record.client_isn, 1)
        buffered = bytes(record.client_buffer)
        record.client_buffer.clear()
        offset = 0
        while offset < len(buffered):
            chunk = buffered[offset:offset + 1460]
            offset += len(chunk)
            flags = ACK | PSH
            fin_here = record.client_fin and offset >= len(buffered)
            if fin_here:
                flags |= FIN
                record.client_fin_relayed = True
            data = TCPSegment(
                sport=record.orig.orig_port, dport=record.dst_port,
                seq=seq, ack=seq_add(record.dst_isn, 1),
                flags=flags, payload=chunk,
            )
            seq = seq_add(seq, len(chunk))
            self._send_to_dst(record, data, raw=True)
        if record.client_fin and not record.client_fin_relayed:
            fin = TCPSegment(
                sport=record.orig.orig_port, dport=record.dst_port,
                seq=seq, ack=seq_add(record.dst_isn, 1), flags=FIN | ACK,
            )
            record.client_fin_relayed = True
            self._send_to_dst(record, fin, raw=True)
        self._fastpath_install(record)

    def _register_dst_alias(self, record: FlowRecord) -> None:
        """Register the directed tuple of return traffic from the
        enforced destination."""
        assert record.dst_ip is not None and record.dst_port is not None
        if record.spoof_preserve:
            # The sink answers from the spoofed original destination.
            alias = FiveTuple(
                record.orig.resp_ip, record.dst_port,
                record.orig.orig_ip, record.orig.orig_port, record.orig.proto,
            )
            self._index[alias] = record
            record.index_keys.append(alias)
            return
        if record.dst_is_inmate_vlan is not None or record.dst_ip in self.service_ips:
            local_ip = record.orig.orig_ip
        else:
            local_ip = record.nat_global or record.orig.orig_ip
        alias = FiveTuple(
            record.dst_ip, record.dst_port,
            local_ip, record.orig.orig_port, record.orig.proto,
        )
        self._index[alias] = record
        record.index_keys.append(alias)

    # ------------------------------------------------------------------
    # Emission toward each party
    # ------------------------------------------------------------------
    def _forward_to_client(self, record: FlowRecord,
                           segment: TCPSegment) -> None:
        """Send a server-leg segment back to the originator, restoring
        the illusion of the original destination."""
        out = segment.copy()
        out.sport = record.orig.resp_port
        out.dport = record.orig.orig_port
        if record.cs_isn is not None and record.dst_isn is not None:
            # Post-handoff: translate the destination ISN space into the
            # containment server's (which the client handshook against).
            out.seq = seq_add(out.seq, record.isn_delta)
        else:
            out.seq = seq_sub(out.seq, record.s2c_rem)
        if out.has_ack:
            out.ack = seq_sub(out.ack, record.c2s_inj)
        packet = IPv4Packet(record.orig.resp_ip, record.orig.orig_ip, out)
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_to_client(record, packet)

    def _deliver_cs_content(self, record: FlowRecord, payload: bytes) -> None:
        """Deliver REWRITE content that shared a segment with the
        response shim."""
        segment = TCPSegment(
            sport=record.orig.resp_port, dport=record.orig.orig_port,
            seq=seq_add(record.cs_isn, 1),
            ack=self._client_snd_nxt(record),
            flags=ACK | PSH, payload=payload,
        )
        record.s2c_bytes += len(payload)
        packet = IPv4Packet(record.orig.resp_ip, record.orig.orig_ip, segment)
        self._emit_to_client(record, packet)

    def _client_snd_nxt(self, record: FlowRecord) -> int:
        return seq_add(record.client_isn, 1 + record.c2s_bytes
                       + (1 if record.client_fin else 0))

    def _emit_to_client(self, record: FlowRecord, packet: IPv4Packet) -> None:
        if record.inmate_is_originator:
            self._emit_shaped(record, packet,
                              lambda p: self._emit_to_vlan(record.vlan, p))
        else:
            # Inbound flow: the originator lives outside; restore the
            # inmate's global source address.
            packet.src = record.orig.resp_ip
            self._emit_shaped(record, packet, self._emit_upstream)

    def _send_to_dst(self, record: FlowRecord, segment: TCPSegment,
                     raw: bool = False) -> None:
        out = segment if raw else segment.copy()
        if not raw:
            # Live relay from the client: translate the ack (client acks
            # in containment-server ISN space, destination expects its
            # own).
            if out.has_ack and record.dst_isn is not None:
                out.ack = seq_sub(out.ack, record.isn_delta)
            out.dport = record.dst_port
            out.sport = record.orig.orig_port
            if out.payload:
                record.c2s_bytes += 0  # already counted at client relay
        packet = self._address_dst_packet(record, out)
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_dst(record, packet)

    def _send_udp_to_dst(self, record: FlowRecord,
                         datagram: UDPDatagram) -> None:
        out = datagram.copy()
        out.dport = record.dst_port
        out.sport = record.orig.orig_port
        packet = self._address_dst_packet(record, out)
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_dst(record, packet)

    def _address_dst_packet(self, record: FlowRecord, transport) -> IPv4Packet:
        if record.spoof_preserve:
            # Physically delivered to the sink, but still addressed to
            # the original destination.
            return IPv4Packet(record.orig.orig_ip, record.orig.resp_ip,
                              transport)
        if record.dst_is_inmate_vlan is not None or record.dst_ip in self.service_ips:
            src = record.orig.orig_ip
        else:
            src = record.nat_global or record.orig.orig_ip
        return IPv4Packet(src, record.dst_ip, transport)

    def _emit_dst(self, record: FlowRecord, packet: IPv4Packet) -> None:
        if record.dst_is_inmate_vlan is not None:
            self._emit_shaped(
                record, packet,
                lambda p, v=record.dst_is_inmate_vlan: self._emit_to_vlan(v, p),
            )
        elif record.dst_ip in self.service_ips:
            self._emit_shaped(record, packet,
                              lambda p: self._emit_to_service(record.dst_ip, p))
        else:
            self._emit_shaped(record, packet, self._emit_upstream)

    def _emit_shaped(self, record: FlowRecord, packet: IPv4Packet,
                     emit: Callable[[IPv4Packet], None]) -> None:
        if record.shaper is None:
            emit(packet)
            return
        size = 40 + (len(packet.tcp.payload) if packet.proto == PROTO_TCP
                     else len(packet.udp.payload))
        delay = record.shaper.delay_for(self.sim.now, size)
        if delay <= 0:
            emit(packet)
        else:
            self.sim.schedule(delay, emit, packet, label="limit-shaper")

    # ------------------------------------------------------------------
    # REWRITE nonce leg (containment server connecting onward)
    # ------------------------------------------------------------------
    def _handle_nonce_leg(self, record: FlowRecord, packet: IPv4Packet) -> None:
        """The containment server opened (or continues) its onward
        connection from the flow's nonce port.  NAT it so the real
        target sees the inmate's global address and original port."""
        segment = packet.tcp
        if segment.syn and not record.nonce_active:
            record.nonce_active = True
            if record.inmate_is_originator and record.nat_global is None:
                record.nat_global = self.nat.global_for(record.vlan)
            # Register the return path so replies from the real target
            # are recognized and relayed back to the nonce port.
            local = record.nat_global or record.orig.orig_ip
            alias = FiveTuple(packet.dst, segment.dport,
                              local, record.orig.orig_port, PROTO_TCP)
            self._index[alias] = record
            record.index_keys.append(alias)
            # If another flow had compiled a rule on this tuple, the
            # index now routes it here — drop the stale entry.  (Its
            # owner's fast_keys retains the key, which is harmless: the
            # uninstall path identity-checks entry.record.)
            stale = self._fastpath.pop(self._fp_key(alias), None)
            if stale is not None:
                self.flowtable.evictions += 1
        out = segment.copy()
        out.sport = record.orig.orig_port
        src = record.nat_global or record.orig.orig_ip
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_upstream(IPv4Packet(src, packet.dst, out))

    def _is_nonce_return(self, record: FlowRecord,
                         packet: IPv4Packet) -> bool:
        if packet.proto != PROTO_TCP:
            return False
        expected_dst = record.nat_global or record.orig.orig_ip
        return (packet.dst == expected_dst
                and packet.tcp.dport == record.orig.orig_port
                and record.nonce_active)

    def _relay_nonce_return(self, record: FlowRecord,
                            packet: IPv4Packet) -> None:
        out = packet.tcp.copy()
        out.dport = record.nonce_port
        self.counters["packets_relayed"] += 1
        self._m_packets.inc()
        self._emit_to_cs(record.cs_ip,
                         IPv4Packet(packet.src, record.cs_ip, out))

    # ------------------------------------------------------------------
    # UDP verdicts from the containment server
    # ------------------------------------------------------------------
    def _handle_cs_udp(self, record: FlowRecord, packet: IPv4Packet) -> None:
        payload = packet.udp.payload
        length = peek_length(payload)
        if length is None or len(payload) < length:
            return
        try:
            shim = ResponseShim.from_bytes(payload[:length], proto=PROTO_UDP)
        except ShimError:
            return
        leftover = payload[length:]
        self.counters["shims_stripped"] += 1
        self._m_shims_stripped.inc()
        if self.resilience is not None:
            self.resilience.note_verdict(record.cs_ip)
        if record.decision is None:
            decision = shim.to_decision(record.orig)
            self._apply_udp_decision(record, decision, leftover)
        elif leftover and record.decision.verdict & Verdict.REWRITE:
            self._deliver_udp_to_client(record, leftover)

    def _apply_udp_decision(self, record: FlowRecord,
                            decision: ContainmentDecision,
                            leftover: bytes) -> None:
        record.decision = decision
        self.flow_log.append(FlowLogEntry(self.sim.now, record))
        self._record_verdict(record, decision)
        verdict = decision.verdict
        if verdict & Verdict.REWRITE:
            record.phase = FlowPhase.ENFORCED
            record.udp_pending.clear()
            if leftover:
                self._deliver_udp_to_client(record, leftover)
            self._fastpath_install(record)
            return
        endpoint = verdict.endpoint_op
        if endpoint == Verdict.DROP:
            record.phase = FlowPhase.DROPPED
            record.udp_pending.clear()
            self._fastpath_install(record)
            return
        if endpoint in (Verdict.REDIRECT, Verdict.REFLECT):
            record.dst_ip = decision.target_ip
            record.dst_port = (decision.target_port
                               if decision.target_port is not None
                               else record.orig.resp_port)
        else:
            if record.inmate_is_originator:
                record.dst_ip = record.orig.resp_ip
                record.dst_port = record.orig.resp_port
            else:
                record.dst_ip = self.nat.internal_for(record.vlan)
                record.dst_port = record.orig.resp_port
        if verdict & Verdict.LIMIT and decision.rate is not None:
            record.shaper = TokenBucket(decision.rate)
        self._classify_destination(record)
        record.phase = FlowPhase.ENFORCED
        self._register_dst_alias(record)
        while record.udp_pending:
            self._send_udp_to_dst(record, record.udp_pending.popleft())
        self._fastpath_install(record)

    def _deliver_udp_to_client(self, record: FlowRecord, payload: bytes) -> None:
        datagram = UDPDatagram(record.orig.resp_port, record.orig.orig_port,
                               payload)
        record.s2c_bytes += len(payload)
        packet = IPv4Packet(record.orig.resp_ip, record.orig.orig_ip, datagram)
        self._emit_to_client(record, packet)

    # ------------------------------------------------------------------
    # Teardown helpers
    # ------------------------------------------------------------------
    def _teardown_cs_leg(self, record: FlowRecord) -> None:
        """Abort the containment-server leg after an endpoint verdict
        (the server is out of the path from here on)."""
        if record.orig.proto != PROTO_TCP or record.cs_isn is None:
            return
        rst = TCPSegment(
            sport=record.mux_port, dport=self.cs_tcp_port,
            seq=seq_add(record.client_isn, 1 + record.c2s_inj
                        + len(record.client_buffer) + record.c2s_bytes),
            ack=seq_add(record.cs_isn, 1 + record.s2c_rem),
            flags=RST | ACK,
        )
        self._emit_to_cs(
            record.cs_ip, IPv4Packet(record.orig.orig_ip, record.cs_ip, rst)
        )

    def _synthesize_client_rst(self, record: FlowRecord) -> None:
        if record.orig.proto != PROTO_TCP:
            return
        seq = seq_add(record.cs_isn, 1) if record.cs_isn is not None else 0
        rst = TCPSegment(
            sport=record.orig.resp_port, dport=record.orig.orig_port,
            seq=seq, ack=self._client_snd_nxt(record), flags=RST | ACK,
        )
        packet = IPv4Packet(record.orig.resp_ip, record.orig.orig_ip, rst)
        self._emit_to_client(record, packet)

    def _abort_flow(self, record: FlowRecord, notify_client: bool) -> None:
        if record.phase in (FlowPhase.CLOSED, FlowPhase.DROPPED):
            return
        if record.phase in (FlowPhase.SHIM, FlowPhase.ENFORCED,
                            FlowPhase.HANDOFF):
            self._teardown_cs_leg(record)
        if notify_client:
            self._synthesize_client_rst(record)
        self._finish_proxy_span(record)
        self._fastpath_uninstall(record)
        record.phase = FlowPhase.CLOSED

    # ------------------------------------------------------------------
    # Service-originated outbound (control-network NAT)
    # ------------------------------------------------------------------
    def _service_outbound(self, packet: IPv4Packet) -> None:
        if self.control_pool is None:
            return
        global_ip = self._service_nat.get(packet.src)
        if global_ip is None:
            global_ip = self.control_pool.allocate()
            self._service_nat[packet.src] = global_ip
            self._service_nat_rev[global_ip] = packet.src
        packet.src = global_ip
        self._emit_upstream(packet)

    # ------------------------------------------------------------------
    # Inmate life-cycle hooks
    # ------------------------------------------------------------------
    def _evict(self, record: FlowRecord) -> None:
        """Drop a record's demux state so its tuples can be reused."""
        if self.journal.enabled:
            flow_id = self._trace_ids.get(record.mux_port)
            if flow_id is not None:
                self.journal.record("flow.evicted", flow=flow_id,
                                    vlan=record.vlan,
                                    phase=record.phase.value)
        self._fastpath_uninstall(record)
        for key in record.index_keys:
            # Guard on identity: an alias may have been overwritten by a
            # newer record, whose entry must survive this eviction.
            if self._index.get(key) is record:
                del self._index[key]
        record.index_keys.clear()
        self._by_mux.pop(record.mux_port, None)
        self._by_nonce.pop(record.nonce_port, None)
        shim_span = self._shim_spans.pop(record.mux_port, None)
        if shim_span is not None:
            shim_span.finish()
        self._finish_proxy_span(record)
        self._trace_ids.pop(record.mux_port, None)
        if record.phase not in (FlowPhase.DROPPED, FlowPhase.REFUSED):
            record.phase = FlowPhase.CLOSED

    def _arm_housekeeping(self) -> None:
        if self._housekeeping_armed:
            return
        self._housekeeping_armed = True
        self.sim.schedule(self.housekeeping_interval, self._housekeep,
                          label="flow-housekeeping")

    def _housekeep(self) -> None:
        self._housekeeping_armed = False
        self.sweep_flowtable()
        self.expire_idle_flows(self.flow_idle_timeout)
        if self.active_flow_count() > 0:
            self._arm_housekeeping()

    def sweep_flowtable(self) -> int:
        """Evict flow-table entries whose idle/hard timeout has passed.

        The probe only ages entries that traffic still touches; this
        sweep (riding the existing housekeeping event, so the event
        schedule is unchanged) reclaims rules for flows that went
        quiet.  Returns the number of flows whose rules were evicted.
        """
        table = self.flowtable
        if not table.entries:
            return 0
        now = self.sim.now
        swept = 0
        for entry in table.expired_entries(now):
            # A flow's first expired entry evicts all of its rules, so
            # re-check liveness before timing out the next one.
            if table.entries.get(entry.key) is entry:
                self._fastpath_timeout(entry, now)
                swept += 1
        return swept

    def expire_idle_flows(self, max_idle: float) -> int:
        """Evict demux state for flows idle longer than ``max_idle``.

        Long deployments (the paper ran for six years) must not grow
        the flow table without bound; run this periodically.  Records
        stay in the history list for reporting — only the packet-path
        lookup state is released.
        """
        expired = 0
        horizon = self.sim.now - max_idle
        for record in self._flows:
            if record.phase in (FlowPhase.SHIM, FlowPhase.HANDOFF,
                                FlowPhase.ENFORCED) \
                    and record.last_activity <= horizon:
                self._evict(record)
                expired += 1
        return expired

    def forget_inmate(self, vlan: int) -> None:
        """Clear state when an inmate is reverted or terminated."""
        self.safety.reset_inmate(vlan)
        self.bridge.forget(vlan)
        for record in self._flows:
            if record.vlan == vlan and record.phase in (
                FlowPhase.SHIM, FlowPhase.HANDOFF, FlowPhase.ENFORCED
            ):
                self._evict(record)

    def __repr__(self) -> str:
        return f"<SubfarmRouter {self.name} vlans={len(self.vlan_ids)}>"
