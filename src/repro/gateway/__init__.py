"""GQ's central gateway.

The gateway sits between the outside network and the farm (Figure 1),
and hosts per-subfarm packet routers (Figure 3).  Each router combines:

* a learning VLAN bridge (:mod:`repro.gateway.bridge`),
* network address translation (:mod:`repro.gateway.nat`),
* a connection-rate safety filter (:mod:`repro.gateway.safety`),
* the per-flow containment relay that couples flows to the containment
  server via the shim protocol and then enforces verdicts at packet
  level (:mod:`repro.gateway.flows`, :mod:`repro.gateway.router`),
* two-pronged trace capture (§5.6).
"""

from repro.gateway.gateway import Gateway
from repro.gateway.router import SubfarmRouter

__all__ = ["Gateway", "SubfarmRouter"]
