"""The learning VLAN bridge (§5.1).

"A custom learning VLAN bridge selectively enables crosstalk among
machines on the inmate network as required, subject to the containment
policy in effect.  Its ability to learn about the hosts present reduces
the configuration overhead required to bootstrap the inmate network."

Physical switches keep inmate VLANs strictly isolated, so all
crosstalk transits the gateway.  This bridge learns, per VLAN, the
inmate's MAC and internal IP from its traffic, giving the router what
it needs to (a) deliver frames into a VLAN and (b) map internal IPs
back to VLAN IDs when a containment verdict redirects one inmate's
flow to another inmate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addresses import IPv4Address, MacAddress
from repro.obs.telemetry import NULL_TELEMETRY


class BridgeEntry:
    """What the bridge knows about one VLAN's inmate."""

    __slots__ = ("vlan", "mac", "ip", "first_seen", "last_seen", "frames")

    def __init__(self, vlan: int, mac: MacAddress, now: float) -> None:
        self.vlan = vlan
        self.mac = mac
        self.ip: Optional[IPv4Address] = None
        self.first_seen = now
        self.last_seen = now
        self.frames = 0

    def __repr__(self) -> str:
        return f"<BridgeEntry vlan={self.vlan} mac={self.mac} ip={self.ip}>"


class LearningBridge:
    """Per-VLAN inmate learning table."""

    def __init__(self, telemetry=None, subfarm: str = "") -> None:
        self._by_vlan: Dict[int, BridgeEntry] = {}
        self._vlan_by_ip: Dict[IPv4Address, int] = {}
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_learned = telemetry.counter(
            "gw.bridge.learned", "New (VLAN, MAC) entries"
        ).bind(subfarm=subfarm)
        self._m_observations = telemetry.counter(
            "gw.bridge.observations", "Frames observed by the bridge"
        ).bind(subfarm=subfarm)

    def learn(self, vlan: int, mac: MacAddress, now: float,
              ip: Optional[IPv4Address] = None) -> BridgeEntry:
        """Record an observation of traffic from an inmate."""
        self._m_observations.inc()
        entry = self._by_vlan.get(vlan)
        if entry is None or entry.mac != mac:
            entry = BridgeEntry(vlan, mac, now)
            self._by_vlan[vlan] = entry
            self._m_learned.inc()
        entry.last_seen = now
        entry.frames += 1
        if ip is not None and ip.value != 0:
            if entry.ip is not None and entry.ip != ip:
                self._vlan_by_ip.pop(entry.ip, None)
            entry.ip = ip
            self._vlan_by_ip[ip] = vlan
        return entry

    def forget(self, vlan: int) -> None:
        entry = self._by_vlan.pop(vlan, None)
        if entry is not None and entry.ip is not None:
            self._vlan_by_ip.pop(entry.ip, None)

    def entry(self, vlan: int) -> Optional[BridgeEntry]:
        return self._by_vlan.get(vlan)

    def mac_for(self, vlan: int) -> Optional[MacAddress]:
        entry = self._by_vlan.get(vlan)
        return entry.mac if entry else None

    def vlan_for_ip(self, ip: IPv4Address) -> Optional[int]:
        return self._vlan_by_ip.get(ip)

    def known_vlans(self) -> List[int]:
        return sorted(self._by_vlan)

    def __len__(self) -> int:
        return len(self._by_vlan)
