"""The gateway device: GQ's single chokepoint (Figure 1).

Owns the physical attachment points — the 802.1Q trunk to the inmate
network, the upstream interface to the outside world, and one port per
subfarm service host — and demultiplexes frames to the per-subfarm
packet routers.  Also performs proxy ARP everywhere (it is every
inmate's and every service's default gateway) and runs the system-wide
upstream trace capture (§5.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gateway.router import SubfarmRouter
from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.arp import ETHERTYPE_ARP, OP_REQUEST, ArpMessage
from repro.net.capture import PacketTrace
from repro.net.link import Link, Port, PortMode, Switch
from repro.net.packet import ETHERTYPE_IPV4, EthernetFrame, IPv4Packet
from repro.net.router import Router
from repro.net.host import Host
from repro.sim.engine import Simulator


class Gateway:
    """Central gateway hosting the subfarm packet routers."""

    def __init__(self, sim: Simulator, name: str = "gateway") -> None:
        self.sim = sim
        self.name = name
        self.mac = MacAddress(0x02_60_51_00_00_01)  # "GQ"

        self.trunk_port = Port(self, name=f"{name}.trunk")
        self.upstream_port = Port(self, name=f"{name}.upstream")
        self._service_ports: Dict[IPv4Address, Port] = {}
        self._service_macs: Dict[IPv4Address, MacAddress] = {}
        self._port_kinds: Dict[Port, str] = {
            self.trunk_port: "trunk",
            self.upstream_port: "upstream",
        }

        self.routers: List[SubfarmRouter] = []
        self._router_by_vlan: Dict[int, SubfarmRouter] = {}
        self.upstream_trace = PacketTrace(f"{name}-upstream")
        self.frames_received = 0
        self.frames_unroutable = 0

        telemetry = sim.telemetry
        self._m_frames = telemetry.counter(
            "gw.frames.received", "Frames hitting the gateway").bind()
        self._m_unroutable = telemetry.counter(
            "gw.frames.unroutable", "Frames with no owning subfarm").bind()
        self._m_floods = telemetry.counter(
            "gw.bridge.floods",
            "VLAN deliveries broadcast for lack of a learned MAC").bind()

        # GRE tunnels connecting donated address space (§7.2).
        self.tunnels: List = []

    def add_tunnel(self, endpoint) -> None:
        self.tunnels.append(endpoint)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_trunk(self, switch: Switch, latency: float = 0.0002) -> None:
        """Connect the inmate-network switch via an all-VLAN trunk."""
        Link(self.sim, self.trunk_port,
             switch.attach_port(mode=PortMode.TRUNK), latency)

    def attach_upstream(self, backbone: Router,
                        global_networks: List[IPv4Network],
                        latency: float = 0.01) -> None:
        """Connect to the simulated Internet backbone."""
        backbone.attach_gateway(self.mac, global_networks,
                                self.upstream_port, latency)

    def attach_service_host(self, router: SubfarmRouter, host: Host,
                            trusted: bool = False,
                            latency: float = 0.0002) -> None:
        """Give a subfarm service host a dedicated gateway port."""
        if host.ip is None:
            raise ValueError("service hosts need static addresses")
        port = Port(self, name=f"{self.name}.svc.{host.name}")
        Link(self.sim, host.attach_port(), port, latency)
        self._service_ports[host.ip] = port
        self._service_macs[host.ip] = host.mac
        self._port_kinds[port] = "service"
        host.configure(host.ip, gateway_ip=router.gateway_ip)
        router.register_service(host.ip, trusted=trusted)

    def add_router(self, router: SubfarmRouter) -> None:
        self.routers.append(router)
        for vlan in router.vlan_ids:
            if vlan in self._router_by_vlan:
                raise ValueError(f"VLAN {vlan} already owned by a subfarm")
            self._router_by_vlan[vlan] = router

    def router_for_vlan(self, vlan: int) -> Optional[SubfarmRouter]:
        return self._router_by_vlan.get(vlan)

    # ------------------------------------------------------------------
    # Emission callbacks handed to routers
    # ------------------------------------------------------------------
    def send_to_vlan(self, vlan: int, packet: IPv4Packet) -> None:
        router = self._router_by_vlan.get(vlan)
        dst_mac = MacAddress.broadcast()
        if router is not None:
            learned = router.bridge.mac_for(vlan)
            if learned is not None:
                dst_mac = learned
            else:
                self._m_floods.inc()
        frame = EthernetFrame(self.mac, dst_mac, packet, vlan=vlan,
                              ethertype=ETHERTYPE_IPV4)
        if router is not None:
            router.trace.capture(self.sim.now, frame, point="inmate")
        self.trunk_port.send(frame)

    def send_to_service(self, service_ip: IPv4Address,
                        packet: IPv4Packet) -> None:
        port = self._service_ports.get(service_ip)
        if port is None:
            self.frames_unroutable += 1
            self._m_unroutable.inc()
            return
        mac = self._service_macs[service_ip]
        frame = EthernetFrame(self.mac, mac, packet,
                              ethertype=ETHERTYPE_IPV4)
        router = self._router_for_service_ip(service_ip)
        if router is not None:
            router.trace.capture(self.sim.now, frame, point="containment")
        port.send(frame)

    def _router_for_service_ip(self, ip: IPv4Address) -> Optional[SubfarmRouter]:
        for router in self.routers:
            if ip in router.service_ips:
                return router
        return None

    def send_upstream(self, packet: IPv4Packet) -> None:
        # Egress sourced from tunneled (donated) space returns through
        # its tunnel so the prefix stays path-symmetric.
        for tunnel in self.tunnels:
            if tunnel.carries(packet.src):
                packet = tunnel.encapsulate(packet)
                break
        frame = EthernetFrame(self.mac, MacAddress.broadcast(), packet,
                              ethertype=ETHERTYPE_IPV4)
        self.upstream_trace.capture(self.sim.now, frame, point="upstream-out")
        self.upstream_port.send(frame)

    # ------------------------------------------------------------------
    # Frame reception
    # ------------------------------------------------------------------
    def receive_frame(self, frame: EthernetFrame, port: Port) -> None:
        self.frames_received += 1
        self._m_frames.inc()
        kind = self._port_kinds.get(port)
        if frame.ethertype == ETHERTYPE_ARP:
            self._proxy_arp(frame, port)
            return
        if kind == "trunk":
            if frame.vlan is None:
                return
            router = self._router_by_vlan.get(frame.vlan)
            if router is None:
                self.frames_unroutable += 1
                self._m_unroutable.inc()
                return
            router.inmate_frame(frame, frame.vlan)
        elif kind == "upstream":
            self.upstream_trace.capture(self.sim.now, frame,
                                        point="upstream-in")
            if not isinstance(frame.payload, IPv4Packet):
                return
            packet = frame.payload
            for tunnel in self.tunnels:
                inner = tunnel.try_decapsulate(packet)
                if inner is not None:
                    packet = inner
                    break
            for router in self.routers:
                if router.owns_global(packet.dst):
                    router.upstream_packet(packet)
                    return
            self.frames_unroutable += 1
            self._m_unroutable.inc()
        elif kind == "service":
            router = self._router_for_service_port(port)
            if router is not None:
                router.trace.capture(self.sim.now, frame,
                                     point="containment")
                router.service_frame(frame)
            else:
                self.frames_unroutable += 1
                self._m_unroutable.inc()

    def receive_frame_batch(self, frames: List[EthernetFrame],
                            port: Port) -> None:
        """Coalesced delivery from a batching port (Port.coalesce).

        Trunk frames are grouped into contiguous same-router runs and
        handed to the router's batched ingest; every other frame takes
        the scalar path in arrival order, so output is byte-identical
        to per-frame delivery.
        """
        if self._port_kinds.get(port) != "trunk":
            for frame in frames:
                self.receive_frame(frame, port)
            return
        run_router = None
        run_items = None
        for frame in frames:
            self.frames_received += 1
            self._m_frames.inc()
            if frame.ethertype == ETHERTYPE_ARP:
                if run_router is not None:
                    run_router.inmate_frame_batch(run_items)
                    run_router = None
                self._proxy_arp(frame, port)
                continue
            vlan = frame.vlan
            router = (self._router_by_vlan.get(vlan)
                      if vlan is not None else None)
            if router is None:
                if run_router is not None:
                    run_router.inmate_frame_batch(run_items)
                    run_router = None
                if vlan is not None:
                    self.frames_unroutable += 1
                    self._m_unroutable.inc()
                continue
            if router is run_router:
                run_items.append((frame, vlan))
                continue
            if run_router is not None:
                run_router.inmate_frame_batch(run_items)
            run_router = router
            run_items = [(frame, vlan)]
        if run_router is not None:
            run_router.inmate_frame_batch(run_items)

    def _ip_for_port(self, port: Port) -> Optional[IPv4Address]:
        for ip, candidate in self._service_ports.items():
            if candidate is port:
                return ip
        return None

    def _router_for_service_port(self, port: Port) -> Optional[SubfarmRouter]:
        ip = self._ip_for_port(port)
        if ip is None:
            return None
        for router in self.routers:
            if ip in router.service_ips:
                return router
        return None

    def _proxy_arp(self, frame: EthernetFrame, port: Port) -> None:
        """Answer every ARP request with our own MAC — the gateway is
        the next hop for everything."""
        try:
            message = ArpMessage.from_bytes(bytes(frame.payload))
        except ValueError:
            return
        if message.op != OP_REQUEST:
            return
        # Learn the inmate while we are at it.
        if self._port_kinds.get(port) == "trunk" and frame.vlan is not None:
            router = self._router_by_vlan.get(frame.vlan)
            if router is not None:
                ip = message.sender_ip if message.sender_ip.value else None
                router.bridge.learn(frame.vlan, message.sender_mac,
                                    self.sim.now, ip=ip)
        reply = ArpMessage.reply(self.mac, message.target_ip,
                                 message.sender_mac, message.sender_ip)
        out = EthernetFrame(self.mac, message.sender_mac, reply.to_bytes(),
                            vlan=frame.vlan, ethertype=ETHERTYPE_ARP)
        port.send(out)

    def __repr__(self) -> str:
        return f"<Gateway {self.name} subfarms={len(self.routers)}>"
