"""The farm side of a GRE tunnel (§7.2 address-space extension).

A colleague's network advertises an extra /24 and runs a small PoP
that forwards everything addressed into it through a GRE tunnel to
the farm; the farm hands those addresses to inmates like any other
global space.  Egress for tunneled sources is encapsulated back to
the PoP so the donated prefix's traffic stays path-symmetric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.gre import PROTO_GRE, decapsulate, encapsulate
from repro.net.packet import IPv4Packet


class GreTunnelEndpoint:
    """Gateway-resident tunnel endpoint."""

    def __init__(self, local_ip: IPv4Address, remote_ip: IPv4Address,
                 networks: List[IPv4Network]) -> None:
        self.local_ip = IPv4Address(local_ip)
        self.remote_ip = IPv4Address(remote_ip)
        self.networks = list(networks)
        self.packets_decapsulated = 0
        self.packets_encapsulated = 0
        self.decap_errors = 0

    def carries(self, address: IPv4Address) -> bool:
        return any(network.contains(address) for network in self.networks)

    def try_decapsulate(self, packet: IPv4Packet) -> Optional[IPv4Packet]:
        """If this is tunnel traffic for us, return the inner packet."""
        if packet.proto != PROTO_GRE or packet.dst != self.local_ip:
            return None
        inner = decapsulate(packet)
        if inner is None:
            self.decap_errors += 1
            return None
        self.packets_decapsulated += 1
        return inner

    def encapsulate(self, inner: IPv4Packet) -> IPv4Packet:
        self.packets_encapsulated += 1
        return encapsulate(inner, self.local_ip, self.remote_ip)

    def __repr__(self) -> str:
        return (
            f"<GreTunnelEndpoint {self.local_ip}<->{self.remote_ip} "
            f"nets={[str(n) for n in self.networks]}>"
        )
