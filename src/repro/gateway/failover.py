"""Fail-closed shim resilience: deadlines, retries, failover, probes.

GQ couples every flow to a containment server across a real link
(§4, Figure 4), which means verdicts can be late, lost, or never
coming.  The paper's stance for that situation is unambiguous — "when
in doubt, drop" — and this module is its mechanism:

* :class:`RouterResilience` arms a **verdict deadline** on every flow
  entering the SHIM phase.  A missed deadline is reported to the
  failover pool and answered with a bounded, exponentially backed-off
  **retry** — re-homed to a standby containment server when one is
  healthier than the flow's current home.  When the retry budget is
  exhausted the flow is resolved by the **pending policy**: DROP by
  default (fail-closed), or FORWARD for operators who prefer
  availability over containment on a particular subfarm.
* :class:`CsFailoverPool` tracks per-server health
  (``healthy → suspect → down``) from deadline reports, recovers
  servers through periodic **health probes** over the management
  network, and declares **degraded mode** when every server is down.
  In degraded mode new flows never wait on a dead link — they are
  resolved immediately by the pending policy — while the
  :class:`~repro.gateway.safety.SafetyFilter` stays authoritative:
  it runs *before* flow admission and is never bypassed, so the
  outbound rate bounds hold no matter how degraded the verdict plane
  is.  Trigger sweeps are suspended for the duration (an outage is
  not inmate inactivity).

Fail-open is best-effort by construction: a TCP flow whose client
handshake never completed has no ISN mapping to hand off, so it is
dropped even under ``pending_policy="forward"`` (the annotation says
why).  UDP flows and handshake-complete TCP flows fail open cleanly.

Everything here is virtual-clock driven and allocation-free until a
deadline actually misses, and none of it exists unless
``FarmConfig.verdict_deadline`` is set — default farms are
byte-identical to pre-resilience builds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.verdicts import ContainmentDecision, Verdict
from repro.gateway.flows import FlowPhase, FlowRecord
from repro.net.addresses import IPv4Address
from repro.net.packet import PROTO_TCP, SYN, TCPSegment

__all__ = [
    "CsFailoverPool",
    "ResilienceConfig",
    "RouterResilience",
    "fail_open_possible",
    "HEALTHY",
    "SUSPECT",
    "DOWN",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"

PENDING_POLICIES = ("drop", "forward")


def fail_open_possible(proto: int, handshake_complete: bool) -> bool:
    """Can a verdict-starved flow fail open under
    ``pending_policy="forward"``?

    The single source of truth shared by the live router
    (:meth:`RouterResilience._can_fail_open`) and the isolation
    verifier's transition model (:mod:`repro.verify`): UDP always can;
    a TCP flow only once its client handshake completed and the shim
    was injected — before that there is no ISN mapping to hand off, so
    the flow drops regardless of policy.
    """
    if proto != PROTO_TCP:
        return True
    return handshake_complete


class ResilienceConfig:
    """Knobs for one subfarm's shim resilience."""

    __slots__ = ("verdict_deadline", "verdict_retries", "retry_backoff",
                 "pending_policy", "probe_interval", "failure_threshold")

    def __init__(self, verdict_deadline: float, verdict_retries: int = 2,
                 retry_backoff: float = 2.0, pending_policy: str = "drop",
                 probe_interval: float = 5.0,
                 failure_threshold: int = 2) -> None:
        if verdict_deadline <= 0.0:
            raise ValueError("verdict_deadline must be > 0")
        if pending_policy not in PENDING_POLICIES:
            raise ValueError(
                f"pending_policy must be one of {PENDING_POLICIES}")
        if retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if verdict_retries < 0:
            raise ValueError("verdict_retries must be >= 0")
        self.verdict_deadline = float(verdict_deadline)
        self.verdict_retries = int(verdict_retries)
        self.retry_backoff = float(retry_backoff)
        self.pending_policy = pending_policy
        self.probe_interval = float(probe_interval)
        self.failure_threshold = max(1, int(failure_threshold))


class CsFailoverPool:
    """Health state machine over a router's containment-server list.

    ``healthy`` servers take new flows as usual (sticky by VLAN); a
    missed verdict deadline moves a server to ``suspect`` and, at
    ``failure_threshold`` misses, to ``down``.  Down and suspect
    servers are probed every ``probe_interval`` virtual seconds via
    the ``prober`` callable (wired by the subfarm to the server's
    management-network health check); a passing probe restores
    ``healthy``.  All servers down ⇒ *degraded mode* (callbacks fire
    on entry and exit)."""

    def __init__(self, sim, router, config: ResilienceConfig,
                 prober: Callable[[IPv4Address], bool]) -> None:
        self.sim = sim
        self.router = router
        self.config = config
        self.prober = prober
        self.on_degraded: Optional[Callable[[], None]] = None
        self.on_recovered: Optional[Callable[[], None]] = None
        self._states: Dict[IPv4Address, str] = {}
        self._failures: Dict[IPv4Address, int] = {}
        self.transitions: List[list] = []  # [time, ip, state]
        self.probes = 0
        self.degraded_intervals: List[list] = []  # [start, end|None]
        self._probe_armed = False

    # ------------------------------------------------------------------
    def state(self, ip: IPv4Address) -> str:
        return self._states.get(ip, HEALTHY)

    @property
    def degraded(self) -> bool:
        servers = self.router._cs_list
        return bool(servers) and all(
            self._states.get(ip, HEALTHY) == DOWN for ip in servers)

    def select(self, vlan: int) -> Optional[IPv4Address]:
        """Sticky-preferred selection skipping down servers; ``None``
        when every server is down (degraded)."""
        servers = self.router._cs_list
        count = len(servers)
        base = vlan % count
        for offset in range(count):
            ip = servers[(base + offset) % count]
            if self._states.get(ip, HEALTHY) != DOWN:
                return ip
        return None

    # ------------------------------------------------------------------
    def report_timeout(self, ip: IPv4Address) -> None:
        was_degraded = self.degraded
        failures = self._failures.get(ip, 0) + 1
        self._failures[ip] = failures
        if failures >= self.config.failure_threshold:
            self._set_state(ip, DOWN)
        else:
            self._set_state(ip, SUSPECT)
        self._arm_probe()
        if not was_degraded and self.degraded:
            self.degraded_intervals.append([self.sim.now, None])
            if self.on_degraded is not None:
                self.on_degraded()

    def report_verdict(self, ip: IPv4Address) -> None:
        """A genuine verdict arrived from ``ip`` — it is alive."""
        if self._states.get(ip, HEALTHY) == HEALTHY \
                and not self._failures.get(ip):
            return
        self._mark_healthy(ip)

    def _mark_healthy(self, ip: IPv4Address) -> None:
        was_degraded = self.degraded
        self._failures[ip] = 0
        self._set_state(ip, HEALTHY)
        if was_degraded and not self.degraded:
            if self.degraded_intervals \
                    and self.degraded_intervals[-1][1] is None:
                self.degraded_intervals[-1][1] = self.sim.now
            if self.on_recovered is not None:
                self.on_recovered()

    def _set_state(self, ip: IPv4Address, state: str) -> None:
        if self._states.get(ip, HEALTHY) != state:
            self._states[ip] = state
            self.transitions.append([self.sim.now, str(ip), state])
            journal = self.sim.journal
            if journal.enabled:
                journal.record("cs.state", server=str(ip), state=state)

    # ------------------------------------------------------------------
    # Health probes: armed only while a server is unhealthy, so a
    # fault-free farm schedules nothing.
    # ------------------------------------------------------------------
    def _arm_probe(self) -> None:
        if self._probe_armed:
            return
        if all(self._states.get(ip, HEALTHY) == HEALTHY
               for ip in self.router._cs_list):
            return
        self._probe_armed = True
        self.sim.schedule(self.config.probe_interval, self._probe,
                          label="cs-health-probe")

    def _probe(self) -> None:
        self._probe_armed = False
        for ip in list(self.router._cs_list):
            if self._states.get(ip, HEALTHY) == HEALTHY:
                continue
            self.probes += 1
            if self.prober(ip):
                self._mark_healthy(ip)
        self._arm_probe()

    def degraded_seconds(self, now: float) -> float:
        total = 0.0
        for start, end in self.degraded_intervals:
            total += (end if end is not None else now) - start
        return total


class RouterResilience:
    """Verdict deadlines, bounded retry, and pending-policy resolution
    for one :class:`~repro.gateway.router.SubfarmRouter`."""

    def __init__(self, sim, router, config: ResilienceConfig,
                 pool: CsFailoverPool, subfarm: str,
                 trigger_engine=None) -> None:
        self.sim = sim
        self.router = router
        self.config = config
        self.pool = pool
        self.subfarm = subfarm
        self.trigger_engine = trigger_engine
        # Decision journal (NULL_JOURNAL unless the farm attached one).
        self.journal = sim.journal
        pool.on_degraded = self._enter_degraded
        pool.on_recovered = self._exit_degraded

        self.fail_closed = 0
        self.fail_open = 0
        self.retries = 0
        self.failovers = 0
        self.degraded_refusals = 0

        tel = sim.telemetry
        self._m_fail_closed = tel.counter(
            "resilience.fail_closed",
            "Flows resolved by the fail-closed pending policy"
        ).bind(subfarm=subfarm)
        self._m_retries = tel.counter(
            "resilience.retries", "Shim verdict delivery retries"
        ).bind(subfarm=subfarm)
        self._m_failovers = tel.counter(
            "resilience.failovers",
            "Flows re-homed to a standby containment server"
        ).bind(subfarm=subfarm)
        self._g_degraded = tel.gauge(
            "resilience.degraded",
            "1 while every containment server is down"
        ).bind(subfarm=subfarm)
        self._g_degraded.set(0.0)
        self._h_attempts = tel.histogram(
            "resilience.verdict.attempts",
            "Shim delivery attempts per deadline-missing flow",
            buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0),
        ).bind(subfarm=subfarm)

    # ------------------------------------------------------------------
    # Degraded-mode state machine hooks
    # ------------------------------------------------------------------
    def _enter_degraded(self) -> None:
        self._g_degraded.set(1.0)
        if self.journal.enabled:
            self.journal.record("degraded.entered", subfarm=self.subfarm)
        if self.trigger_engine is not None:
            # An outage is not inmate inactivity: absence-of-activity
            # triggers must not mass-revert the subfarm.
            self.trigger_engine.suspend()

    def _exit_degraded(self) -> None:
        self._g_degraded.set(0.0)
        if self.journal.enabled:
            self.journal.record("degraded.exited", subfarm=self.subfarm)
        if self.trigger_engine is not None:
            self.trigger_engine.resume()

    # ------------------------------------------------------------------
    # New-flow hook (called from SubfarmRouter._new_flow)
    # ------------------------------------------------------------------
    def handle_new_flow(self, record: FlowRecord) -> bool:
        """Pick the flow's containment server.  Returns ``True`` when
        the pool is degraded and the flow was resolved immediately by
        the pending policy (the caller must not open a CS leg)."""
        cs_ip = self.pool.select(record.vlan)
        if cs_ip is not None:
            record.cs_ip = cs_ip
            return False
        self.degraded_refusals += 1
        self._apply_pending(record, annotation="containment degraded")
        return True

    def arm(self, record: FlowRecord) -> None:
        """Start the verdict deadline clock for a just-coupled flow."""
        self.sim.schedule(self.config.verdict_deadline, self._check,
                          record, 1, label="verdict-deadline")

    def note_verdict(self, cs_ip: IPv4Address) -> None:
        self.pool.report_verdict(cs_ip)

    # ------------------------------------------------------------------
    # Deadline machinery
    # ------------------------------------------------------------------
    def _check(self, record: FlowRecord, attempt: int) -> None:
        if record.decision is not None \
                or record.phase is not FlowPhase.SHIM:
            return  # verdict arrived, or the flow died some other way
        if self.journal.enabled:
            self.journal.record(
                "failover.deadline",
                flow=self.router._trace_ids.get(record.mux_port),
                vlan=record.vlan, attempt=attempt,
                server=str(record.cs_ip))
        self.pool.report_timeout(record.cs_ip)
        if attempt > self.config.verdict_retries:
            self._h_attempts.observe(float(attempt))
            self._apply_pending(record,
                                annotation="verdict deadline exceeded")
            return
        if self._retry(record):
            return  # resolved inline (pool fully degraded)
        delay = self.config.verdict_deadline \
            * (self.config.retry_backoff ** attempt)
        self.sim.schedule(delay, self._check, record, attempt + 1,
                          label="verdict-deadline")

    def _retry(self, record: FlowRecord) -> bool:
        """One bounded retry.  Returns ``True`` if the flow was
        resolved inline instead (no healthy server left)."""
        target = self.pool.select(record.vlan)
        if target is None:
            self._apply_pending(record, annotation="containment degraded")
            return True
        self.retries += 1
        self._m_retries.inc()
        if self.journal.enabled:
            self.journal.record(
                "failover.retry",
                flow=self.router._trace_ids.get(record.mux_port),
                vlan=record.vlan, target=str(target))
        router = self.router
        if target != record.cs_ip:
            self.failovers += 1
            self._m_failovers.inc()
            self._rehome(record, target)
            return False
        if record.orig.proto == PROTO_TCP:
            # Same server: retransmit only while the handshake never
            # completed.  The TCP substrate has no retransmission, so a
            # lost SYN is gone without this; but a duplicate segment on
            # an established leg could corrupt the shim stream, so an
            # established-but-silent leg just waits for the next
            # deadline (or a failover).
            if record.cs_isn is None:
                self._resend_syn(record)
        else:
            self._resend_udp(record)
        return False

    def _rehome(self, record: FlowRecord, target: IPv4Address) -> None:
        """Move a pending flow to a standby containment server."""
        if self.journal.enabled:
            self.journal.record(
                "failover.rehome",
                flow=self.router._trace_ids.get(record.mux_port),
                vlan=record.vlan, source=str(record.cs_ip),
                target=str(target))
        record.cs_ip = target
        if record.orig.proto != PROTO_TCP:
            self._resend_udp(record)
            return
        # If the client already handshook against the old leg, the new
        # SYN-ACK must not reach it — the router completes the fresh
        # handshake itself and replays the shim plus buffered payload
        # (the same replay idiom _complete_handoff uses toward enforced
        # destinations).
        record.cs_handshake_replay = record.cs_isn is not None
        record.cs_isn = None
        record.c2s_inj = 0
        record.s2c_rem = 0
        record.shim_injected = False
        record.shim_buffer.clear()
        self._resend_syn(record)

    def _resend_syn(self, record: FlowRecord) -> None:
        syn = TCPSegment(
            sport=record.orig.orig_port, dport=record.orig.resp_port,
            seq=record.client_isn, flags=SYN,
        )
        self.router._send_to_cs_tcp(record, syn)

    def _resend_udp(self, record: FlowRecord) -> None:
        if record.udp_pending:
            self.router._send_to_cs_udp(record, record.udp_pending[0])

    # ------------------------------------------------------------------
    # Pending-policy resolution
    # ------------------------------------------------------------------
    def _apply_pending(self, record: FlowRecord, annotation: str) -> None:
        decision = self._pending_decision(record, annotation)
        if self.journal.enabled:
            self.journal.record(
                "failover.pending",
                flow=self.router._trace_ids.get(record.mux_port),
                vlan=record.vlan, verdict=decision.verdict.label,
                policy=decision.policy, annotation=annotation)
        if decision.verdict is Verdict.DROP:
            self.fail_closed += 1
            self._m_fail_closed.inc()
        else:
            self.fail_open += 1
        if record.orig.proto == PROTO_TCP:
            self.router._apply_decision(record, decision)
        else:
            self.router._apply_udp_decision(record, decision, b"")

    def _pending_decision(self, record: FlowRecord,
                          annotation: str) -> ContainmentDecision:
        if self.config.pending_policy == "forward" \
                and self._can_fail_open(record):
            return ContainmentDecision.forward(policy="fail-open",
                                               annotation=annotation)
        return ContainmentDecision.drop(policy="fail-closed",
                                        annotation=annotation)

    @staticmethod
    def _can_fail_open(record: FlowRecord) -> bool:
        return fail_open_possible(
            record.orig.proto,
            record.cs_isn is not None and record.shim_injected)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-safe degradation summary for reports and shard
        payloads."""
        now = self.sim.now
        pool = self.pool
        return {
            "pending_policy": self.config.pending_policy,
            "verdict_deadline": self.config.verdict_deadline,
            "fail_closed": self.fail_closed,
            "fail_open": self.fail_open,
            "retries": self.retries,
            "failovers": self.failovers,
            "degraded_refusals": self.degraded_refusals,
            "servers": {str(ip): pool.state(ip)
                        for ip in self.router._cs_list},
            "transitions": [list(t) for t in pool.transitions],
            "probes": pool.probes,
            "degraded_intervals": [
                [start, end] for start, end in pool.degraded_intervals],
            "degraded_seconds": round(pool.degraded_seconds(now), 9),
        }
