"""Per-flow containment state in the gateway.

Every flow to or from an inmate gets a :class:`FlowRecord` tracking its
journey through containment:

1. ``SHIM`` — the flow is physically coupled to the containment
   server: the gateway rewrote its destination to the server's fixed
   address/port, injected the request shim into the byte stream
   (bumping subsequent sequence numbers), and is watching the return
   stream for the response shim (which it strips, unbumping).
2. ``ENFORCED`` — verdict known.  FORWARD/LIMIT/REDIRECT/REFLECT flows
   were handed off: the gateway replayed the originator's SYN (and any
   buffered payload) toward the enforced destination and now performs
   pure packet-level translation — the containment server is out of
   the path, exactly as §5.4 prescribes ("the gateway alone enforces
   endpoint control, conserving resources on the containment server").
   REWRITE flows stay coupled to the containment server for life.
3. ``DROPPED`` / ``REFUSED`` — terminal.

The sequence-number bookkeeping matches Figure 5:

* ``c2s_inj`` — bytes the gateway injected into the originator→server
  stream (the 24-byte request shim).
* ``s2c_rem`` — bytes it removed from the server→originator stream
  (the ≥56-byte response shim).
* After handoff, ``isn_delta = cs_isn − dst_isn`` translates between
  the ISN the originator handshook with (the containment server's) and
  the enforced destination's.
"""

from __future__ import annotations

import enum
from typing import Deque, Optional

from collections import deque

from repro.core.verdicts import ContainmentDecision
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import UDPDatagram


class FlowPhase(enum.Enum):
    """Where a flow stands in its containment journey."""

    SHIM = "shim"          # coupled to the containment server, verdict pending
    HANDOFF = "handoff"    # SYN sent to the enforced destination
    ENFORCED = "enforced"  # verdict being enforced by the gateway alone
    DROPPED = "dropped"    # DROP verdict applied
    REFUSED = "refused"    # safety filter refused the flow
    CLOSED = "closed"


class FlowRecord:
    """Containment state for one flow."""

    def __init__(
        self,
        orig: FiveTuple,
        vlan: int,
        inmate_is_originator: bool,
        created_at: float,
        mux_port: int,
        nonce_port: int,
    ) -> None:
        # ``orig`` is the five-tuple exactly as the originator sent it:
        # internal addresses for inmate-originated flows, the inmate's
        # *global* address as destination for inbound flows.
        self.orig = orig
        self.vlan = vlan
        self.inmate_is_originator = inmate_is_originator
        self.created_at = created_at
        self.last_activity = created_at
        self.mux_port = mux_port
        self.nonce_port = nonce_port

        self.phase = FlowPhase.SHIM
        self.decision: Optional[ContainmentDecision] = None
        # Which containment server handles this flow (cluster mode);
        # assigned by the router at creation.
        self.cs_ip: Optional[IPv4Address] = None

        # TCP relay state ------------------------------------------------
        self.client_isn: Optional[int] = None
        self.cs_isn: Optional[int] = None
        self.dst_isn: Optional[int] = None
        self.c2s_inj = 0
        self.s2c_rem = 0
        self.shim_injected = False
        # Set while a resilience re-home awaits the fresh SYN-ACK of a
        # standby containment server: the client already handshook, so
        # the router completes the new leg itself (see
        # SubfarmRouter._replay_cs_handshake).
        self.cs_handshake_replay = False
        self.shim_buffer = bytearray()   # server->client bytes pending shim parse
        self.client_buffer = bytearray() # client payload buffered for handoff
        self.client_fin = False
        self.client_fin_relayed = False
        self.c2s_bytes = 0
        self.s2c_bytes = 0
        self.c2s_packets = 0
        self.s2c_packets = 0

        # Enforced destination (post-verdict). ---------------------------
        self.dst_ip: Optional[IPv4Address] = None
        self.dst_port: Optional[int] = None
        self.dst_is_inmate_vlan: Optional[int] = None  # crosstalk target
        self.nat_global: Optional[IPv4Address] = None
        # REFLECT keeps the original (spoofed) destination address in
        # the packets while physically delivering them to the sink, so
        # the sink can see what the specimen actually dialled.
        self.spoof_preserve = False

        # UDP state -------------------------------------------------------
        self.udp_pending: Deque[UDPDatagram] = deque()

        # REWRITE upstream (nonce) leg -------------------------------------
        self.nonce_active = False

        # LIMIT shaping ----------------------------------------------------
        self.shaper: Optional["TokenBucket"] = None

        # Router bookkeeping ----------------------------------------------
        # Every directed tuple this record registered in the router's
        # flow index, so eviction is O(aliases) instead of an O(table)
        # scan; and the tuples carrying compiled fast-path handlers.
        self.index_keys: list = []
        self.fast_keys: list = []

    # ------------------------------------------------------------------
    @property
    def isn_delta(self) -> int:
        """cs_isn - dst_isn, the server-side ISN translation."""
        if self.cs_isn is None or self.dst_isn is None:
            raise RuntimeError("ISNs not yet known")
        return (self.cs_isn - self.dst_isn) % (1 << 32)

    @property
    def verdict_name(self) -> str:
        if self.phase == FlowPhase.REFUSED:
            return "REFUSED"
        if self.decision is None:
            return "PENDING"
        return self.decision.verdict.label

    def touch(self, now: float) -> None:
        self.last_activity = now

    def __repr__(self) -> str:
        return (
            f"<FlowRecord {self.orig} vlan={self.vlan} {self.phase.value} "
            f"verdict={self.verdict_name}>"
        )


class TokenBucket:
    """Byte-budget shaper for LIMIT verdicts.

    Shaping (delaying) rather than policing (dropping) — the farm's
    TCP substrate has no retransmission, and a real deployment prefers
    not to break the flow either, merely to slow it.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = burst if burst is not None else max(rate, 1500.0)
        self._tokens = self.burst
        self._last = 0.0

    def delay_for(self, now: float, size: int) -> float:
        """Seconds to hold a packet of ``size`` bytes sent at ``now``.

        The balance may go negative (debt), so a burst of packets
        arriving at the same instant is serialized at the configured
        rate rather than each seeing only its own deficit.
        """
        elapsed = max(0.0, now - self._last)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now
        self._tokens -= size
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate


class FlowLogEntry:
    """One line of the gateway's flow log, consumed by reporting."""

    __slots__ = ("timestamp", "vlan", "orig", "verdict", "policy",
                 "annotation", "inmate_is_originator")

    def __init__(self, timestamp: float, record: FlowRecord) -> None:
        self.timestamp = timestamp
        self.vlan = record.vlan
        self.orig = record.orig
        self.verdict = record.verdict_name
        decision = record.decision
        self.policy = decision.policy if decision else ""
        self.annotation = decision.annotation if decision else ""
        self.inmate_is_originator = record.inmate_is_originator

    def __repr__(self) -> str:
        return (
            f"<FlowLog t={self.timestamp:.1f} vlan={self.vlan} "
            f"{self.verdict} {self.orig}>"
        )
