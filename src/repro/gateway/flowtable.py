"""OpenFlow-style exact-match flow tables for the gateway fast path.

PR 2 compiled post-verdict forwarding into per-flow Python closures.
This module replaces those closures with *match-action table entries*:
pure data — ports, an address pair, sequence-number deltas, an emission
code, and timeout parameters — interpreted by a small set of shared
executor functions.  Rules-as-data is the property the ROADMAP needs
for live policy reconfiguration: an entry can be inspected, journaled,
dumped (examples/flowtable_dump.py), aged out on the virtual clock,
and re-installed on the next table miss, none of which a closure
allows.

The table is exact-match on the directed int tuple
``(src_ip, sport, dst_ip, dport, proto)`` (``SubfarmRouter._fp_key``);
the VLAN is implicit in the inmate-side addressing each entry inherits
from its flow record.  A miss — no entry, an idle/hard timeout
expired, or a state-changing segment (SYN/RST) — falls through to the
containment slow path byte-identically to PR 2's closure fallback.
In OpenFlow terms: install/evict is ``ofp_flow_mod`` add/delete, the
slow path is the controller, and ``_dispatch_known`` is packet-in.

Timeout semantics (both default off, so the steady-state probe pays a
single float compare):

* *hard* — the entry dies ``hard_timeout`` virtual seconds after
  install, unconditionally (``expires_at``).
* *idle* — the entry dies once the flow has seen no activity for
  ``idle_timeout`` virtual seconds, judged against the record's
  ``last_activity`` (the same clock ``expire_idle_flows`` uses, so the
  two aging mechanisms cannot disagree about what "idle" means).

Executors run with ``(router, entry, packet)`` and translate PR 2's
closure bodies statement-for-statement; every counter ordering quirk
(e.g. the REWRITE return leg bumping ``s2c_packets`` before its RST
check and ``s2c_bytes`` after emission) is preserved so fast path,
slow path, and batch path stay byte- and counter-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.packet import (
    ACK,
    FIN,
    IPv4Packet,
    PROTO_TCP,
    PROTO_UDP,
    RST,
    SYN,
    UDPDatagram,
)

_MASK = 0xFFFFFFFF
_INF = float("inf")

# Action kinds: which executor interprets the entry.
ACT_TCP_C2D = 0    # endpoint verdicts, originator -> enforced destination
ACT_TCP_D2C = 1    # endpoint verdicts, destination -> originator
ACT_TCP_C2CS = 2   # REWRITE, originator -> containment server
ACT_TCP_CS2C = 3   # REWRITE, containment server -> originator
ACT_UDP_C2D = 4
ACT_UDP_D2C = 5
ACT_UDP_C2CS = 6   # REWRITE UDP request leg (shim prefix re-injected)
ACT_DROP_TCP = 7
ACT_DROP_UDP = 8

KIND_NAMES = {
    ACT_TCP_C2D: "tcp-c2d",
    ACT_TCP_D2C: "tcp-d2c",
    ACT_TCP_C2CS: "tcp-c2cs",
    ACT_TCP_CS2C: "tcp-cs2c",
    ACT_UDP_C2D: "udp-c2d",
    ACT_UDP_D2C: "udp-d2c",
    ACT_UDP_C2CS: "udp-c2cs",
    ACT_DROP_TCP: "drop-tcp",
    ACT_DROP_UDP: "drop-udp",
}

# Emission codes: where the translated packet leaves the router.
EMIT_VLAN = 0      # emit_arg = VLAN id
EMIT_SERVICE = 1   # emit_arg = service IPv4Address
EMIT_UPSTREAM = 2  # emit_arg unused
EMIT_CS = 3        # emit_arg = containment-server IPv4Address (fault seam)


class FlowEntry:
    """One match-action rule: pure data plus a shared executor ref.

    ``seq_delta``/``ack_delta`` are mod-2^32 *adders* (negative shifts
    stored as their two's complement residue), so every translation is
    the same ``(value + delta) & 0xFFFFFFFF`` regardless of direction.
    """

    __slots__ = (
        "key", "kind", "record", "run",
        "out_sport", "out_dport", "src_ip", "dst_ip",
        "seq_delta", "ack_delta",
        "emit_code", "emit_arg", "shaped", "payload_prefix",
        "hits", "installed_at", "idle_timeout", "expires_at",
    )

    def __init__(self, key, kind, record, out_sport, out_dport,
                 src_ip, dst_ip, seq_delta=0, ack_delta=0,
                 emit_code=EMIT_UPSTREAM, emit_arg=None, shaped=False,
                 payload_prefix=b"", installed_at=0.0,
                 idle_timeout=None, hard_timeout=None):
        self.key = key
        self.kind = kind
        self.record = record
        self.run = _EXECUTORS[kind]
        self.out_sport = out_sport
        self.out_dport = out_dport
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.seq_delta = seq_delta
        self.ack_delta = ack_delta
        self.emit_code = emit_code
        self.emit_arg = emit_arg
        self.shaped = shaped
        self.payload_prefix = payload_prefix
        self.hits = 0
        self.installed_at = installed_at
        self.idle_timeout = idle_timeout
        self.expires_at = (installed_at + hard_timeout
                          if hard_timeout is not None else _INF)

    @property
    def owner(self):
        """The FlowRecord this rule enforces (eviction identity guard)."""
        return self.record

    def expired(self, now: float) -> bool:
        return now >= self.expires_at or (
            self.idle_timeout is not None
            and now - self.record.last_activity >= self.idle_timeout)

    def timeout_reason(self, now: float) -> str:
        return "hard" if now >= self.expires_at else "idle"

    def describe(self) -> dict:
        """Flow_mod-style view of the rule for dumps and the report."""
        return {
            "match": {
                "src": self.key[0], "sport": self.key[1],
                "dst": self.key[2], "dport": self.key[3],
                "proto": self.key[4],
            },
            "action": KIND_NAMES[self.kind],
            "out_sport": self.out_sport,
            "out_dport": self.out_dport,
            "seq_delta": self.seq_delta,
            "ack_delta": self.ack_delta,
            "emit": ("vlan", "service", "upstream", "cs")[self.emit_code],
            "shaped": self.shaped,
            "hits": self.hits,
            "installed_at": self.installed_at,
            "idle_timeout": self.idle_timeout,
            "hard_expires_at": (None if self.expires_at == _INF
                                else self.expires_at),
            "vlan": self.record.vlan,
            "phase": self.record.phase.value,
            "verdict": self.record.verdict_name,
        }

    def __repr__(self) -> str:
        return (f"<FlowEntry {KIND_NAMES[self.kind]} {self.key} "
                f"hits={self.hits}>")


class FlowTable:
    """One subfarm's exact-match table plus its counters.

    ``entries`` is the raw probe dict — the router aliases it as
    ``_fastpath`` so the per-packet path is still one C-level dict hit.
    Stats are plain ints bumped on the packet path; telemetry cells are
    synchronized at flow-rate events (install/evict/sweep/stats) so
    observation never costs the datapath anything.
    """

    def __init__(self, name: str, telemetry=None) -> None:
        self.name = name
        self.entries: Dict[tuple, FlowEntry] = {}
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.evictions = 0
        self.timeout_idle = 0
        self.timeout_hard = 0
        tel = telemetry
        if tel is not None:
            self._g_occupancy = tel.gauge(
                "flowtable.occupancy", "Installed flow-table entries"
            ).bind(subfarm=name)
            self._c_hits = tel.counter(
                "flowtable.hits", "Flow-table probe hits").bind(subfarm=name)
            self._c_misses = tel.counter(
                "flowtable.misses",
                "Flow-table misses (slow-path packets)").bind(subfarm=name)
            self._c_installs = tel.counter(
                "flowtable.installs", "Entries installed").bind(subfarm=name)
            self._c_timeout_idle = tel.counter(
                "flowtable.evictions.timeout", "Entries aged out"
            ).bind(subfarm=name, reason="idle")
            self._c_timeout_hard = tel.counter(
                "flowtable.evictions.timeout", "Entries aged out"
            ).bind(subfarm=name, reason="hard")
        else:
            self._g_occupancy = None
        self._synced = [0, 0, 0, 0, 0]

    def __len__(self) -> int:
        return len(self.entries)

    def sync_metrics(self) -> None:
        """Mirror the plain-int stats into telemetry cells (monotonic
        deltas, so disabled telemetry costs nothing here either)."""
        if self._g_occupancy is None:
            return
        self._g_occupancy.set(float(len(self.entries)))
        synced = self._synced
        for index, (count, cell) in enumerate((
            (self.hits, self._c_hits),
            (self.misses, self._c_misses),
            (self.installs, self._c_installs),
            (self.timeout_idle, self._c_timeout_idle),
            (self.timeout_hard, self._c_timeout_hard),
        )):
            delta = count - synced[index]
            if delta:
                cell.inc(delta)
                synced[index] = count

    def stats(self) -> dict:
        self.sync_metrics()
        return {
            "occupancy": len(self.entries),
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "evictions": self.evictions,
            "timeout_evictions": {"idle": self.timeout_idle,
                                  "hard": self.timeout_hard},
        }

    def snapshot(self) -> List[dict]:
        """Describe every installed rule (stable order: install time,
        then key) — the ``flow dump`` equivalent."""
        return [entry.describe() for entry in
                sorted(self.entries.values(),
                       key=lambda e: (e.installed_at, e.key))]

    def expired_entries(self, now: float) -> List[FlowEntry]:
        return [entry for entry in self.entries.values()
                if entry.expired(now)]

    def world_grants(self) -> List[dict]:
        """Every installed rule that emits toward the upstream trunk,
        as abstract ``(vlan, proto, dport, verdict)`` tuples.

        This is the compiled-plane evidence the isolation verifier
        checks against a certificate's grant table: an upstream-emitting
        entry outside any certified grant is a leak in the *installed*
        rules even if no packet has hit it yet (the P4Control stance —
        verify what was compiled, not just what was decided).
        """
        grants = []
        for entry in sorted(self.entries.values(),
                            key=lambda e: (e.installed_at, e.key)):
            if entry.emit_code != EMIT_UPSTREAM:
                continue
            record = entry.record
            grants.append({
                "vlan": record.vlan,
                "proto": entry.key[4],
                "dport": entry.out_dport,
                "dst": str(entry.dst_ip),
                "verdict": record.verdict_name,
                "kind": KIND_NAMES[entry.kind],
            })
        return grants


# ----------------------------------------------------------------------
# Scalar executors — statement-for-statement translations of the PR 2
# closures.  ``entry.run(router, entry, packet)`` is the whole calling
# convention; nothing here may allocate per-flow state.
# ----------------------------------------------------------------------

def _run_tcp_c2d(router, entry, packet):
    segment = packet.payload
    flags = segment.flags
    if flags & 0x06:  # SYN or RST: state-changing, packet-in
        router._dispatch_known(entry.record, packet, entry.record.orig)
        return
    record = entry.record
    record.last_activity = router.sim.now
    record.c2s_packets += 1
    record.c2s_bytes += len(segment.payload)
    ack = ((segment.ack + entry.ack_delta) & _MASK
           if flags & ACK else segment.ack)
    out = segment.rebind(entry.out_sport, entry.out_dport, segment.seq, ack)
    router.counters["packets_relayed"] += 1
    router._m_packets.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_TCP))


def _run_tcp_d2c(router, entry, packet):
    segment = packet.payload
    record = entry.record
    record.last_activity = router.sim.now
    record.s2c_packets += 1
    if segment.payload:
        record.s2c_bytes += len(segment.payload)
    ack = ((segment.ack + entry.ack_delta) & _MASK
           if segment.flags & ACK else segment.ack)
    out = segment.rebind(entry.out_sport, entry.out_dport,
                         (segment.seq + entry.seq_delta) & _MASK, ack)
    router.counters["packets_relayed"] += 1
    router._m_packets.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_TCP))


def _run_tcp_c2cs(router, entry, packet):
    segment = packet.payload
    flags = segment.flags
    if flags & 0x06:  # SYN or RST: state-changing, packet-in
        router._dispatch_known(entry.record, packet, entry.record.orig)
        return
    record = entry.record
    record.last_activity = router.sim.now
    record.c2s_packets += 1
    record.c2s_bytes += len(segment.payload)
    if flags & FIN:
        record.client_fin = True
    ack = ((segment.ack + entry.ack_delta) & _MASK if flags & ACK else 0)
    out = segment.rebind(entry.out_sport, entry.out_dport,
                         (segment.seq + entry.seq_delta) & _MASK, ack)
    router.counters["packets_relayed"] += 1
    router._m_packets.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_TCP))


def _run_tcp_cs2c(router, entry, packet):
    segment = packet.payload
    record = entry.record
    record.s2c_packets += 1
    if segment.flags & RST:  # server abort: slow path
        router._server_packet_from_cs(record, segment)
        return
    ack = ((segment.ack + entry.ack_delta) & _MASK
           if segment.flags & ACK else segment.ack)
    out = segment.rebind(entry.out_sport, entry.out_dport,
                         (segment.seq + entry.seq_delta) & _MASK, ack)
    router.counters["packets_relayed"] += 1
    router._m_packets.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_TCP))
    if segment.payload:
        record.s2c_bytes += len(segment.payload)


def _run_udp_c2d(router, entry, packet):
    datagram = packet.payload
    record = entry.record
    record.last_activity = router.sim.now
    record.c2s_packets += 1
    record.c2s_bytes += len(datagram.payload)
    out = datagram.rebind(entry.out_sport, entry.out_dport)
    router.counters["packets_relayed"] += 1
    router._m_packets.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_UDP))


def _run_udp_d2c(router, entry, packet):
    record = entry.record
    record.last_activity = router.sim.now
    record.s2c_packets += 1
    payload = packet.payload.payload
    record.s2c_bytes += len(payload)
    out = UDPDatagram(entry.out_sport, entry.out_dport, payload)
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              out, PROTO_UDP))


def _run_udp_c2cs(router, entry, packet):
    datagram = packet.payload
    record = entry.record
    record.last_activity = router.sim.now
    record.c2s_packets += 1
    record.c2s_bytes += len(datagram.payload)
    wrapped = UDPDatagram(entry.out_sport, entry.out_dport,
                          entry.payload_prefix + datagram.payload)
    router.counters["shims_injected"] += 1
    router._m_shims_injected.inc()
    router._emit_entry(entry, IPv4Packet.wrap(entry.src_ip, entry.dst_ip,
                                              wrapped, PROTO_UDP))


def _run_drop_tcp(router, entry, packet):
    if packet.payload.flags & SYN:  # may be a new incarnation
        router._dispatch_known(entry.record, packet, entry.record.orig)
        return
    entry.record.last_activity = router.sim.now


def _run_drop_udp(router, entry, packet):
    entry.record.last_activity = router.sim.now


_EXECUTORS = {
    ACT_TCP_C2D: _run_tcp_c2d,
    ACT_TCP_D2C: _run_tcp_d2c,
    ACT_TCP_C2CS: _run_tcp_c2cs,
    ACT_TCP_CS2C: _run_tcp_cs2c,
    ACT_UDP_C2D: _run_udp_c2d,
    ACT_UDP_D2C: _run_udp_d2c,
    ACT_UDP_C2CS: _run_udp_c2cs,
    ACT_DROP_TCP: _run_drop_tcp,
    ACT_DROP_UDP: _run_drop_udp,
}

#: Kinds the batched engine may vectorize over a same-key run.  Shaped
#: entries are excluded at run-detection time (the token bucket is
#: per-packet stateful), and runs containing state-changing flags fall
#: back row-by-row to the scalar executors.
BATCHABLE_KINDS = frozenset(_EXECUTORS)


# ----------------------------------------------------------------------
# Batched (object-mode) execution: one entry, a run of packets.
# ----------------------------------------------------------------------

def execute_run(router, entry, packets) -> None:
    """Vectorized execution of a same-entry run of IPv4Packet objects.

    Counters are bulk-applied, sequence translations run as one
    comprehension per column (struct-of-arrays over Python lists), and
    emission stays per-row in arrival order so wire output is
    byte-identical to scalar execution.  Runs containing SYN/RST (or a
    DROP run containing SYN) degrade row-by-row to the scalar
    executors, which own all state transitions.
    """
    kind = entry.kind
    run = entry.run
    if kind in (ACT_DROP_TCP, ACT_DROP_UDP):
        if kind == ACT_DROP_TCP and any(
                p.payload.flags & SYN for p in packets):
            for packet in packets:
                run(router, entry, packet)
            return
        entry.record.last_activity = router.sim.now
        return

    if kind in (ACT_TCP_C2D, ACT_TCP_C2CS) and any(
            p.payload.flags & 0x06 for p in packets):
        for packet in packets:
            run(router, entry, packet)
        return
    if kind == ACT_TCP_CS2C and any(
            p.payload.flags & RST for p in packets):
        for packet in packets:
            run(router, entry, packet)
        return

    record = entry.record
    counters = router.counters
    n = len(packets)
    emit = router._emit_entry
    wrap = IPv4Packet.wrap
    src_ip, dst_ip = entry.src_ip, entry.dst_ip
    sport, dport = entry.out_sport, entry.out_dport

    if kind == ACT_TCP_C2D or kind == ACT_TCP_C2CS or kind == ACT_TCP_CS2C \
            or kind == ACT_TCP_D2C:
        segs = [p.payload for p in packets]
        sd = entry.seq_delta
        ad = entry.ack_delta
        if kind == ACT_TCP_C2CS:
            acks = [(s.ack + ad) & _MASK if s.flags & ACK else 0
                    for s in segs]
        else:
            acks = [(s.ack + ad) & _MASK if s.flags & ACK else s.ack
                    for s in segs]
        seqs = ([(s.seq + sd) & _MASK for s in segs] if sd
                else [s.seq for s in segs])
        nbytes = sum(len(s.payload) for s in segs)
        if kind == ACT_TCP_C2D or kind == ACT_TCP_C2CS:
            record.last_activity = router.sim.now
            record.c2s_packets += n
            record.c2s_bytes += nbytes
            if kind == ACT_TCP_C2CS and any(s.flags & FIN for s in segs):
                record.client_fin = True
        elif kind == ACT_TCP_D2C:
            record.last_activity = router.sim.now
            record.s2c_packets += n
            record.s2c_bytes += nbytes
        else:  # CS2C: no last_activity (slow-path parity)
            record.s2c_packets += n
            record.s2c_bytes += nbytes
        counters["packets_relayed"] += n
        router._m_packets.inc(n)
        for seg, seq, ack in zip(segs, seqs, acks):
            emit(entry, wrap(src_ip, dst_ip,
                             seg.rebind(sport, dport, seq, ack), PROTO_TCP))
        return

    if kind == ACT_UDP_C2D:
        grams = [p.payload for p in packets]
        record.last_activity = router.sim.now
        record.c2s_packets += n
        record.c2s_bytes += sum(len(g.payload) for g in grams)
        counters["packets_relayed"] += n
        router._m_packets.inc(n)
        for gram in grams:
            emit(entry, wrap(src_ip, dst_ip, gram.rebind(sport, dport),
                             PROTO_UDP))
        return

    if kind == ACT_UDP_D2C:
        payloads = [p.payload.payload for p in packets]
        record.last_activity = router.sim.now
        record.s2c_packets += n
        record.s2c_bytes += sum(len(b) for b in payloads)
        for body in payloads:
            emit(entry, wrap(src_ip, dst_ip,
                             UDPDatagram(sport, dport, body), PROTO_UDP))
        return

    # ACT_UDP_C2CS
    prefix = entry.payload_prefix
    grams = [p.payload for p in packets]
    record.last_activity = router.sim.now
    record.c2s_packets += n
    record.c2s_bytes += sum(len(g.payload) for g in grams)
    counters["shims_injected"] += n
    router._m_shims_injected.inc(n)
    for gram in grams:
        emit(entry, wrap(src_ip, dst_ip,
                         UDPDatagram(sport, dport, prefix + gram.payload),
                         PROTO_UDP))
