"""Policy test-case generation and enforcement verification.

Implements two things the paper explicitly wished for:

* §5.4: "ideally mechanisms would exist to verify that developed
  policies operate as intended; we have not implemented such, a
  deficiency of our current system."
* §8: "a traffic generation tool that can automatically produce test
  cases for a given concrete containment policy would strengthen
  confidence in the policy's correctness significantly."

Two layers:

:func:`enumerate_surface`
    Offline: probe a policy object with a generated matrix of
    (direction × port × content) cases and tabulate the verdicts —
    the policy's *decision surface*.  Invariant predicates (e.g.
    "SMTP never leaves the farm") run over the surface.

:func:`verify_enforcement`
    Live: drive generated flows through a real farm and cross-check
    that the gateway's observable behaviour matches the containment
    server's verdicts — catching mechanism/policy mismatches, not just
    policy mistakes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.policy import ContainmentPolicy, PolicyContext
from repro.core.verdicts import ContainmentDecision, Verdict
from repro.net.addresses import IPv4Address
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP

# ----------------------------------------------------------------------
# Probe corpus
# ----------------------------------------------------------------------
DEFAULT_PORTS = [21, 22, 25, 53, 80, 110, 135, 443, 445, 1433, 4443,
                 6667, 8080, 31337]

DEFAULT_CONTENT: Dict[str, bytes] = {
    "empty": b"",
    "http-get": b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n",
    "grum-cnc": b"GET /grum/spm?id=0a1b2c3d HTTP/1.1\r\n\r\n",
    "rustock-beacon": b"GET /stat?r=7&sent=120 HTTP/1.1\r\n\r\n",
    "rustock-cnc": b"GET /mod/cmd?id=0a1b2c3d HTTP/1.1\r\n\r\n",
    "waledac-cnc": b"POST /waledac/ctrl HTTP/1.1\r\n\r\n<lm/>",
    "megad-magic": b"MEGAD\x0100aabbcc",
    "smtp-dialogue": b"HELO wergvan\r\nMAIL FROM:<a@b.c>\r\n",
    "irc-session": b"NICK gqbot\r\nUSER gq 0 * :gq\r\n",
    "sql-injection": b"GET /page.php?id=1;DROP%20TABLE%20users HTTP/1.1\r\n\r\n",
    "raw-binary": bytes(range(48)),
}


class Probe:
    """One generated test case."""

    __slots__ = ("direction", "port", "proto", "content_tag", "content")

    def __init__(self, direction: str, port: int, proto: int,
                 content_tag: str, content: bytes) -> None:
        self.direction = direction
        self.port = port
        self.proto = proto
        self.content_tag = content_tag
        self.content = content

    def __repr__(self) -> str:
        return (f"<Probe {self.direction} :{self.port}/"
                f"{'tcp' if self.proto == PROTO_TCP else 'udp'} "
                f"{self.content_tag}>")


class ProbeOutcome:
    __slots__ = ("probe", "decision")

    def __init__(self, probe: Probe,
                 decision: ContainmentDecision) -> None:
        self.probe = probe
        self.decision = decision

    @property
    def verdict(self) -> str:
        return self.decision.verdict.label

    def __repr__(self) -> str:
        return f"<Outcome {self.probe!r} -> {self.verdict}>"


def generate_probes(
    ports: Optional[List[int]] = None,
    content: Optional[Dict[str, bytes]] = None,
    directions: Tuple[str, ...] = ("outbound", "inbound"),
    protos: Tuple[int, ...] = (PROTO_TCP,),
) -> List[Probe]:
    ports = ports if ports is not None else DEFAULT_PORTS
    content = content if content is not None else DEFAULT_CONTENT
    probes = []
    for direction in directions:
        for proto in protos:
            for port in ports:
                for tag, payload in content.items():
                    probes.append(Probe(direction, port, proto, tag,
                                        payload))
    return probes


# ----------------------------------------------------------------------
# Offline surface enumeration
# ----------------------------------------------------------------------
class SurfaceReport:
    def __init__(self, policy_name: str) -> None:
        self.policy_name = policy_name
        self.outcomes: List[ProbeOutcome] = []
        self.undecided: List[Probe] = []

    def verdict_matrix(self) -> Dict[Tuple[str, int, str], str]:
        return {
            (o.probe.direction, o.probe.port, o.probe.content_tag):
            o.verdict
            for o in self.outcomes
        }

    def forwarded(self) -> List[ProbeOutcome]:
        """The harm surface: everything that leaves the farm."""
        return [o for o in self.outcomes
                if o.decision.verdict & (Verdict.FORWARD | Verdict.LIMIT)]

    def __repr__(self) -> str:
        return (f"<SurfaceReport {self.policy_name}: "
                f"{len(self.outcomes)} probes, "
                f"{len(self.forwarded())} forwarded>")


def enumerate_surface(
    policy: ContainmentPolicy,
    services: Optional[Dict[str, Tuple[IPv4Address, int]]] = None,
    probes: Optional[List[Probe]] = None,
) -> SurfaceReport:
    """Probe the policy offline and tabulate its decision surface."""
    if services is not None and not policy.services:
        policy.services = services
    if not policy.services:
        policy.services = {
            "sink": (IPv4Address("10.3.0.9"), 0),
            "smtp_sink": (IPv4Address("10.3.0.10"), 0),
        }
    probes = probes if probes is not None else generate_probes()
    report = SurfaceReport(policy.policy_name)
    inmate_ip = IPv4Address("10.100.0.2")
    outside_ip = IPv4Address("203.0.113.200")
    for probe in probes:
        if probe.direction == "outbound":
            flow = FiveTuple(inmate_ip, 4321, outside_ip, probe.port,
                             probe.proto)
            inmate_orig = True
        else:
            flow = FiveTuple(outside_ip, 4321, IPv4Address("198.18.0.5"),
                             probe.port, probe.proto)
            inmate_orig = False
        ctx = PolicyContext(flow=flow, vlan_id=2, nonce_port=40000,
                            now=0.0, services=policy.services,
                            inmate_is_originator=inmate_orig)
        decision = policy.decide(ctx)
        if decision is None:
            decision = policy.decide_content(ctx, probe.content)
        if decision is None:
            report.undecided.append(probe)
            continue
        report.outcomes.append(ProbeOutcome(probe, decision))
    return report


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
Invariant = Tuple[str, Callable[[ProbeOutcome], Optional[str]]]


def _no_smtp_escape(outcome: ProbeOutcome) -> Optional[str]:
    if (outcome.probe.port == 25
            and outcome.decision.verdict & (Verdict.FORWARD | Verdict.LIMIT)):
        return "SMTP allowed out of the farm"
    return None


def _no_blanket_forward(outcome: ProbeOutcome) -> Optional[str]:
    if (outcome.probe.content_tag in ("raw-binary", "sql-injection")
            and outcome.decision.verdict & Verdict.FORWARD):
        return "unrecognized/malicious content forwarded"
    return None


STANDARD_INVARIANTS: List[Invariant] = [
    ("no-smtp-escape", _no_smtp_escape),
    ("no-blanket-forward", _no_blanket_forward),
]


def check_invariants(
    report: SurfaceReport,
    invariants: Optional[List[Invariant]] = None,
) -> List[Tuple[str, ProbeOutcome, str]]:
    """Run invariant predicates over a surface; returns violations."""
    invariants = invariants if invariants is not None else STANDARD_INVARIANTS
    violations = []
    for name, predicate in invariants:
        for outcome in report.outcomes:
            message = predicate(outcome)
            if message is not None:
                violations.append((name, outcome, message))
    return violations


# ----------------------------------------------------------------------
# Live enforcement verification
# ----------------------------------------------------------------------
class EnforcementMismatch:
    __slots__ = ("probe", "verdict", "observed")

    def __init__(self, probe: Probe, verdict: str, observed: str) -> None:
        self.probe = probe
        self.verdict = verdict
        self.observed = observed

    def __repr__(self) -> str:
        return (f"<Mismatch {self.probe!r}: verdict={self.verdict} "
                f"but observed={self.observed}>")


def verify_enforcement(
    policy_factory: Callable[[], ContainmentPolicy],
    ports: Optional[List[int]] = None,
    content: Optional[Dict[str, bytes]] = None,
    seed: int = 41,
    duration: float = 400.0,
):
    """Drive generated outbound flows through a real farm and check the
    gateway's observable behaviour against the verdicts issued.

    Returns (verdict_log_summary, mismatches).
    """
    from repro.farm import Farm, FarmConfig
    from repro.services.dhcp import DhcpClient

    ports = ports if ports is not None else [25, 80, 443, 6667]
    content = content if content is not None else {
        "http-get": DEFAULT_CONTENT["http-get"],
        "grum-cnc": DEFAULT_CONTENT["grum-cnc"],
        "smtp-dialogue": DEFAULT_CONTENT["smtp-dialogue"],
    }

    farm = Farm(FarmConfig(seed=seed))
    sub = farm.create_subfarm("verify")
    sink = sub.add_catchall_sink()
    sub.add_smtp_sink()

    witness_ip = IPv4Address("203.0.113.200")
    witness = farm.add_external_host("witness", str(witness_ip))
    witness_seen: List[Tuple[int, bytes]] = []

    def witness_accept(conn):
        # NAT preserves the inmate's source port, so (dst port,
        # src port) identifies the flow for verdict correlation.
        witness_seen.append((conn.local_port, conn.remote_port))

    witness.tcp.listen_any(witness_accept)

    plan = [(port, tag, payload) for port in ports
            for tag, payload in content.items()]

    def image(host):
        def run_plan(configured_host):
            def send_one(index):
                if index >= len(plan):
                    return
                port, _tag, payload = plan[index]
                conn = configured_host.tcp.connect(witness_ip, port)
                if payload:
                    conn.send(payload)
                configured_host.sim.schedule(
                    5.0, send_one, index + 1, label="verify-plan")

            send_one(0)

        DhcpClient(host, on_configured=run_plan).start()

    policy = policy_factory()
    sub.create_inmate(image_factory=image, policy=policy)
    farm.run(until=duration)

    # Cross-check per flow: NAT preserves the inmate's source port, so
    # every verdict's (resp port, orig port) pair correlates with what
    # the witness and the sinks actually saw.
    mismatches: List[EnforcementMismatch] = []
    verdicts = sub.containment_server.verdict_log
    witness_flows = set(witness_seen)
    sink_flows = {(record.dst_port, record.src_port)
                  for record in sink.records}
    smtp_sink = sub.sinks["smtp_sink"]

    for record in verdicts:
        key = (record.flow.resp_port, record.flow.orig_port)
        label = record.decision.verdict.label
        probe = Probe("outbound", record.flow.resp_port, PROTO_TCP,
                      "?", b"")
        if label in ("FORWARD", "FORWARD|LIMIT", "LIMIT"):
            if key not in witness_flows:
                mismatches.append(EnforcementMismatch(
                    probe, label, "never reached the real destination"))
        elif label == "REFLECT":
            landed = (key in sink_flows
                      or (record.flow.resp_port == 25
                          and smtp_sink.sessions_accepted > 0))
            if not landed:
                mismatches.append(EnforcementMismatch(
                    probe, label, "never reached the sink"))
            if key in witness_flows:
                mismatches.append(EnforcementMismatch(
                    probe, label, "LEAKED to the real destination"))
        elif label == "DROP":
            if key in witness_flows:
                mismatches.append(EnforcementMismatch(
                    probe, label, "LEAKED to the real destination"))

    summary = {
        "verdicts": dict(sub.containment_server.verdict_counts),
        "witness_ports": sorted({port for port, _src in witness_flows}),
        "sink_ports": sorted({port for port, _src in sink_flows}),
        "smtp_sink_sessions": smtp_sink.sessions_accepted,
    }
    return summary, mismatches
