"""Analysis utilities: network-level fingerprinting and classification.

§7.1 "Unclear phylogenies": third-party family labels are unreliable,
so GQ's batch-processing setup reflects all outgoing activity to the
catch-all sink and applies network-level fingerprinting to the
samples' initial activity trace — the approach used to classify
roughly 10,000 unique pay-per-install samples.
"""

from repro.analysis.fingerprint import (
    Fingerprint,
    FingerprintClassifier,
    fingerprint_from_sink,
)
from repro.analysis.policy_testing import (
    check_invariants,
    enumerate_surface,
    generate_probes,
    verify_enforcement,
)

__all__ = [
    "Fingerprint",
    "FingerprintClassifier",
    "fingerprint_from_sink",
    "generate_probes",
    "enumerate_surface",
    "check_invariants",
    "verify_enforcement",
]
