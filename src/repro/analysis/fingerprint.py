"""Network-level fingerprinting of a specimen's initial activity.

A fingerprint summarizes what a sample tried on the wire while fully
reflected: the (port, protocol) pairs it dialled and normalized
prefixes of its first payload bytes per service.  Identifiers that
vary per sample or per run — hex ids, counters — are masked, so two
executions of the same family converge on the same token set.

Classification is nearest-prototype by Jaccard similarity over the
token sets, with prototypes learned from a handful of ground-truth
executions per family.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

_HEX_RUN = re.compile(rb"[0-9a-f]{4,}")
_DIGIT_RUN = re.compile(rb"\d+")

TOKEN_LENGTH = 24


def normalize_payload(payload: bytes) -> bytes:
    """Mask volatile identifiers in a payload prefix."""
    prefix = payload[:TOKEN_LENGTH * 2]
    prefix = _HEX_RUN.sub(b"#", prefix)
    prefix = _DIGIT_RUN.sub(b"#", prefix)
    return prefix[:TOKEN_LENGTH]


class Fingerprint:
    """The token set describing one execution's initial activity."""

    __slots__ = ("ports", "tokens")

    def __init__(self, ports: FrozenSet[Tuple[int, str]],
                 tokens: FrozenSet[bytes]) -> None:
        self.ports = ports
        self.tokens = tokens

    @property
    def all_features(self) -> FrozenSet:
        return frozenset(self.ports) | frozenset(
            ("payload", token) for token in self.tokens
        )

    def similarity(self, other: "Fingerprint") -> float:
        """Jaccard similarity over the combined feature sets."""
        mine, theirs = self.all_features, other.all_features
        if not mine and not theirs:
            return 1.0
        union = mine | theirs
        if not union:
            return 0.0
        return len(mine & theirs) / len(union)

    def __repr__(self) -> str:
        return f"<Fingerprint ports={sorted(self.ports)} tokens={len(self.tokens)}>"


def fingerprint_from_sink(records: Iterable) -> Fingerprint:
    """Build a fingerprint from catch-all sink records (the reflected
    initial activity trace)."""
    ports = set()
    tokens = set()
    for record in records:
        ports.add((record.dst_port, record.proto))
        payload = bytes(record.payload)
        if payload:
            tokens.add(normalize_payload(payload))
    return Fingerprint(frozenset(ports), frozenset(tokens))


class FingerprintClassifier:
    """Nearest-prototype classifier over fingerprints."""

    def __init__(self, min_similarity: float = 0.2) -> None:
        self.min_similarity = min_similarity
        self._prototypes: Dict[str, List[Fingerprint]] = {}

    def train(self, family: str, fingerprint: Fingerprint) -> None:
        self._prototypes.setdefault(family, []).append(fingerprint)

    @property
    def families(self) -> List[str]:
        return sorted(self._prototypes)

    def classify(self, fingerprint: Fingerprint) -> Tuple[Optional[str], float]:
        """Returns (family, similarity); family is None below the
        confidence floor (an unknown specimen)."""
        best_family: Optional[str] = None
        best_score = 0.0
        for family, prototypes in self._prototypes.items():
            for prototype in prototypes:
                score = fingerprint.similarity(prototype)
                if score > best_score:
                    best_family, best_score = family, score
        if best_score < self.min_similarity:
            return None, best_score
        return best_family, best_score

    def confusion(
        self,
        labelled: Iterable[Tuple[str, Fingerprint]],
    ) -> Dict[Tuple[str, Optional[str]], int]:
        """Confusion counts over (true family, predicted family)."""
        table: Dict[Tuple[str, Optional[str]], int] = {}
        for truth, fingerprint in labelled:
            predicted, _ = self.classify(fingerprint)
            key = (truth, predicted)
            table[key] = table.get(key, 0) + 1
        return table
