"""Reporting (§6.5) — the Bro-of-GQ.

A shim-protocol analyzer tracks all containment activity on the
inmate network; an SMTP analyzer tracks attempted and successful
message delivery for spambots; the report generator breaks activity
down by subfarm, inmate, and containment decision (Figure 7) and
cross-checks inmate addresses against blacklists.
"""

from repro.reporting.analyzer import (
    ContainmentEvent,
    ShimAnalyzer,
    SmtpActivityAnalyzer,
)
from repro.reporting.health import HealthChecker, HealthWarning
from repro.reporting.report import (
    ActivityReport,
    ReportScheduler,
    render_report,
)

__all__ = [
    "ContainmentEvent",
    "ShimAnalyzer",
    "SmtpActivityAnalyzer",
    "ActivityReport",
    "ReportScheduler",
    "render_report",
    "HealthChecker",
    "HealthWarning",
]
