"""Figure 7: the activity report.

"The reports break down activity by subfarm, inmate, and containment
decision, allowing us to verify that the gateway enforces these
decisions as expected (for example, an unusual number of FORWARD
verdicts might indicate a bug in the policy, and absence of any C&C
REWRITEs would indicate lack of botnet activity).  We also pull in
external information to help us verify containment (for example, we
check all global IP addresses currently used by inmates against
relevant IP blacklists)."

The renderer reproduces the Figure 7 layout: per-subfarm sections,
per-inmate blocks headed by policy name and global/internal address,
verdict groups with per-(annotation, target, port) flow counts, SMTP
session/DATA-transfer totals, and auto-infection MD5s.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import IPv4Address
from repro.reporting.analyzer import (
    ContainmentEvent,
    ShimAnalyzer,
    SmtpActivityAnalyzer,
)

VERDICT_ORDER = ["FORWARD", "LIMIT", "DROP", "REDIRECT", "REFLECT",
                 "REWRITE", "FORWARD|LIMIT", "REDIRECT|REWRITE"]


class InmateActivity:
    """Aggregated activity for one inmate."""

    def __init__(self, vlan: int) -> None:
        self.vlan = vlan
        self.policy = ""
        self.internal_ip: Optional[IPv4Address] = None
        self.global_ip: Optional[IPv4Address] = None
        # verdict -> (annotation, target, port) -> flow count
        self.groups: Dict[str, Dict[Tuple[str, str, int], int]] = {}
        self.smtp_sessions = 0
        self.smtp_data_transfers = 0
        self.blacklisted: Optional[bool] = None

    def add_event(self, event: ContainmentEvent) -> None:
        if event.policy:
            self.policy = event.policy
        key = (event.annotation, str(event.resulting_flow.resp_ip),
               event.resulting_flow.resp_port)
        bucket = self.groups.setdefault(event.verdict, {})
        bucket[key] = bucket.get(key, 0) + 1

    def verdict_total(self, verdict: str) -> int:
        return sum(self.groups.get(verdict, {}).values())


class ActivityReport:
    """The assembled report for one or more subfarms."""

    def __init__(self, title: str = "Inmate Activity") -> None:
        self.title = title
        # subfarm name -> vlan -> activity
        self.subfarms: Dict[str, Dict[int, InmateActivity]] = {}
        self.cs_vlans: Dict[str, Optional[int]] = {}
        # subfarm name -> resilience summary (only for subfarms that
        # ran with the fault plane's resilience layer enabled).
        self.degradation: Dict[str, dict] = {}
        # subfarm name -> malice-barrier summary (only for subfarms
        # whose barrier rejected at least one input).
        self.malformed: Dict[str, dict] = {}
        # subfarm name -> match-action flow-table summary (only for
        # subfarms that installed at least one rule — a fastpath-off
        # run renders exactly as before).
        self.flowtables: Dict[str, dict] = {}
        # Decision-journal snapshot (repro.obs.journal) backing the
        # "Decision audit" section; attached explicitly because the
        # journal is farm-wide, not per-subfarm.
        self.journal: Optional[dict] = None
        # Isolation certificate (repro.verify) plus its runtime
        # coverage report, backing the "Isolation certificate"
        # section; farm-wide like the journal.
        self.certificate: Optional[dict] = None
        self.certificate_coverage: Optional[dict] = None

    def attach_journal(self, snapshot: dict) -> None:
        """Attach a journal snapshot (live, dumped, or campaign-merged)
        so rendering includes the decision-audit section."""
        self.journal = snapshot

    def attach_certificate(self, certificate: dict,
                           coverage: Optional[dict] = None) -> None:
        """Attach an isolation certificate (farm or campaign schema,
        see repro.verify) and optionally its runtime coverage report so
        rendering includes the isolation-certificate section."""
        self.certificate = certificate
        self.certificate_coverage = coverage

    @classmethod
    def from_subfarms(cls, subfarms, blocklist=None,
                      title: str = "Inmate Activity") -> "ActivityReport":
        report = cls(title)
        for subfarm in subfarms:
            report.add_subfarm(subfarm, blocklist)
        return report

    def add_subfarm(self, subfarm, blocklist=None,
                    shims: Optional[ShimAnalyzer] = None,
                    smtp: Optional[SmtpActivityAnalyzer] = None) -> None:
        """Aggregate a subfarm's activity.  Pass pre-attached streaming
        analyzers for runs whose traces rotate (day-scale and longer);
        otherwise they are computed post-hoc from the stored trace."""
        shims = shims if shims is not None else ShimAnalyzer(
            subfarm.router.trace)
        smtp = smtp if smtp is not None else SmtpActivityAnalyzer(
            subfarm.router.trace)
        inmates: Dict[int, InmateActivity] = {}
        for event in shims.events:
            activity = inmates.setdefault(event.vlan,
                                          InmateActivity(event.vlan))
            activity.add_event(event)
        for vlan, activity in inmates.items():
            activity.internal_ip = subfarm.nat.internal_for(vlan)
            activity.global_ip = subfarm.nat.global_for(vlan)
            activity.smtp_sessions = smtp.sessions.get(vlan, 0)
            activity.smtp_data_transfers = smtp.data_transfers.get(vlan, 0)
            if blocklist is not None and activity.global_ip is not None:
                activity.blacklisted = blocklist.listed(activity.global_ip)
        self.subfarms[subfarm.name] = inmates
        self.cs_vlans[subfarm.name] = None
        resilience = getattr(subfarm.router, "resilience", None)
        if resilience is not None:
            self.degradation[subfarm.name] = resilience.summary()
        barrier = getattr(subfarm.router, "barrier", None)
        if barrier is not None and barrier.parse_errors:
            self.malformed[subfarm.name] = barrier.summary()
        flowtable = getattr(subfarm.router, "flowtable", None)
        if flowtable is not None and flowtable.installs:
            summary = flowtable.stats()
            summary["entries"] = flowtable.snapshot()
            self.flowtables[subfarm.name] = summary

    # ------------------------------------------------------------------
    def verdict_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for inmates in self.subfarms.values():
            for activity in inmates.values():
                for verdict, bucket in activity.groups.items():
                    totals[verdict] = totals.get(verdict, 0) + sum(
                        bucket.values())
        return totals

    def blacklisted_inmates(self) -> List[Tuple[str, int]]:
        out = []
        for name, inmates in self.subfarms.items():
            for vlan, activity in inmates.items():
                if activity.blacklisted:
                    out.append((name, vlan))
        return out


def _render_group(lines: List[str], verdict: str,
                  bucket: Dict[Tuple[str, str, int], int]) -> None:
    lines.append(f"{verdict}")
    for (annotation, target, port), count in sorted(
        bucket.items(), key=lambda item: -item[1]
    ):
        label = annotation or "(unannotated)"
        lines.append(f"- {label}")
        lines.append(f"  {'target':<24} {'port':>6} {'#flows':>8}")
        lines.append(f"  {target:<24} {port:>6} {count:>8}")
    lines.append("")


class ReportScheduler:
    """Hourly/daily report generation (§6.5).

    "Bro's log-rotation functionality then initiates activity reports
    on an hourly and daily basis."  Each firing snapshots the given
    subfarms into a rendered report; consumers read ``reports`` or
    hook ``on_report``.
    """

    def __init__(self, sim, subfarms, blocklist=None,
                 interval: float = 3600.0, on_report=None,
                 telemetry=None) -> None:
        from repro.sim.process import Process

        self.sim = sim
        self.subfarms = list(subfarms)
        self.blocklist = blocklist
        self.on_report = on_report
        self.telemetry = telemetry
        self.reports: List[Tuple[float, str]] = []
        self._process = Process(sim, interval, self._fire,
                                label="report-rotation")
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _fire(self) -> None:
        report = ActivityReport.from_subfarms(
            self.subfarms, self.blocklist,
            title=f"Inmate Activity (t={self.sim.now:.0f}s)")
        rendered = render_report(report, telemetry=self.telemetry)
        self.reports.append((self.sim.now, rendered))
        if self.on_report is not None:
            self.on_report(self.sim.now, report, rendered)


def _render_decision_audit(lines: List[str], snapshot: dict) -> None:
    """The journal-backed audit: event counts, the deepest causal
    chains, and quarantines cross-referenced to pcap frame indices."""
    from repro.obs.provenance import (
        deepest_chains,
        event_counts,
        render_chain,
    )

    events = snapshot.get("events", [])
    header = "Decision audit"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append("")
    lines.append(f"Journal: {snapshot.get('recorded', 0)} events "
                 f"recorded, {snapshot.get('evicted', 0)} evicted "
                 f"(schema {snapshot.get('schema')})")
    lines.append("")
    lines.append("Events by kind")
    for kind, count in event_counts(events).items():
        lines.append(f"  {kind:<24} {count:>8}")
    lines.append("")
    chains = deepest_chains(events, n=5)
    if chains:
        lines.append("Deepest causal chains")
        for depth, chain in chains:
            lines.append(f"- depth {depth}")
            for line in render_chain(chain).splitlines():
                lines.append(f"  {line}")
        lines.append("")
    quarantines = [event for event in events
                   if event.get("kind") == "barrier.quarantine"]
    if quarantines:
        lines.append("Quarantined inputs (pcap frame cross-reference)")
        for event in quarantines:
            fields = event.get("fields", {})
            frame = fields.get("frame_index")
            frame_text = f"frame #{frame}" if frame is not None \
                else "not quarantined (no bytes)"
            lines.append(
                f"  t={event['t']:<12.6f} vlan={event.get('vlan')} "
                f"{fields.get('protocol', '?'):<10} {frame_text}  "
                f"{fields.get('reason', '')}")
        lines.append("")


def _render_certificate(lines: List[str], certificate: dict,
                        coverage: Optional[dict]) -> None:
    """The proof section: what the verifier certified, the world-grant
    table, and (when attached) how runtime evidence covered it."""
    header = "Isolation certificate"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append("")
    lines.append(f"Result: {certificate.get('result')}   "
                 f"schema {certificate.get('schema')}   "
                 f"exact model: {certificate.get('exact')}")
    lines.append(f"Certificate digest: {certificate.get('digest')}")
    model_digest = certificate.get("model_digest")
    if model_digest:
        lines.append(f"Model digest:       {model_digest}")
    lines.append(f"States explored: "
                 f"{certificate.get('states_explored', 0)}   "
                 f"leak paths: {certificate.get('leak_count', 0)}")
    grants = certificate.get("grants", [])
    if grants:
        lines.append("")
        lines.append("World grants")
        lines.append(f"  {'subfarm':<14} {'vlan':<9} {'dir':<9} "
                     f"{'dst':<6} {'proto':<5} {'ports':<12} verdict")
        for grant in grants:
            ports = grant["ports"]
            span = (str(ports[0]) if ports[0] == ports[1]
                    else f"{ports[0]}-{ports[1]}")
            lines.append(
                f"  {grant['subfarm']:<14} {grant['vlan']:<9} "
                f"{grant['direction']:<9} {grant['dst']:<6} "
                f"{grant['proto']:<5} {span:<12} {grant['verdict']} "
                f"({grant['grant_kind']})")
    counterexample = certificate.get("counterexample")
    if counterexample:
        path = counterexample.get("path", {})
        lines.append("")
        lines.append(f"Counterexample ({counterexample.get('kind')}): "
                     f"subfarm={path.get('subfarm')} "
                     f"src_vlan={path.get('src_vlan')} "
                     f"dst={path.get('dst')} proto={path.get('proto')} "
                     f"ports={path.get('ports')}")
    if coverage is not None:
        lines.append("")
        lines.append(f"Runtime coverage: {coverage.get('covered', 0)}/"
                     f"{coverage.get('checked', 0)} world-reaching "
                     f"observations covered, "
                     f"{len(coverage.get('violations', []))} violation(s)")
        for violation in coverage.get("violations", []):
            lines.append(f"  UNCOVERED {violation.get('source')}: "
                         f"vlan={violation.get('vlan')} "
                         f"proto={violation.get('proto')} "
                         f"verdict={violation.get('verdict')} "
                         f"dst={violation.get('destination') or violation.get('dst')}")
    lines.append("")


def render_report(report: ActivityReport, telemetry=None,
                  journal=None) -> str:
    """Render in the Figure 7 textual layout.

    With a live ``telemetry`` domain, a farm-wide metrics appendix
    (see repro.obs.export.render_text) follows the per-inmate blocks.
    ``journal`` (a journal snapshot dict; defaults to the report's
    attached one) adds the decision-audit section.
    """
    lines: List[str] = []
    lines.append(report.title)
    lines.append("=" * len(report.title))
    lines.append("")
    lines.append(f"Active subfarms: {', '.join(report.subfarms)}")
    lines.append("")
    for name, inmates in report.subfarms.items():
        header = f"Subfarm '{name}'"
        lines.append(header)
        lines.append("-" * max(len(header), 40))
        lines.append("")
        for vlan in sorted(inmates):
            activity = inmates[vlan]
            label = activity.policy or "(no policy observed)"
            address = (
                f"{activity.global_ip}/{activity.internal_ip}"
                if activity.global_ip else f"{activity.internal_ip}"
            )
            title = f"{label} [{address}, VLAN {vlan}]"
            lines.append(title)
            lines.append("-" * len(title))
            for verdict in sorted(
                activity.groups,
                key=lambda v: (VERDICT_ORDER.index(v)
                               if v in VERDICT_ORDER else 99),
            ):
                _render_group(lines, verdict, activity.groups[verdict])
            if activity.smtp_sessions or activity.smtp_data_transfers:
                lines.append(f"SMTP sessions       {activity.smtp_sessions}")
                lines.append(
                    f"SMTP DATA transfers {activity.smtp_data_transfers}")
            if activity.blacklisted is not None:
                status = ("LISTED — investigate containment!"
                          if activity.blacklisted else "clean")
                lines.append(f"Blacklist check     {status}")
            lines.append("")
    if report.degradation:
        header = "Containment degradation"
        lines.append(header)
        lines.append("=" * len(header))
        lines.append("")
        for name in sorted(report.degradation):
            summary = report.degradation[name]
            lines.append(f"Subfarm '{name}' "
                         f"(pending policy: {summary['pending_policy']})")
            lines.append(
                f"  fail-closed {summary['fail_closed']:>6}   "
                f"fail-open {summary['fail_open']:>6}   "
                f"retries {summary['retries']:>6}   "
                f"failovers {summary['failovers']:>6}")
            lines.append(
                f"  degraded refusals {summary['degraded_refusals']:>6}   "
                f"degraded seconds {summary['degraded_seconds']:.1f}")
            for ip in sorted(summary["servers"]):
                lines.append(f"  cs {ip:<16} {summary['servers'][ip]}")
            lines.append("")
    if report.malformed:
        header = "Malformed traffic"
        lines.append(header)
        lines.append("=" * len(header))
        lines.append("")
        for name in sorted(report.malformed):
            summary = report.malformed[name]
            status = " FAIL-STOPPED" if summary["fail_stopped"] else ""
            lines.append(f"Subfarm '{name}' "
                         f"(malice policy: {summary['policy']}){status}")
            lines.append(
                f"  parse errors {summary['parse_errors']:>6}   "
                f"isolated flows {summary['isolated_flows']:>6}   "
                f"fail-stop drops {summary['failstop_drops']:>6}   "
                f"quarantined {summary['quarantined']:>6}")
            for key in sorted(summary["by_vlan_protocol"]):
                lines.append(
                    f"  {key:<24} {summary['by_vlan_protocol'][key]:>6}")
            lines.append("")
    if report.flowtables:
        header = "Flow tables"
        lines.append(header)
        lines.append("=" * len(header))
        lines.append("")
        for name in sorted(report.flowtables):
            summary = report.flowtables[name]
            timeouts = summary["timeout_evictions"]
            lines.append(f"Subfarm '{name}'")
            lines.append(
                f"  occupancy {summary['occupancy']:>6}   "
                f"hits {summary['hits']:>8}   "
                f"misses {summary['misses']:>6}   "
                f"installs {summary['installs']:>6}")
            lines.append(
                f"  evictions {summary['evictions']:>6}   "
                f"idle timeouts {timeouts['idle']:>6}   "
                f"hard timeouts {timeouts['hard']:>6}")
            entries = summary["entries"]
            if entries:
                lines.append(
                    f"  {'action':<10} {'vlan':>4} {'verdict':<16} "
                    f"{'hits':>8} {'emit':<8} match")
                for entry in entries:
                    match = entry["match"]
                    match_text = (
                        f"{IPv4Address(match['src'])}:{match['sport']} "
                        f"-> {IPv4Address(match['dst'])}:{match['dport']}")
                    lines.append(
                        f"  {entry['action']:<10} {entry['vlan']:>4} "
                        f"{entry['verdict'] or '-':<16} "
                        f"{entry['hits']:>8} {entry['emit']:<8} "
                        f"{match_text}")
            lines.append("")
    if report.certificate is not None:
        _render_certificate(lines, report.certificate,
                            report.certificate_coverage)
    journal_snapshot = journal if journal is not None else report.journal
    if journal_snapshot is not None and journal_snapshot.get("events"):
        _render_decision_audit(lines, journal_snapshot)
    if telemetry is not None and telemetry.enabled:
        from repro.obs.export import render_text

        appendix = "Appendix: farm telemetry"
        lines.append(appendix)
        lines.append("=" * len(appendix))
        lines.append("")
        lines.append(render_text(telemetry, include_traces=False))
    return "\n".join(lines)
