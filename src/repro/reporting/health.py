"""Containment health checks over activity reports (§6.5).

"The reports break down activity by subfarm, inmate, and containment
decision, allowing us to verify that the gateway enforces these
decisions as expected (for example, an unusual number of FORWARD
verdicts might indicate a bug in the policy, and absence of any C&C
REWRITEs would indicate lack of botnet activity)."

These are the operator's eyes: mechanical anomaly rules over the
Figure 7 aggregates, producing warnings a human triages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.reporting.report import ActivityReport, InmateActivity


class HealthWarning:
    """One anomaly the checker wants a human to look at."""

    __slots__ = ("severity", "subfarm", "vlan", "check", "message")

    def __init__(self, severity: str, subfarm: str, vlan: Optional[int],
                 check: str, message: str) -> None:
        self.severity = severity  # "warn" | "critical"
        self.subfarm = subfarm
        self.vlan = vlan
        self.check = check
        self.message = message

    def __repr__(self) -> str:
        where = f"vlan {self.vlan}" if self.vlan is not None else "subfarm"
        return (f"<{self.severity.upper()} [{self.check}] "
                f"{self.subfarm}/{where}: {self.message}>")


class HealthChecker:
    """Anomaly rules over one report.

    Parameters
    ----------
    max_forward_fraction:
        FORWARD verdicts above this fraction of an inmate's flows are
        suspicious — C&C lifelines are narrow, so a forward-heavy mix
        usually means a policy bug.
    expect_activity:
        Inmates with zero contained flows are flagged (dead specimen,
        broken infection, or policy that kills everything).
    """

    def __init__(self, max_forward_fraction: float = 0.25,
                 expect_activity: bool = True,
                 expect_autoinfection: bool = False) -> None:
        self.max_forward_fraction = max_forward_fraction
        self.expect_activity = expect_activity
        self.expect_autoinfection = expect_autoinfection

    def check(self, report: ActivityReport) -> List[HealthWarning]:
        warnings: List[HealthWarning] = []
        for subfarm_name, inmates in report.subfarms.items():
            if not inmates and self.expect_activity:
                warnings.append(HealthWarning(
                    "warn", subfarm_name, None, "no-activity",
                    "no contained flows at all — are the inmates up?"))
            for vlan, activity in inmates.items():
                warnings.extend(self._check_inmate(subfarm_name, vlan,
                                                   activity))
        return warnings

    def _check_inmate(self, subfarm: str, vlan: int,
                      activity: InmateActivity) -> List[HealthWarning]:
        warnings: List[HealthWarning] = []
        total = sum(activity.verdict_total(v) for v in activity.groups)
        forwards = sum(
            count for verdict, bucket in activity.groups.items()
            if "FORWARD" in verdict or verdict == "LIMIT"
            for count in bucket.values()
        )
        if total and forwards / total > self.max_forward_fraction:
            warnings.append(HealthWarning(
                "critical", subfarm, vlan, "forward-heavy",
                f"{forwards}/{total} flows FORWARDed "
                f"({forwards / total:.0%}) — policy bug?"))
        if self.expect_autoinfection:
            rewrites = activity.groups.get("REWRITE", {})
            if not any("autoinfection" in annotation
                       for (annotation, _t, _p) in rewrites):
                warnings.append(HealthWarning(
                    "warn", subfarm, vlan, "no-autoinfection",
                    "no auto-infection REWRITE observed — sample never "
                    "delivered?"))
        if activity.blacklisted:
            warnings.append(HealthWarning(
                "critical", subfarm, vlan, "blacklisted",
                f"global address {activity.global_ip} is LISTED — "
                f"containment failure"))
        if total == 0 and self.expect_activity:
            warnings.append(HealthWarning(
                "warn", subfarm, vlan, "silent-inmate",
                "inmate produced no contained flows"))
        return warnings
