"""Containment health checks over activity reports (§6.5).

"The reports break down activity by subfarm, inmate, and containment
decision, allowing us to verify that the gateway enforces these
decisions as expected (for example, an unusual number of FORWARD
verdicts might indicate a bug in the policy, and absence of any C&C
REWRITEs would indicate lack of botnet activity)."

These are the operator's eyes: mechanical anomaly rules over the
Figure 7 aggregates, producing warnings a human triages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.reporting.report import ActivityReport, InmateActivity


class HealthWarning:
    """One anomaly the checker wants a human to look at."""

    __slots__ = ("severity", "subfarm", "vlan", "check", "message")

    def __init__(self, severity: str, subfarm: str, vlan: Optional[int],
                 check: str, message: str) -> None:
        self.severity = severity  # "warn" | "critical"
        self.subfarm = subfarm
        self.vlan = vlan
        self.check = check
        self.message = message

    def __repr__(self) -> str:
        where = f"vlan {self.vlan}" if self.vlan is not None else "subfarm"
        return (f"<{self.severity.upper()} [{self.check}] "
                f"{self.subfarm}/{where}: {self.message}>")


class HealthChecker:
    """Anomaly rules over one report.

    Parameters
    ----------
    max_forward_fraction:
        FORWARD verdicts above this fraction of an inmate's flows are
        suspicious — C&C lifelines are narrow, so a forward-heavy mix
        usually means a policy bug.
    expect_activity:
        Inmates with zero contained flows are flagged (dead specimen,
        broken infection, or policy that kills everything).
    max_safety_trip_fraction / max_shim_p99 / max_nat_utilization:
        Thresholds for the live (telemetry-driven) rules; they apply
        only when :meth:`check` is handed an enabled telemetry domain.
    """

    def __init__(self, max_forward_fraction: float = 0.25,
                 expect_activity: bool = True,
                 expect_autoinfection: bool = False,
                 max_safety_trip_fraction: float = 0.05,
                 max_shim_p99: float = 2.0,
                 max_nat_utilization: float = 0.9) -> None:
        self.max_forward_fraction = max_forward_fraction
        self.expect_activity = expect_activity
        self.expect_autoinfection = expect_autoinfection
        self.max_safety_trip_fraction = max_safety_trip_fraction
        self.max_shim_p99 = max_shim_p99
        self.max_nat_utilization = max_nat_utilization

    def check(self, report: ActivityReport,
              telemetry=None) -> List[HealthWarning]:
        warnings: List[HealthWarning] = []
        for subfarm_name, inmates in report.subfarms.items():
            if not inmates and self.expect_activity:
                warnings.append(HealthWarning(
                    "warn", subfarm_name, None, "no-activity",
                    "no contained flows at all — are the inmates up?"))
            for vlan, activity in inmates.items():
                warnings.extend(self._check_inmate(subfarm_name, vlan,
                                                   activity))
        # Live rules over the metrics registry: skipped entirely when
        # no telemetry was passed or the domain is disabled.
        if telemetry is not None and telemetry.enabled:
            warnings.extend(self._check_live(telemetry))
        return warnings

    # ------------------------------------------------------------------
    # Live telemetry rules
    # ------------------------------------------------------------------
    @staticmethod
    def _by_subfarm(metric) -> dict:
        """Aggregate a metric's cells by their ``subfarm`` label."""
        out: dict = {}
        if metric is None:
            return out
        for key, cell in metric.cells().items():
            labels = dict(key)
            out.setdefault(labels.get("subfarm", ""), []).append(cell)
        return out

    def _check_live(self, telemetry) -> List[HealthWarning]:
        warnings: List[HealthWarning] = []
        registry = telemetry.registry

        # Rule 1: safety-filter trip rate — a tripping filter means an
        # inmate is being actively rate-limited (flooder, scan storm).
        trips = self._by_subfarm(registry.get("gw.safety.trips"))
        admitted = self._by_subfarm(registry.get("gw.safety.admitted"))
        for subfarm, cells in trips.items():
            tripped = sum(c.value for c in cells)
            total = tripped + sum(
                c.value for c in admitted.get(subfarm, []))
            if total and tripped / total > self.max_safety_trip_fraction:
                warnings.append(HealthWarning(
                    "critical", subfarm, None, "safety-trip-rate",
                    f"{tripped:.0f}/{total:.0f} flows tripped the safety "
                    f"filter ({tripped / total:.0%}) — flooder loose?"))

        # Rule 2: shim round-trip p99 — a slow verdict path stalls
        # every new flow in the subfarm behind the containment server.
        rtt = registry.get("router.shim.rtt")
        if rtt is not None:
            for key, cell in rtt.cells().items():
                if cell.count == 0:
                    continue
                p99 = cell.quantile(0.99)
                if p99 > self.max_shim_p99:
                    subfarm = dict(key).get("subfarm", "")
                    warnings.append(HealthWarning(
                        "warn", subfarm, None, "shim-latency",
                        f"shim verdict p99 {p99:.3f}s exceeds "
                        f"{self.max_shim_p99:.3f}s — CS overloaded?"))

        # Rule 3: NAT pool exhaustion — no free global addresses means
        # new inmates cannot come up at all.
        used = self._by_subfarm(registry.get("gw.nat.pool.used"))
        capacity = self._by_subfarm(registry.get("gw.nat.pool.capacity"))
        for subfarm, cells in used.items():
            in_use = sum(c.value for c in cells)
            cap = sum(c.value for c in capacity.get(subfarm, []))
            if cap and in_use / cap > self.max_nat_utilization:
                warnings.append(HealthWarning(
                    "critical", subfarm, None, "nat-exhaustion",
                    f"global address pool {in_use:.0f}/{cap:.0f} used "
                    f"({in_use / cap:.0%}) — inmates will fail to bind"))
        return warnings

    def _check_inmate(self, subfarm: str, vlan: int,
                      activity: InmateActivity) -> List[HealthWarning]:
        warnings: List[HealthWarning] = []
        total = sum(activity.verdict_total(v) for v in activity.groups)
        forwards = sum(
            count for verdict, bucket in activity.groups.items()
            if "FORWARD" in verdict or verdict == "LIMIT"
            for count in bucket.values()
        )
        if total and forwards / total > self.max_forward_fraction:
            warnings.append(HealthWarning(
                "critical", subfarm, vlan, "forward-heavy",
                f"{forwards}/{total} flows FORWARDed "
                f"({forwards / total:.0%}) — policy bug?"))
        if self.expect_autoinfection:
            rewrites = activity.groups.get("REWRITE", {})
            if not any("autoinfection" in annotation
                       for (annotation, _t, _p) in rewrites):
                warnings.append(HealthWarning(
                    "warn", subfarm, vlan, "no-autoinfection",
                    "no auto-infection REWRITE observed — sample never "
                    "delivered?"))
        if activity.blacklisted:
            warnings.append(HealthWarning(
                "critical", subfarm, vlan, "blacklisted",
                f"global address {activity.global_ip} is LISTED — "
                f"containment failure"))
        if total == 0 and self.expect_activity:
            warnings.append(HealthWarning(
                "warn", subfarm, vlan, "silent-inmate",
                "inmate produced no contained flows"))
        return warnings
