"""Trace analyzers: the shim protocol and SMTP activity.

"We developed an analyzer for the shimming protocol to keep track of
all containment activity on the inmate network, and track specific
additional classes of traffic as needed (for example, we leverage
Bro's SMTP analyzer to track attempted and succeeding message delivery
for our spambots)."

Both analyzers work from captured packet traces — the same evidence a
real Bro instance would see — not from internal gateway state, so the
reports double as an independent check that the gateway enforces
verdicts as configured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.shim import (
    RequestShim,
    ResponseShim,
    SHIM_MAGIC,
    ShimError,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    peek_length,
)
from repro.net.capture import PacketTrace, TraceRecord
from repro.net.flow import FiveTuple
from repro.net.packet import PROTO_TCP, PROTO_UDP


class ContainmentEvent:
    """One contained flow: request shim matched to its response."""

    __slots__ = ("timestamp", "vlan", "flow", "verdict", "policy",
                 "annotation", "resulting_flow")

    def __init__(self, timestamp: float, request: RequestShim,
                 response: ResponseShim) -> None:
        self.timestamp = timestamp
        self.vlan = request.vlan_id
        self.flow = request.flow
        self.verdict = response.verdict.label
        self.policy = response.policy
        self.annotation = response.annotation
        self.resulting_flow = response.flow

    def __repr__(self) -> str:
        return (
            f"<ContainmentEvent t={self.timestamp:.1f} vlan={self.vlan} "
            f"{self.verdict} policy={self.policy!r} {self.flow}>"
        )


def _shim_payload(record: TraceRecord) -> Optional[bytes]:
    ip = record.ip
    if ip is None:
        return None
    if ip.proto == PROTO_TCP:
        payload = ip.tcp.payload
    elif ip.proto == PROTO_UDP:
        payload = ip.udp.payload
    else:
        return None
    if len(payload) < 8:
        return None
    magic = int.from_bytes(payload[:4], "big")
    return payload if magic == SHIM_MAGIC else None


class ShimAnalyzer:
    """Reconstructs containment events from shim-protocol traffic.

    Post-hoc (pass a trace) or streaming (:meth:`streaming` subscribes
    the analyzer so day-scale runs never retain packets).
    """

    def __init__(self, trace: Optional[PacketTrace] = None) -> None:
        self.events: List[ContainmentEvent] = []
        self.parse_errors = 0
        self._pending: Dict[FiveTuple, Tuple[float, RequestShim]] = {}
        if trace is not None:
            for record in trace.records:
                self.process(record)

    @classmethod
    def streaming(cls, trace: PacketTrace) -> "ShimAnalyzer":
        analyzer = cls()
        trace.subscribe(analyzer.process)
        return analyzer

    @property
    def unmatched_requests(self) -> int:
        return len(self._pending)

    def process(self, record: TraceRecord) -> None:
        payload = _shim_payload(record)
        if payload is None:
            return
        proto = record.ip.proto  # type: ignore[union-attr]
        offset = 0
        while offset + 8 <= len(payload):
            length = peek_length(payload[offset:offset + 8])
            if length is None or offset + length > len(payload):
                break
            blob = payload[offset:offset + length]
            msg_type = blob[6]
            try:
                if msg_type == TYPE_REQUEST:
                    shim = RequestShim.from_bytes(blob, proto=proto)
                    self._pending[shim.flow] = (record.timestamp, shim)
                elif msg_type == TYPE_RESPONSE:
                    response = ResponseShim.from_bytes(blob, proto=proto)
                    self._match(record.timestamp, response, self._pending)
                else:
                    self.parse_errors += 1
            except ShimError:
                self.parse_errors += 1
            offset += length
            # Only the leading shim of a segment is a shim; any
            # trailing bytes are flow content (REWRITE payload).
            if offset < len(payload):
                next_magic = payload[offset:offset + 4]
                if int.from_bytes(next_magic, "big") != SHIM_MAGIC:
                    break

    def _match(self, timestamp: float, response: ResponseShim,
               pending: Dict[FiveTuple, Tuple[float, RequestShim]]) -> None:
        # The response's four-tuple is the *resulting* endpoint pair;
        # for REDIRECT/REFLECT it differs from the request's, so match
        # on the originator side.
        for flow, (req_time, request) in list(pending.items()):
            if (flow.orig_ip == response.flow.orig_ip
                    and flow.orig_port == response.flow.orig_port
                    and flow.proto == response.flow.proto):
                del pending[flow]
                self.events.append(
                    ContainmentEvent(req_time, request, response))
                return
        self.parse_errors += 1

    # ------------------------------------------------------------------
    def by_vlan(self) -> Dict[int, List[ContainmentEvent]]:
        out: Dict[int, List[ContainmentEvent]] = {}
        for event in self.events:
            out.setdefault(event.vlan, []).append(event)
        return out

    def verdict_counts(self, vlan: Optional[int] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            if vlan is not None and event.vlan != vlan:
                continue
            counts[event.verdict] = counts.get(event.verdict, 0) + 1
        return counts


class SmtpActivityAnalyzer:
    """Counts SMTP sessions and completed DATA transfers per VLAN.

    Sessions are SYNs to port 25 on the inmate side of the trace;
    DATA transfers are ``250``-after-DATA replies, recognized by the
    sink/MX convention of replying ``250 OK: queued``.
    """

    DATA_ACCEPTED = b"250 OK: queued"

    def __init__(self, trace: Optional[PacketTrace] = None) -> None:
        self.sessions: Dict[int, int] = {}
        self.data_transfers: Dict[int, int] = {}
        if trace is not None:
            for record in trace.records:
                self.process(record)

    @classmethod
    def streaming(cls, trace: PacketTrace) -> "SmtpActivityAnalyzer":
        analyzer = cls()
        trace.subscribe(analyzer.process)
        return analyzer

    def process(self, record: TraceRecord) -> None:
        if record.point != "inmate":
            return
        ip = record.ip
        if ip is None or ip.proto != PROTO_TCP:
            return
        segment = ip.tcp
        vlan = record.frame.vlan
        if vlan is None:
            return
        if segment.dport == 25 and segment.syn and not segment.has_ack:
            self.sessions[vlan] = self.sessions.get(vlan, 0) + 1
        if segment.sport == 25 and self.DATA_ACCEPTED in segment.payload:
            count = segment.payload.count(self.DATA_ACCEPTED)
            self.data_transfers[vlan] = (
                self.data_transfers.get(vlan, 0) + count
            )

    def totals(self) -> Tuple[int, int]:
        return (sum(self.sessions.values()),
                sum(self.data_transfers.values()))
