"""Labeled metrics: counters, gauges, fixed-bucket histograms.

The farm's in-path instruments.  Everything here is zero-dependency,
allocation-light, and deterministic: histogram quantiles come from
fixed bucket boundaries (linear interpolation inside the winning
bucket), so the same run always snapshots to the same numbers.

Two usage styles:

* ad-hoc — ``registry.counter("router.flows.created").inc(subfarm="x")``
  pays one label sort + dict lookup per call;
* bound — ``cell = registry.counter(...).bind(subfarm="x")`` resolves
  the label set once and hands back the raw cell, so hot paths pay a
  single method call per update.

When telemetry is disabled every instrument is the shared
:data:`NULL_INSTRUMENT`, whose methods do nothing — call sites need no
conditionals and benchmarks see near-zero overhead.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Bucket bounds (seconds) suiting both LAN-scale shim round-trips and
#: queueing delays under overload.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Cells beyond this per metric collapse into one overflow cell rather
#: than growing without bound (label-cardinality protection).
DEFAULT_MAX_CARDINALITY = 256

OVERFLOW_KEY: LabelKey = (("__overflow__", "1"),)


def label_key(labels: Dict[str, str]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, key: LabelKey) -> str:
    """Render ``name{k=v,...}`` — the exporter's metric identity."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class _NullInstrument:
    """Shared do-nothing instrument for disabled telemetry."""

    __slots__ = ()

    def bind(self, **labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def quantile(self, q: float, **labels: str) -> float:
        return 0.0

    def summary(self, **labels: str) -> Dict[str, float]:
        return {"count": 0.0, "sum": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class CounterCell:
    """One (metric, label set) monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class GaugeCell:
    """One (metric, label set) point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramCell:
    """Fixed-bucket distribution for one (metric, label set)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        # One count per bound plus the +inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.sum += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def quantile(self, q: float) -> float:
        """Deterministic estimate: locate the bucket holding rank
        ``q * count`` and interpolate linearly inside it, clamped to
        the observed min/max."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _Metric:
    """Shared label-cell bookkeeping for the three instrument kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 max_cardinality: int = DEFAULT_MAX_CARDINALITY,
                 deterministic: bool = True) -> None:
        self.name = name
        self.help = help
        self.max_cardinality = max_cardinality
        # Wall-clock instruments (deterministic=False) stay out of
        # snapshots so replays remain byte-identical.
        self.deterministic = deterministic
        self._cells: Dict[LabelKey, object] = {}

    def _make_cell(self) -> object:
        raise NotImplementedError

    def _cell(self, labels: Dict[str, str]):
        key = label_key(labels)
        cell = self._cells.get(key)
        if cell is None:
            if len(self._cells) >= self.max_cardinality:
                key = OVERFLOW_KEY
                cell = self._cells.get(key)
                if cell is None:
                    cell = self._cells[key] = self._make_cell()
                return cell
            cell = self._cells[key] = self._make_cell()
        return cell

    def bind(self, **labels: str):
        """Resolve a label set once; returns the raw cell."""
        return self._cell(labels)

    def cells(self) -> Dict[LabelKey, object]:
        return dict(self._cells)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} cells={len(self._cells)}>"


class Counter(_Metric):
    """Monotonically increasing, labeled."""

    kind = "counter"

    def _make_cell(self) -> CounterCell:
        return CounterCell()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._cell(labels).inc(amount)

    def value(self, **labels: str) -> float:
        cell = self._cells.get(label_key(labels))
        return cell.value if cell is not None else 0.0

    def total(self) -> float:
        return sum(cell.value for cell in self._cells.values())


class Gauge(_Metric):
    """Point-in-time value, labeled."""

    kind = "gauge"

    def _make_cell(self) -> GaugeCell:
        return GaugeCell()

    def set(self, value: float, **labels: str) -> None:
        self._cell(labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._cell(labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self._cell(labels).dec(amount)

    def value(self, **labels: str) -> float:
        cell = self._cells.get(label_key(labels))
        return cell.value if cell is not None else 0.0


class Histogram(_Metric):
    """Fixed-bucket distribution with p50/p95/p99 summaries, labeled."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                 max_cardinality: int = DEFAULT_MAX_CARDINALITY,
                 deterministic: bool = True) -> None:
        super().__init__(name, help, max_cardinality,
                         deterministic=deterministic)
        self.buckets = tuple(sorted(buckets))

    def _make_cell(self) -> HistogramCell:
        return HistogramCell(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self._cell(labels).observe(value)

    def quantile(self, q: float, **labels: str) -> float:
        cell = self._cells.get(label_key(labels))
        return cell.quantile(q) if cell is not None else 0.0

    def summary(self, **labels: str) -> Dict[str, float]:
        cell = self._cells.get(label_key(labels))
        if cell is None:
            return {"count": 0.0, "sum": 0.0}
        return cell.summary()


class MetricsRegistry:
    """Name-keyed instrument store; one per telemetry domain."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, name: str, cls, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, *args, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                  deterministic: bool = True) -> Histogram:
        return self._get_or_create(name, Histogram, help, buckets,
                                   deterministic=deterministic)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"
