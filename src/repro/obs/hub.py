"""The telemetry hub: structured events with ring-buffer retention.

Components publish discrete happenings — a safety trip, a verdict, an
inmate revert — as ``(virtual time, kind, fields)`` records.  The hub
keeps the most recent ``capacity`` of them (older ones age out, with
an eviction count so truncation is visible) and fans each one out to
subscriber hooks, which is how live dashboards or the health checker
can watch the farm without polling.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

Clock = Callable[[], float]


class TelemetryEvent:
    """One structured happening."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: Dict[str, object]) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "fields": self.fields}

    def __repr__(self) -> str:
        return f"<TelemetryEvent t={self.time:.3f} {self.kind} {self.fields}>"


Subscriber = Callable[[TelemetryEvent], None]


class TelemetryHub:
    """Bounded pub/sub event stream on the virtual clock."""

    def __init__(self, clock: Clock, capacity: int = 4096) -> None:
        self.clock = clock
        self.capacity = capacity
        self._ring: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self._subscribers: List[Subscriber] = []
        self.published = 0
        self.evicted = 0

    def publish(self, kind: str, **fields: object) -> TelemetryEvent:
        event = TelemetryEvent(self.clock(), kind, fields)
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(event)
        self.published += 1
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register a hook; returns an unsubscribe callable."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

        return unsubscribe

    def events(self, kind: Optional[str] = None) -> List[TelemetryEvent]:
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (f"<TelemetryHub retained={len(self._ring)} "
                f"published={self.published}>")


class NullHub:
    """Do-nothing hub for disabled telemetry."""

    __slots__ = ()
    published = 0
    evicted = 0

    def publish(self, kind: str, **fields: object) -> None:
        return None

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        return lambda: None

    def events(self, kind: Optional[str] = None) -> List[TelemetryEvent]:
        return []

    def __len__(self) -> int:
        return 0


NULL_HUB = NullHub()
