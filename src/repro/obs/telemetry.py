"""The telemetry facade: registry + tracer + hub behind one handle.

Every instrumented component takes (or finds on its ``Simulator``) a
``Telemetry`` object and asks it for instruments.  The disabled form,
:data:`NULL_TELEMETRY`, hands out shared no-op singletons, so the
instrumentation points cost one attribute access plus an empty method
call — cheap enough to leave compiled into every packet path.

Hot call sites that would do real work just to *feed* an instrument
(string formatting, span bookkeeping) should guard on
``telemetry.enabled`` first; plain counter bumps need no guard.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.obs.hub import NULL_HUB, TelemetryHub
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer

Clock = Callable[[], float]


class Telemetry:
    """Live telemetry domain, normally one per farm."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None,
                 max_traces: int = 1024,
                 hub_capacity: int = 4096) -> None:
        self.clock: Clock = clock if clock is not None else (lambda: 0.0)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.clock, max_traces=max_traces)
        self.hub = TelemetryHub(self.clock, capacity=hub_capacity)

    # ---- instrument accessors (delegate to the registry) -------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                  deterministic: bool = True) -> Histogram:
        return self.registry.histogram(name, help, buckets,
                                       deterministic=deterministic)

    # ---- tracing -----------------------------------------------------
    def span(self, trace_id: str, name: str, **labels: str) -> Span:
        return self.tracer.start_span(trace_id, name, **labels)

    def point(self, trace_id: str, name: str, **labels: str) -> Span:
        return self.tracer.point(trace_id, name, **labels)

    # ---- events ------------------------------------------------------
    def publish(self, kind: str, **fields: object):
        return self.hub.publish(kind, **fields)

    def __repr__(self) -> str:
        return (f"<Telemetry metrics={len(self.registry)} "
                f"traces={len(self.tracer)}>")


class NullTelemetry:
    """Disabled telemetry: every accessor returns a shared no-op."""

    enabled = False
    registry = None  # replaced below with a null-ish registry view
    tracer = NULL_TRACER
    hub = NULL_HUB

    def counter(self, name: str, help: str = ""):
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = ""):
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=None,
                  deterministic: bool = True):
        return NULL_INSTRUMENT

    def span(self, trace_id: str, name: str, **labels: str):
        return NULL_TRACER.start_span(trace_id, name)

    def point(self, trace_id: str, name: str, **labels: str):
        return NULL_TRACER.point(trace_id, name)

    def publish(self, kind: str, **fields: object) -> None:
        return None

    def clock(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "<NullTelemetry>"


#: The one shared disabled-telemetry instance.
NULL_TELEMETRY = NullTelemetry()
