"""Operator CLI for the observability plane.

Usage::

    python -m repro.obs snapshot [--format json|openmetrics|jsonl|chrome]
    python -m repro.obs grep PATTERN [--kind verdict.issued]
    python -m repro.obs why FLOW
    python -m repro.obs diff A.json B.json

Every subcommand reads from one of two sources:

* ``--journal PATH`` / ``--snapshot PATH`` — previously dumped JSON
  (e.g. from ``python -m repro.experiments ... --journal out.json``,
  or a merged campaign journal); or
* nothing, in which case the CLI runs the built-in **golden-seed
  farm** (:func:`golden_farm`): a deterministic single-subfarm run
  that exercises the whole decision surface — admission, verdicts,
  fast-path installs, an over-threshold trigger recycling an inmate,
  a containment-server crash driving deadline → retry → degraded
  mode and back, and hostile frames quarantined by the malice
  barrier.  Same seed ⇒ byte-identical journal, so ``why`` output is
  reproducible and diffable across runs.

``why FLOW`` accepts any unambiguous substring of a flow id (try
``grep flow.created`` to list them), or ``seq:N`` to anchor on one
event's causal chain.  An unknown flow or event id prints a friendly
"no such event" message (plus the first few known flows) and exits 2.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional

from repro.obs.export import (
    render_chrome_trace,
    render_jsonl,
    render_openmetrics,
)
from repro.obs.provenance import (
    event_counts,
    flows_in,
    render_chain,
    render_why,
    render_why_event,
)

GOLDEN_SEED = 11
GOLDEN_DURATION = 300.0

_TARGET_IP = "203.0.113.80"
_TARGET_PORT = 80


def _beacon_image(period: float = 20.0, chunk: int = 128):
    """An inmate that phones home on a fixed period — each beacon is a
    fresh flow, so over-threshold activity triggers see it."""
    from repro.net.addresses import IPv4Address
    from repro.services.dhcp import DhcpClient

    def image(host):
        def configured(h):
            def beat():
                conn = h.tcp.connect(IPv4Address(_TARGET_IP), _TARGET_PORT)
                conn.on_established = lambda c: c.send(b"x" * chunk)
                conn.on_data = lambda c, d: c.close()
                h.sim.schedule(period, beat, label="beacon")

            h.sim.schedule(1.0, beat, label="beacon-start")

        DhcpClient(host, on_configured=configured).start()

    return image


def golden_farm(seed: int = GOLDEN_SEED,
                duration: float = GOLDEN_DURATION):
    """Run the golden-seed farm and return it (journal + telemetry on).

    The scenario is fixed so the journal tells the full story: three
    beaconing inmates behind one subfarm; an over-threshold trigger
    (``> 2`` flows per minute) recycling vlan state; the only
    containment server crashing at t=120 for 60 virtual seconds
    (deadline → retry → degraded mode → recovery); and two malformed
    wire frames quarantined by the malice barrier at t=30.
    """
    from repro.core.policy import AllowAll
    from repro.farm import Farm, FarmConfig
    from repro.faults.plan import FaultPlan, FaultSpec

    config = FarmConfig(
        seed=seed,
        telemetry=True,
        journal=True,
        journal_sample_interval=30.0,
        verdict_deadline=5.0,
        fault_plan=FaultPlan([
            FaultSpec(kind="cs_crash", at=120.0, restore_after=60.0),
        ]),
    )
    farm = Farm(config)

    def echo(host) -> None:
        def on_accept(conn):
            conn.on_data = lambda c, data: c.send(data)
            conn.on_remote_close = lambda c: c.close()

        host.tcp.listen(_TARGET_PORT, on_accept)

    echo(farm.add_external_host("echo", _TARGET_IP))
    sub = farm.create_subfarm("gold")
    sub.set_default_policy(AllowAll())
    inmates = [sub.create_inmate(image_factory=_beacon_image())
               for _ in range(3)]
    sub.trigger_engine.add_text(
        f"*:{_TARGET_PORT}/tcp / 1min > 2 -> revert",
        {inmate.vlan for inmate in inmates})
    # Hostile bytes at t=30: both fail Ethernet parsing, land in the
    # barrier's quarantine, and show up as barrier.quarantine events.
    vlan = inmates[0].vlan
    farm.sim.schedule(30.0, sub.router.ingest_wire, vlan, b"\x00" * 9,
                      label="golden-hostile")
    farm.sim.schedule(30.5, sub.router.ingest_wire, vlan,
                      b"\xff" * 15, label="golden-hostile")
    farm.run(until=duration)
    return farm


# ----------------------------------------------------------------------
# Input loading
# ----------------------------------------------------------------------
def _load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _sources(args) -> tuple:
    """(telemetry snapshot or None, journal snapshot or None)."""
    telemetry = journal = None
    if getattr(args, "snapshot", None):
        telemetry = _load_json(args.snapshot)
    if getattr(args, "journal", None):
        journal = _load_json(args.journal)
        # Accept a merged campaign result or shard payload that
        # carries the journal under a key, not at top level.
        if "events" not in journal:
            for key in ("journal", "merged"):
                inner = journal.get(key)
                if isinstance(inner, dict):
                    journal = inner.get("journal", inner)
                    break
    if telemetry is None and journal is None:
        farm = golden_farm(seed=args.seed, duration=args.duration)
        telemetry = farm.telemetry_snapshot()
        journal = farm.journal_snapshot()
    return telemetry, journal


def _event_line(event: dict) -> str:
    return render_chain([dict(event, parent=None)])


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_snapshot(args) -> int:
    telemetry, journal = _sources(args)
    if args.format == "openmetrics":
        if telemetry is None:
            print("openmetrics needs a telemetry snapshot "
                  "(pass --snapshot)", file=sys.stderr)
            return 2
        text = render_openmetrics(telemetry)
    elif args.format == "jsonl":
        if journal is None:
            print("jsonl needs a journal (pass --journal)",
                  file=sys.stderr)
            return 2
        text = render_jsonl(journal)
    elif args.format == "chrome":
        text = render_chrome_trace(telemetry_snap=telemetry,
                                   journal_snap=journal, indent=args.indent)
    else:
        doc = {}
        if telemetry is not None:
            doc["telemetry"] = telemetry
        if journal is not None:
            doc["journal"] = journal
            doc["event_counts"] = event_counts(journal.get("events", []))
        text = json.dumps(doc, indent=args.indent, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_grep(args) -> int:
    _, journal = _sources(args)
    if journal is None:
        print("grep needs a journal (pass --journal)", file=sys.stderr)
        return 2
    pattern = re.compile(args.pattern)
    matched = 0
    for event in journal.get("events", []):
        if args.kind and event.get("kind") != args.kind:
            continue
        line = _event_line(event)
        flow = event.get("flow")
        if flow:
            line = f"{line}  flow={flow}"
        if pattern.search(line):
            matched += 1
            print(line)
    print(f"({matched} matching events)", file=sys.stderr)
    return 0 if matched else 1


def _cmd_why(args) -> int:
    _, journal = _sources(args)
    if journal is None:
        print("why needs a journal (pass --journal)", file=sys.stderr)
        return 2
    events = journal.get("events", [])
    try:
        if args.flow.startswith("seq:"):
            token = args.flow[len("seq:"):]
            seq = int(token) if token.isdigit() else token
            print(render_why_event(events, seq))
        else:
            print(render_why(events, args.flow))
    except (ValueError, KeyError) as error:
        # str(KeyError) wraps the message in repr quotes; unwrap it.
        message = error.args[0] if error.args else str(error)
        print(f"no such event: {message}" if isinstance(error, KeyError)
              and not str(message).startswith("no such event")
              else str(message), file=sys.stderr)
        flows = flows_in(events)
        if flows:
            print("known flows (first 10):", file=sys.stderr)
        for flow in flows[:10]:
            print(f"  {flow}", file=sys.stderr)
        return 2
    return 0


def _cmd_diff(args) -> int:
    left = _load_json(args.left)
    right = _load_json(args.right)
    if left == right:
        print("identical")
        return 0
    keys = sorted(set(left) | set(right))
    for key in keys:
        a, b = left.get(key), right.get(key)
        if a == b:
            continue
        if key == "events" and isinstance(a, list) and isinstance(b, list):
            counts_a, counts_b = event_counts(a), event_counts(b)
            for kind in sorted(set(counts_a) | set(counts_b)):
                ca, cb = counts_a.get(kind, 0), counts_b.get(kind, 0)
                if ca != cb:
                    print(f"  events[{kind}]: {ca} != {cb}")
            if counts_a == counts_b:
                print(f"  events: same counts, differing payloads "
                      f"({len(a)} vs {len(b)})")
        else:
            ra = json.dumps(a, sort_keys=True, default=str)
            rb = json.dumps(b, sort_keys=True, default=str)
            print(f"  {key}: {ra[:80]} != {rb[:80]}")
    return 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="inspect farm telemetry and the decision journal")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p) -> None:
        p.add_argument("--seed", type=int, default=GOLDEN_SEED,
                       help="golden-farm seed (when no file is given)")
        p.add_argument("--duration", type=float,
                       default=GOLDEN_DURATION,
                       help="golden-farm virtual seconds")
        p.add_argument("--snapshot", metavar="PATH",
                       help="read a telemetry snapshot JSON file")
        p.add_argument("--journal", metavar="PATH",
                       help="read a journal snapshot JSON file")

    p_snapshot = sub.add_parser(
        "snapshot", help="dump telemetry + journal state")
    common(p_snapshot)
    p_snapshot.add_argument("--format", default="json",
                            choices=("json", "openmetrics", "jsonl",
                                     "chrome"))
    p_snapshot.add_argument("--out", metavar="PATH",
                            help="write to a file instead of stdout")
    p_snapshot.add_argument("--indent", type=int, default=2)
    p_snapshot.set_defaults(func=_cmd_snapshot)

    p_grep = sub.add_parser(
        "grep", help="regex search over journal events")
    common(p_grep)
    p_grep.add_argument("pattern")
    p_grep.add_argument("--kind", help="restrict to one event kind")
    p_grep.set_defaults(func=_cmd_grep)

    p_why = sub.add_parser(
        "why", help="causal decision chain for one flow")
    common(p_why)
    p_why.add_argument("flow",
                       help="flow id (or unambiguous substring), or "
                            "seq:N for a single event's chain")
    p_why.set_defaults(func=_cmd_why)

    p_diff = sub.add_parser(
        "diff", help="compare two dumped snapshots/journals")
    p_diff.add_argument("left")
    p_diff.add_argument("right")
    p_diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
