"""Snapshot relabeling and merging for sharded campaigns.

A parallel campaign (:mod:`repro.parallel`) produces one telemetry
snapshot per shard, each captured by :func:`repro.obs.export.snapshot`
inside its own process.  To view a campaign as one telemetry domain
without losing per-shard attribution — or determinism — the merge

* stamps every metric identity with the shard's labels
  (``name{a=b}`` becomes ``name{a=b,shard=3}``, labels re-sorted so
  identities stay canonical),
* unions the relabeled metric maps (colliding identities are a
  caller bug and raise),
* prefixes retained trace ids with the shard labels, and
* sums hub/tracer accounting while taking the max virtual time.

Relabeling instead of summing keeps the merge lossless and
order-independent: merging the same shard snapshots in any order, from
any number of worker processes, yields byte-identical JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["label_identity", "label_snapshot", "merge_journals",
           "merge_snapshots"]

_METRIC_SECTIONS = ("counters", "gauges", "histograms")


def _parse_identity(identity: str) -> Tuple[str, List[Tuple[str, str]]]:
    name, brace, rest = identity.partition("{")
    if not brace:
        return identity, []
    inner = rest[:-1] if rest.endswith("}") else rest
    labels = []
    for pair in inner.split(","):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        labels.append((key, value))
    return name, labels


def label_identity(identity: str, **labels: str) -> str:
    """Add labels to a rendered metric identity, keeping sorted order."""
    name, existing = _parse_identity(identity)
    merged = dict(existing)
    for key, value in labels.items():
        if key in merged and merged[key] != str(value):
            raise ValueError(
                f"label {key!r} already set on {identity!r} "
                f"({merged[key]!r} != {value!r})")
        merged[key] = str(value)
    if not merged:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(merged.items()))
    return f"{name}{{{inner}}}"


def _label_prefix(labels: Dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def label_snapshot(snap: dict, **labels: str) -> dict:
    """A copy of ``snap`` with every metric identity (and trace id)
    carrying the extra labels."""
    if not labels:
        return dict(snap)
    out = dict(snap)
    for section in _METRIC_SECTIONS:
        out[section] = {
            label_identity(identity, **labels): value
            for identity, value in snap.get(section, {}).items()
        }
    prefix = _label_prefix({k: str(v) for k, v in labels.items()})
    out["traces"] = {
        f"{prefix}/{trace_id}": spans
        for trace_id, spans in snap.get("traces", {}).items()
    }
    return out


def _source_name(sources: Optional[List[str]], position: int) -> str:
    if sources is not None and position < len(sources):
        return sources[position]
    return f"snapshot {position}"


def merge_snapshots(snaps: List[dict],
                    labels: Optional[List[Dict[str, str]]] = None,
                    sources: Optional[List[str]] = None) -> dict:
    """Merge shard snapshots into one labeled campaign snapshot.

    ``labels[i]`` (e.g. ``{"shard": "3"}``) is applied to ``snaps[i]``
    before the union; omit it only when identities are already
    disjoint.  ``sources[i]`` (e.g. ``"shard 3 @ hostB:9000"``) names
    where ``snaps[i]`` came from, for error messages only.  Raises
    ``ValueError`` on identity collisions, naming both colliding
    sources.
    """
    if labels is not None and len(labels) != len(snaps):
        raise ValueError("need exactly one label set per snapshot")
    if sources is not None and len(sources) != len(snaps):
        raise ValueError("need exactly one source name per snapshot")
    merged: dict = {
        "schema": None,
        "enabled": False,
        "time": 0.0,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "traces": {},
        "hub": {"published": 0, "retained": 0, "evicted": 0},
        "tracer": {"spans": 0, "traces": 0, "evicted": 0},
    }
    origins: Dict[str, int] = {}  # identity -> contributing position
    for position, snap in enumerate(snaps):
        if labels is not None:
            snap = label_snapshot(snap, **labels[position])
        if merged["schema"] is None:
            merged["schema"] = snap.get("schema")
        elif snap.get("schema") != merged["schema"]:
            raise ValueError(
                f"snapshot schema mismatch: {snap.get('schema')!r} "
                f"!= {merged['schema']!r}")
        merged["enabled"] = merged["enabled"] or bool(snap.get("enabled"))
        merged["time"] = max(merged["time"], snap.get("time", 0.0))
        for section in _METRIC_SECTIONS + ("traces",):
            target = merged[section]
            for identity, value in snap.get(section, {}).items():
                if identity in target:
                    raise ValueError(
                        f"identity collision while merging snapshots: "
                        f"{identity!r} contributed by both "
                        f"{_source_name(sources, origins[identity])} "
                        f"and {_source_name(sources, position)} "
                        f"(pass labels= to disambiguate)")
                target[identity] = value
                origins[identity] = position
        for group in ("hub", "tracer"):
            for key, value in snap.get(group, {}).items():
                merged[group][key] = merged[group].get(key, 0) + value
    # Canonical ordering so merged snapshots render byte-identically
    # regardless of shard arrival order.
    for section in _METRIC_SECTIONS + ("traces",):
        merged[section] = dict(sorted(merged[section].items()))
    return merged


# ----------------------------------------------------------------------
# Journal merge (repro.obs.journal snapshots)
# ----------------------------------------------------------------------
def _label_journal(snap: dict, prefix: str) -> List[dict]:
    """Shard-label one journal snapshot's events: seq/parent become
    ``"<prefix>/<seq>"`` strings and flow ids gain the same prefix, so
    causal chains stay intact and cannot collide across shards."""
    events = []
    for event in snap.get("events", []):
        relabeled = dict(event)
        relabeled["seq"] = f"{prefix}/{event['seq']}"
        if event.get("parent") is not None:
            relabeled["parent"] = f"{prefix}/{event['parent']}"
        if event.get("flow") is not None:
            relabeled["flow"] = f"{prefix}/{event['flow']}"
        relabeled["shard"] = prefix
        events.append(relabeled)
    return events


def merge_journals(snaps: List[dict],
                   labels: Optional[List[Dict[str, str]]] = None,
                   sources: Optional[List[str]] = None) -> dict:
    """Merge per-shard journal snapshots into one causally-consistent
    campaign journal.

    ``labels[i]`` stamps shard *i*; duplicate shard label sets would
    silently interleave two shards' causal chains, so they **raise**,
    naming the colliding label set and — when ``sources`` names where
    each snapshot came from (``"shard 3 @ hostB:9000"``) — both source
    hosts.  Events sort by ``(time, shard, per-shard seq)`` — a pure
    function of the shard snapshots, so a serial and a parallel run of
    the same campaign merge to byte-identical journals regardless of
    arrival order or which host ran which shard (digest parity).
    """
    if labels is not None and len(labels) != len(snaps):
        raise ValueError("need exactly one label set per journal")
    if sources is not None and len(sources) != len(snaps):
        raise ValueError("need exactly one source name per journal")
    merged: dict = {
        "schema": None,
        "enabled": False,
        "time": 0.0,
        "recorded": 0,
        "evicted": 0,
        "events": [],
        "rings": {},
    }
    keyed = []
    seen_prefixes: Dict[str, int] = {}  # prefix -> contributing position
    ring_origins: Dict[str, int] = {}
    for position, snap in enumerate(snaps):
        if merged["schema"] is None:
            merged["schema"] = snap.get("schema")
        elif snap.get("schema") != merged["schema"]:
            raise ValueError(
                f"journal schema mismatch: {snap.get('schema')!r} "
                f"!= {merged['schema']!r}")
        label_set = labels[position] if labels is not None \
            else {"shard": str(position)}
        prefix = _label_prefix({k: str(v) for k, v in label_set.items()})
        if prefix in seen_prefixes:
            raise ValueError(
                f"duplicate shard labels while merging journals: "
                f"{prefix!r} used by both "
                f"{_source_name(sources, seen_prefixes[prefix])} and "
                f"{_source_name(sources, position)} "
                f"(labels must be unique per shard)")
        seen_prefixes[prefix] = position
        merged["enabled"] = merged["enabled"] or bool(snap.get("enabled"))
        merged["time"] = max(merged["time"], snap.get("time", 0.0))
        merged["recorded"] += snap.get("recorded", 0)
        merged["evicted"] += snap.get("evicted", 0)
        for event, original in zip(_label_journal(snap, prefix),
                                   snap.get("events", [])):
            keyed.append(((event["t"], prefix, original["seq"]), event))
        for name in snap.get("rings") or {}:
            identity = f"{prefix}/{name}"
            if identity in merged["rings"]:
                raise ValueError(
                    f"ring collision while merging journals: {identity!r} "
                    f"contributed by both "
                    f"{_source_name(sources, ring_origins[identity])} and "
                    f"{_source_name(sources, position)}")
            merged["rings"][identity] = snap["rings"][name]
            ring_origins[identity] = position
    keyed.sort(key=lambda pair: pair[0])
    merged["events"] = [event for _, event in keyed]
    merged["rings"] = dict(sorted(merged["rings"].items()))
    return merged
