"""Per-flow spans on the virtual clock.

A *trace* is the ordered list of spans one flow produced on its way
through the farm — bridge ingress, safety admission, the shim round
trip to the containment server, the verdict, proxying.  Span
timestamps come from the simulation clock, so the same seed replays
to byte-identical traces: the operator can diff two runs span by span.

Spans within a trace are ordered by a tracer-wide sequence number, not
by timestamp — two spans created at the same virtual instant (common:
callbacks take zero virtual time) still sort in creation order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

Clock = Callable[[], float]


class Span:
    """One named step of a flow's journey."""

    __slots__ = ("trace_id", "name", "start", "end", "labels", "seq",
                 "_clock")

    def __init__(self, trace_id: str, name: str, start: float, seq: int,
                 labels: Tuple[Tuple[str, str], ...],
                 clock: Optional[Clock] = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.labels = labels
        self.seq = seq
        self._clock = clock

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def finish(self, at: Optional[float] = None) -> "Span":
        """Close the span (idempotent) at ``at`` or the current virtual
        time."""
        if self.end is None:
            self.end = at if at is not None else (
                self._clock() if self._clock is not None else self.start
            )
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "labels": dict(self.labels),
        }

    def __repr__(self) -> str:
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"<Span {self.name} [{self.start:.6f}..{end}]>"


class _NullSpan:
    """Do-nothing span for disabled telemetry."""

    __slots__ = ()
    finished = True
    duration = 0.0

    def finish(self, at: Optional[float] = None) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded store of per-flow span lists.

    Traces evict FIFO once ``max_traces`` is exceeded, so week-scale
    runs keep a sliding window of recent flows rather than growing
    without bound.  ``evicted`` counts what fell off the window — the
    exporter surfaces it so truncation is never silent.
    """

    def __init__(self, clock: Clock, max_traces: int = 1024) -> None:
        self.clock = clock
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._seq = 0
        self.spans_created = 0
        self.evicted = 0

    def _append(self, trace_id: str, span: Span) -> None:
        spans = self._traces.get(trace_id)
        if spans is None:
            if len(self._traces) >= self.max_traces:
                self._traces.popitem(last=False)
                self.evicted += 1
            spans = self._traces[trace_id] = []
        spans.append(span)

    def start_span(self, trace_id: str, name: str, **labels: str) -> Span:
        """Open a span now; caller finishes it when the step completes."""
        self._seq += 1
        self.spans_created += 1
        span = Span(trace_id, name, self.clock(), self._seq,
                    tuple(sorted((k, str(v)) for k, v in labels.items())),
                    clock=self.clock)
        self._append(trace_id, span)
        return span

    def point(self, trace_id: str, name: str, **labels: str) -> Span:
        """An instantaneous span (start == end)."""
        span = self.start_span(trace_id, name, **labels)
        span.end = span.start
        return span

    def trace(self, trace_id: str) -> List[Span]:
        return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> List[str]:
        return list(self._traces)

    def traces(self) -> Dict[str, List[Span]]:
        return {tid: list(spans) for tid, spans in self._traces.items()}

    def __len__(self) -> int:
        return len(self._traces)

    def __repr__(self) -> str:
        return (f"<Tracer traces={len(self._traces)} "
                f"spans={self.spans_created}>")


class NullTracer:
    """Do-nothing tracer for disabled telemetry."""

    __slots__ = ()
    spans_created = 0
    evicted = 0

    def start_span(self, trace_id: str, name: str, **labels: str) -> _NullSpan:
        return NULL_SPAN

    def point(self, trace_id: str, name: str, **labels: str) -> _NullSpan:
        return NULL_SPAN

    def trace(self, trace_id: str) -> List[Span]:
        return []

    def trace_ids(self) -> List[str]:
        return []

    def traces(self) -> Dict[str, List[Span]]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
