"""Causal reconstruction over journal snapshots.

Every helper here operates on the JSON-safe event dicts inside a
journal snapshot (``snapshot["events"]``), not on live
:class:`~repro.obs.journal.JournalEvent` objects — so the same code
reads a live farm's journal, a file dumped by ``--journal PATH``, and
a shard-labeled merged journal from a parallel campaign.

The causal model: each event carries a ``parent`` reference (an event
seq; shard-prefixed strings after a merge).  Walking parents from any
event yields its decision chain — e.g. for a flow that a trigger
eventually recycled::

    flow.created -> verdict.issued -> verdict.applied
                 -> fastpath.install -> trigger.fired -> lifecycle

A parent that fell off the bounded ring renders as a root; truncation
shows up as a shorter chain, never as a wrong one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "build_index",
    "chain_for",
    "deepest_chains",
    "event_counts",
    "flows_in",
    "render_chain",
    "render_why",
    "render_why_event",
    "resolve_flow",
]


def build_index(events: List[dict]) -> Dict[object, dict]:
    """Map event id (``seq``) to event dict."""
    return {event["seq"]: event for event in events}


def event_counts(events: List[dict]) -> Dict[str, int]:
    """Events per kind, name-sorted."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return dict(sorted(counts.items()))


def flows_in(events: List[dict]) -> List[str]:
    """Distinct flow ids, in first-appearance order."""
    seen: Dict[str, None] = {}
    for event in events:
        flow = event.get("flow")
        if flow is not None and flow not in seen:
            seen[flow] = None
    return list(seen)


def resolve_flow(events: List[dict], token: str) -> str:
    """Resolve ``token`` to a flow id: exact match wins, otherwise a
    unique substring match; ambiguity and absence raise ValueError."""
    flows = flows_in(events)
    if token in flows:
        return token
    matches = [flow for flow in flows if token in flow]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise ValueError(f"no journaled flow matches {token!r} "
                         f"({len(flows)} flows recorded)")
    preview = ", ".join(matches[:4])
    raise ValueError(f"{token!r} is ambiguous: {len(matches)} flows "
                     f"match ({preview}...)")


def _ancestors(event: dict, index: Dict[object, dict]) -> List[dict]:
    """Parent walk from ``event`` (exclusive) to its root, cycle-safe."""
    out: List[dict] = []
    seen = {event["seq"]}
    parent = event.get("parent")
    while parent is not None and parent in index and parent not in seen:
        seen.add(parent)
        ancestor = index[parent]
        out.append(ancestor)
        parent = ancestor.get("parent")
    return out


def chain_for(events: List[dict], flow_id: str) -> List[dict]:
    """Every event of ``flow_id`` plus the transitive parents that led
    to them (e.g. the trigger firing on the flow's VLAN), in recording
    order."""
    index = build_index(events)
    order = {event["seq"]: position
             for position, event in enumerate(events)}
    selected: Dict[object, dict] = {}
    for event in events:
        if event.get("flow") != flow_id:
            continue
        selected[event["seq"]] = event
        for ancestor in _ancestors(event, index):
            selected[ancestor["seq"]] = ancestor
    return sorted(selected.values(),
                  key=lambda event: order[event["seq"]])


def _depth_map(events: List[dict]) -> Dict[object, int]:
    """Chain length (1 = root) per event, iterative with memoization."""
    index = build_index(events)
    depth: Dict[object, int] = {}
    for event in events:
        stack = []
        cursor: Optional[dict] = event
        guard = set()
        while (cursor is not None and cursor["seq"] not in depth
               and cursor["seq"] not in guard):
            guard.add(cursor["seq"])
            stack.append(cursor)
            parent = cursor.get("parent")
            cursor = index.get(parent) if parent is not None else None
        base = depth.get(cursor["seq"], 0) if cursor is not None else 0
        while stack:
            node = stack.pop()
            base += 1
            depth[node["seq"]] = base
    return depth


def deepest_chains(events: List[dict], n: int = 5
                   ) -> List[Tuple[int, List[dict]]]:
    """The ``n`` deepest causal chains as ``(depth, root..leaf)``
    tuples, deepest first; each chain is reported once (by its leaf,
    keeping only maximal chains)."""
    index = build_index(events)
    depth = _depth_map(events)
    order = {event["seq"]: position
             for position, event in enumerate(events)}
    parents = {event.get("parent") for event in events}
    leaves = [event for event in events if event["seq"] not in parents]
    leaves.sort(key=lambda event: (-depth[event["seq"]],
                                   order[event["seq"]]))
    out: List[Tuple[int, List[dict]]] = []
    for leaf in leaves[:n]:
        chain = list(reversed(_ancestors(leaf, index))) + [leaf]
        out.append((depth[leaf["seq"]], chain))
    return out


def _format_fields(fields: dict) -> str:
    return " ".join(f"{key}={fields[key]}" for key in sorted(fields))


def render_chain(chain: List[dict], indent: str = "  ") -> str:
    """One chain, one line per event, indented by causal depth."""
    depth_by_seq: Dict[object, int] = {}
    lines = []
    for event in chain:
        parent = event.get("parent")
        level = depth_by_seq.get(parent, -1) + 1
        depth_by_seq[event["seq"]] = level
        extra = _format_fields(event.get("fields", {}))
        vlan = event.get("vlan")
        vlan_text = f" vlan={vlan}" if vlan is not None else ""
        lines.append(f"{indent * level}t={event['t']:<12.6f} "
                     f"{event['kind']}{vlan_text}"
                     f"{'  ' + extra if extra else ''}")
    return "\n".join(lines)


def render_why(events: List[dict], token: str) -> str:
    """The ``python -m repro.obs why <flow>`` payload: the flow's full
    decision chain as an indented tree."""
    flow_id = resolve_flow(events, token)
    chain = chain_for(events, flow_id)
    header = f"why {flow_id}"
    body = render_chain(chain)
    return f"{header}\n{'-' * len(header)}\n{body}\n" \
           f"({len(chain)} events)"


def render_why_event(events: List[dict], seq: object) -> str:
    """Like :func:`render_why`, but anchored on one event ``seq``
    (useful when a coverage violation or grep result names an event,
    not a flow).  Raises :class:`KeyError` for an unknown seq."""
    index = build_index(events)
    if seq not in index:
        raise KeyError(f"no such event: seq {seq!r} is not in the "
                       f"journal ({len(events)} events recorded)")
    event = index[seq]
    chain = list(reversed(_ancestors(event, index))) + [event]
    header = f"why event {seq}"
    body = render_chain(chain)
    return f"{header}\n{'-' * len(header)}\n{body}\n" \
           f"({len(chain)} events)"
