"""Farm-wide telemetry: metrics, flow traces, and structured events.

The paper's reporting layer is "the operator's eyes" (§6.5); this
package is the live counterpart — in-path visibility into where
packets are dropped, how long shim round trips take on the virtual
clock, and how hot the safety filter runs, all captured deterministically
so two runs with the same seed snapshot identically.

Layout:

* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms,
* :mod:`repro.obs.trace` — per-flow spans on the simulation clock,
* :mod:`repro.obs.hub` — ring-buffered structured events,
* :mod:`repro.obs.telemetry` — the facade (plus the disabled no-op),
* :mod:`repro.obs.journal` — the flight recorder: bounded causal
  decision journal plus time-series sample rings,
* :mod:`repro.obs.provenance` — causal-chain reconstruction over
  journal snapshots (``why <flow>``),
* :mod:`repro.obs.export` — JSON/text snapshot exporters plus
  OpenMetrics, JSONL, and Chrome trace-event renderings,
* :mod:`repro.obs.merge` — shard-labeled snapshot and journal
  relabeling/merging for parallel campaigns (:mod:`repro.parallel`).

``python -m repro.obs`` (:mod:`repro.obs.__main__`) is the operator
CLI: ``snapshot``, ``diff``, ``grep``, and ``why <flow>``.
"""

from repro.obs.export import (
    render_chrome_trace,
    render_jsonl,
    render_openmetrics,
    render_text,
    snapshot,
    to_json,
)
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalEvent,
    NULL_JOURNAL,
    NullJournal,
    journal_digest,
)
from repro.obs.merge import (
    label_identity,
    label_snapshot,
    merge_journals,
    merge_snapshots,
)
from repro.obs.provenance import (
    chain_for,
    deepest_chains,
    event_counts,
    render_why,
)
from repro.obs.hub import NULL_HUB, TelemetryEvent, TelemetryHub
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    format_key,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalEvent",
    "MetricsRegistry",
    "NULL_HUB",
    "NULL_INSTRUMENT",
    "NULL_JOURNAL",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullJournal",
    "NullTelemetry",
    "chain_for",
    "deepest_chains",
    "event_counts",
    "journal_digest",
    "label_identity",
    "label_snapshot",
    "merge_journals",
    "merge_snapshots",
    "render_chrome_trace",
    "render_jsonl",
    "render_openmetrics",
    "render_why",
    "Span",
    "Telemetry",
    "TelemetryEvent",
    "TelemetryHub",
    "Tracer",
    "format_key",
    "render_text",
    "snapshot",
    "to_json",
]
