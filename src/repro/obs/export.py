"""Snapshot exporters: the telemetry domain as JSON or text.

A snapshot is a plain dict (JSON-ready, keys sorted) capturing every
counter, gauge, histogram summary, retained trace, and hub accounting
at one virtual instant.  Because all inputs are deterministic under a
fixed seed, ``to_json`` produces byte-identical output across replays
— snapshots can be diffed like any other run artifact.

Metric identities render as ``name{label=value,...}`` with labels in
sorted order (see :func:`repro.obs.metrics.format_key`).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.metrics import Counter, Gauge, Histogram, format_key

SNAPSHOT_SCHEMA = "gq.telemetry/1"


def snapshot(telemetry, include_traces: bool = True) -> dict:
    """Capture the whole telemetry domain as a JSON-ready dict."""
    out: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "enabled": bool(getattr(telemetry, "enabled", False)),
        "time": telemetry.clock() if getattr(telemetry, "enabled", False)
        else 0.0,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "traces": {},
        "hub": {"published": 0, "retained": 0, "evicted": 0},
        "tracer": {"spans": 0, "traces": 0, "evicted": 0},
    }
    if not out["enabled"]:
        return out

    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for metric in telemetry.registry.metrics():
        if not getattr(metric, "deterministic", True):
            continue
        for key, cell in sorted(metric.cells().items()):
            identity = format_key(metric.name, key)
            if isinstance(metric, Counter):
                counters[identity] = cell.value
            elif isinstance(metric, Gauge):
                gauges[identity] = cell.value
            elif isinstance(metric, Histogram):
                entry = cell.summary()
                entry["buckets"] = [
                    [bound, count]
                    for bound, count in zip(
                        list(cell.bounds) + ["+inf"], cell.bucket_counts)
                    if count
                ]
                histograms[identity] = entry
    out["counters"] = counters
    out["gauges"] = gauges
    out["histograms"] = histograms

    if include_traces:
        out["traces"] = {
            trace_id: [span.to_dict() for span in spans]
            for trace_id, spans in telemetry.tracer.traces().items()
        }
    out["hub"] = {
        "published": telemetry.hub.published,
        "retained": len(telemetry.hub),
        "evicted": telemetry.hub.evicted,
    }
    out["tracer"] = {
        "spans": telemetry.tracer.spans_created,
        "traces": len(telemetry.tracer),
        "evicted": telemetry.tracer.evicted,
    }
    return out


def to_json(telemetry, include_traces: bool = True,
            indent: int = None) -> str:
    """Deterministic JSON rendering of :func:`snapshot`."""
    return json.dumps(snapshot(telemetry, include_traces=include_traces),
                      sort_keys=True, indent=indent)


def render_text(telemetry, include_traces: bool = False) -> str:
    """Human-readable snapshot — the report appendix format."""
    snap = snapshot(telemetry, include_traces=include_traces)
    lines: List[str] = []
    if not snap["enabled"]:
        return "(telemetry disabled)"
    lines.append(f"Telemetry snapshot at t={snap['time']:.3f}s")
    if snap["counters"]:
        lines.append("")
        lines.append("Counters")
        for identity, value in snap["counters"].items():
            lines.append(f"  {identity:<60} {value:>12g}")
    if snap["gauges"]:
        lines.append("")
        lines.append("Gauges")
        for identity, value in snap["gauges"].items():
            lines.append(f"  {identity:<60} {value:>12g}")
    if snap["histograms"]:
        lines.append("")
        lines.append("Histograms")
        for identity, entry in snap["histograms"].items():
            lines.append(
                f"  {identity:<60} n={entry['count']:g} "
                f"p50={entry.get('p50', 0.0):.6f} "
                f"p95={entry.get('p95', 0.0):.6f} "
                f"p99={entry.get('p99', 0.0):.6f}"
            )
    if include_traces and snap["traces"]:
        lines.append("")
        lines.append("Traces")
        for trace_id, spans in snap["traces"].items():
            lines.append(f"  {trace_id}")
            for span in spans:
                end = span["end"]
                end_text = f"{end:.6f}" if end is not None else "open"
                lines.append(
                    f"    {span['name']:<16} "
                    f"[{span['start']:.6f} .. {end_text}]"
                )
    hub = snap["hub"]
    tracer = snap["tracer"]
    lines.append("")
    lines.append(
        f"Hub: {hub['published']} events ({hub['evicted']} evicted) · "
        f"Tracer: {tracer['spans']} spans in {tracer['traces']} traces "
        f"({tracer['evicted']} evicted)"
    )
    return "\n".join(lines)
