"""Snapshot exporters: the telemetry domain as JSON or text.

A snapshot is a plain dict (JSON-ready, keys sorted) capturing every
counter, gauge, histogram summary, retained trace, and hub accounting
at one virtual instant.  Because all inputs are deterministic under a
fixed seed, ``to_json`` produces byte-identical output across replays
— snapshots can be diffed like any other run artifact.

Metric identities render as ``name{label=value,...}`` with labels in
sorted order (see :func:`repro.obs.metrics.format_key`).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.metrics import Counter, Gauge, Histogram, format_key

SNAPSHOT_SCHEMA = "gq.telemetry/1"


def snapshot(telemetry, include_traces: bool = True) -> dict:
    """Capture the whole telemetry domain as a JSON-ready dict."""
    out: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "enabled": bool(getattr(telemetry, "enabled", False)),
        "time": telemetry.clock() if getattr(telemetry, "enabled", False)
        else 0.0,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "traces": {},
        "hub": {"published": 0, "retained": 0, "evicted": 0},
        "tracer": {"spans": 0, "traces": 0, "evicted": 0},
    }
    if not out["enabled"]:
        return out

    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for metric in telemetry.registry.metrics():
        if not getattr(metric, "deterministic", True):
            continue
        for key, cell in sorted(metric.cells().items()):
            identity = format_key(metric.name, key)
            if isinstance(metric, Counter):
                counters[identity] = cell.value
            elif isinstance(metric, Gauge):
                gauges[identity] = cell.value
            elif isinstance(metric, Histogram):
                entry = cell.summary()
                entry["buckets"] = [
                    [bound, count]
                    for bound, count in zip(
                        list(cell.bounds) + ["+inf"], cell.bucket_counts)
                    if count
                ]
                histograms[identity] = entry
    out["counters"] = counters
    out["gauges"] = gauges
    out["histograms"] = histograms

    if include_traces:
        out["traces"] = {
            trace_id: [span.to_dict() for span in spans]
            for trace_id, spans in telemetry.tracer.traces().items()
        }
    out["hub"] = {
        "published": telemetry.hub.published,
        "retained": len(telemetry.hub),
        "evicted": telemetry.hub.evicted,
    }
    out["tracer"] = {
        "spans": telemetry.tracer.spans_created,
        "traces": len(telemetry.tracer),
        "evicted": telemetry.tracer.evicted,
    }
    return out


def to_json(telemetry, include_traces: bool = True,
            indent: int = None) -> str:
    """Deterministic JSON rendering of :func:`snapshot`."""
    return json.dumps(snapshot(telemetry, include_traces=include_traces),
                      sort_keys=True, indent=indent)


def render_text(telemetry, include_traces: bool = False) -> str:
    """Human-readable snapshot — the report appendix format."""
    snap = snapshot(telemetry, include_traces=include_traces)
    lines: List[str] = []
    if not snap["enabled"]:
        return "(telemetry disabled)"
    lines.append(f"Telemetry snapshot at t={snap['time']:.3f}s")
    if snap["counters"]:
        lines.append("")
        lines.append("Counters")
        for identity, value in snap["counters"].items():
            lines.append(f"  {identity:<60} {value:>12g}")
    if snap["gauges"]:
        lines.append("")
        lines.append("Gauges")
        for identity, value in snap["gauges"].items():
            lines.append(f"  {identity:<60} {value:>12g}")
    if snap["histograms"]:
        lines.append("")
        lines.append("Histograms")
        for identity, entry in snap["histograms"].items():
            lines.append(
                f"  {identity:<60} n={entry['count']:g} "
                f"p50={entry.get('p50', 0.0):.6f} "
                f"p95={entry.get('p95', 0.0):.6f} "
                f"p99={entry.get('p99', 0.0):.6f}"
            )
    if include_traces and snap["traces"]:
        lines.append("")
        lines.append("Traces")
        for trace_id, spans in snap["traces"].items():
            lines.append(f"  {trace_id}")
            for span in spans:
                end = span["end"]
                end_text = f"{end:.6f}" if end is not None else "open"
                lines.append(
                    f"    {span['name']:<16} "
                    f"[{span['start']:.6f} .. {end_text}]"
                )
    hub = snap["hub"]
    tracer = snap["tracer"]
    lines.append("")
    lines.append(
        f"Hub: {hub['published']} events ({hub['evicted']} evicted) · "
        f"Tracer: {tracer['spans']} spans in {tracer['traces']} traces "
        f"({tracer['evicted']} evicted)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Interchange formats: OpenMetrics, JSONL event stream, Chrome trace.
# All three consume *snapshot dicts* (not live domains), so they work
# equally on a live farm's capture, a ``--snapshot``/``--journal``
# file, and a shard-labeled merged snapshot from a parallel campaign.
# ----------------------------------------------------------------------
def _split_identity(identity: str):
    """``name{k=v,...}`` → (name, [(k, v), ...])."""
    if "{" not in identity:
        return identity, []
    name, _, rest = identity.partition("{")
    pairs = []
    for part in rest.rstrip("}").split(","):
        if part:
            key, _, value = part.partition("=")
            pairs.append((key, value))
    return name, pairs


def _om_name(name: str) -> str:
    """OpenMetrics-safe metric name (dots become underscores)."""
    return "".join(ch if (ch.isalnum() or ch == "_") else "_"
                   for ch in name)


def _om_labels(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{_om_name(k)}="{v}"' for k, v in pairs)
    return f"{{{inner}}}"


def render_openmetrics(snap: dict) -> str:
    """A telemetry snapshot as OpenMetrics text (``# TYPE`` headers,
    sanitized names, terminated by ``# EOF``)."""
    lines: List[str] = []
    families: Dict[str, List[str]] = {}
    kinds: Dict[str, str] = {}
    for section, kind in (("counters", "counter"), ("gauges", "gauge")):
        for identity in sorted(snap.get(section) or {}):
            name, pairs = _split_identity(identity)
            om = _om_name(name)
            kinds[om] = kind
            suffix = "_total" if kind == "counter" else ""
            families.setdefault(om, []).append(
                f"{om}{suffix}{_om_labels(pairs)} "
                f"{snap[section][identity]:g}")
    for identity in sorted(snap.get("histograms") or {}):
        entry = snap["histograms"][identity]
        name, pairs = _split_identity(identity)
        om = _om_name(name)
        kinds[om] = "histogram"
        samples = families.setdefault(om, [])
        cumulative = 0
        for bound, count in entry.get("buckets", []):
            cumulative += count
            le = "+Inf" if bound == "+inf" else f"{bound:g}"
            samples.append(
                f"{om}_bucket{_om_labels(pairs + [('le', le)])} "
                f"{cumulative:g}")
        samples.append(f"{om}_count{_om_labels(pairs)} "
                       f"{entry.get('count', 0):g}")
        samples.append(f"{om}_sum{_om_labels(pairs)} "
                       f"{entry.get('sum', 0.0):g}")
    for om in sorted(families):
        lines.append(f"# TYPE {om} {kinds[om]}")
        lines.extend(families[om])
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_jsonl(journal_snap: dict) -> str:
    """A journal snapshot as a JSONL event stream: one sorted-key JSON
    object per line, header line first, ring samples last."""
    lines = [json.dumps(
        {"schema": journal_snap.get("schema"),
         "time": journal_snap.get("time"),
         "recorded": journal_snap.get("recorded"),
         "evicted": journal_snap.get("evicted")}, sort_keys=True)]
    for event in journal_snap.get("events", []):
        lines.append(json.dumps(event, sort_keys=True))
    for name in sorted(journal_snap.get("rings") or {}):
        ring = journal_snap["rings"][name]
        lines.append(json.dumps({"ring": name, **ring}, sort_keys=True))
    return "\n".join(lines) + "\n"


def render_chrome_trace(telemetry_snap: dict = None,
                        journal_snap: dict = None,
                        indent: int = None) -> str:
    """Spans plus journal events in Chrome trace-event JSON, viewable
    in ``about:tracing`` / Perfetto.

    Finished spans become complete ("X") events with microsecond
    ``ts``/``dur``; journal events become instants ("i") on a track
    per VLAN.  Virtual seconds map to trace microseconds.
    """
    trace_events = []
    if telemetry_snap:
        for trace_id in sorted(telemetry_snap.get("traces") or {}):
            for span in telemetry_snap["traces"][trace_id]:
                end = span["end"] if span["end"] is not None \
                    else span["start"]
                trace_events.append({
                    "name": span["name"],
                    "cat": "span",
                    "ph": "X",
                    "pid": 1,
                    "tid": trace_id,
                    "ts": round(span["start"] * 1e6, 3),
                    "dur": round((end - span["start"]) * 1e6, 3),
                    "args": dict(span.get("labels") or {}),
                })
    if journal_snap:
        for event in journal_snap.get("events", []):
            vlan = event.get("vlan")
            trace_events.append({
                "name": event["kind"],
                "cat": "journal",
                "ph": "i",
                "s": "t",
                "pid": 2,
                "tid": f"vlan{vlan}" if vlan is not None else "farm",
                "ts": round(event["t"] * 1e6, 3),
                "args": {"flow": event.get("flow"),
                         "seq": event["seq"],
                         "parent": event.get("parent"),
                         **(event.get("fields") or {})},
            })
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    return json.dumps(document, sort_keys=True, indent=indent)
