"""The flight recorder: a bounded, append-only decision journal.

Where the metrics registry answers "how many", the journal answers
"why": every containment-relevant decision — a verdict issued, a
fast-path handler installed or evicted, a failover, a degraded-mode
transition, a malice-barrier quarantine, a lifecycle action — lands
here as one :class:`JournalEvent` stamped with the **virtual clock**
and a **causal parent reference**, so a flow's full decision chain is
reconstructable as a tree (:mod:`repro.obs.provenance`).

Determinism contract
--------------------
* Events are appended in simulation order and numbered by a journal-
  wide sequence, so a fixed seed replays to a byte-identical event
  stream (:meth:`Journal.digest`).
* Disabled is the default: :data:`NULL_JOURNAL` hangs off every
  :class:`~repro.sim.engine.Simulator` and turns each ``record()``
  into a no-op, so instrumented call sites need no conditionals and
  disabled runs stay byte-identical to a build without the journal.
* The store is bounded: beyond ``capacity`` the oldest events fall
  off and ``evicted`` counts them — truncation is never silent.

Causal parenting
----------------
Decisions cross component boundaries through *serialized* shim bytes,
so the containment server and the router cannot thread object
references to link their events.  Instead the journal auto-parents:
``record(kind, flow=..., vlan=...)`` defaults ``parent`` to the last
event recorded for the same flow id (falling back to the same VLAN),
which is exactly the causal predecessor because all recording happens
inline on the virtual clock.  Components that only know a flow by its
five-tuple register an alias (:meth:`Journal.bind_flow`) so both ends
of the shim protocol resolve to one flow id.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Optional

Clock = Callable[[], float]

JOURNAL_SCHEMA = "gq.journal/1"

#: Default bounded-ring capacity (events kept before FIFO eviction).
DEFAULT_CAPACITY = 65536

#: Samples kept per time-series ring before FIFO eviction.
DEFAULT_RING_CAPACITY = 512

#: Pass as ``parent=`` to force a chain root: the event records with
#: no parent even when flow/VLAN history exists (e.g. ``flow.created``
#: starts a fresh chain rather than chaining to the previous flow on
#: the same VLAN).
ROOT = object()


class JournalEvent:
    """One recorded decision."""

    __slots__ = ("seq", "time", "kind", "flow", "vlan", "parent", "fields")

    def __init__(self, seq: int, time: float, kind: str,
                 flow: Optional[str], vlan: Optional[int],
                 parent: Optional[int], fields: dict) -> None:
        self.seq = seq
        self.time = time
        self.kind = kind
        self.flow = flow
        self.vlan = vlan
        self.parent = parent
        self.fields = fields

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t": round(self.time, 9),
            "kind": self.kind,
            "flow": self.flow,
            "vlan": self.vlan,
            "parent": self.parent,
            "fields": self.fields,
        }

    def __repr__(self) -> str:
        return (f"<JournalEvent #{self.seq} t={self.time:.6f} "
                f"{self.kind} flow={self.flow}>")


class SampleRing:
    """Fixed-capacity ring of ``(virtual time, value)`` samples for one
    gauge/counter series."""

    __slots__ = ("name", "capacity", "samples", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_RING_CAPACITY
                 ) -> None:
        self.name = name
        self.capacity = capacity
        self.samples: List[List[float]] = []
        self.dropped = 0

    def sample(self, time: float, value: float) -> None:
        if len(self.samples) >= self.capacity:
            del self.samples[0]
            self.dropped += 1
        self.samples.append([round(time, 9), value])

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [list(pair) for pair in self.samples],
        }


class Journal:
    """The live flight recorder (see module docstring)."""

    enabled = True

    def __init__(self, clock: Clock, capacity: int = DEFAULT_CAPACITY,
                 ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.clock = clock
        self.capacity = max(1, int(capacity))
        self.ring_capacity = ring_capacity
        self._events: List[JournalEvent] = []
        self._seq = 0
        self.recorded = 0
        self.evicted = 0
        self._rings: Dict[str, SampleRing] = {}
        # Causal bookkeeping: last event seq per flow id / per VLAN,
        # plus five-tuple → flow-id aliases.  All bounded FIFO at the
        # journal's own capacity so week-scale runs cannot grow them
        # without bound (dicts preserve insertion order).
        self._last_for_flow: Dict[str, int] = {}
        self._last_for_vlan: Dict[int, int] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, flow: Optional[str] = None,
               vlan: Optional[int] = None, parent: Optional[int] = None,
               **fields) -> JournalEvent:
        """Append one event; auto-parent from the flow/VLAN history."""
        if parent is ROOT:
            parent = None
        elif parent is None:
            if flow is not None:
                parent = self._last_for_flow.get(flow)
            if parent is None and vlan is not None:
                parent = self._last_for_vlan.get(vlan)
        event = JournalEvent(self._seq, self.clock(), kind, flow, vlan,
                             parent, fields)
        self._seq += 1
        self.recorded += 1
        if len(self._events) >= self.capacity:
            del self._events[0]
            self.evicted += 1
        self._events.append(event)
        if flow is not None:
            self._remember(self._last_for_flow, flow, event.seq)
        if vlan is not None:
            self._remember(self._last_for_vlan, vlan, event.seq)
        return event

    def _remember(self, table: dict, key, seq: int) -> None:
        if key not in table and len(table) >= self.capacity:
            del table[next(iter(table))]
        table[key] = seq

    # ------------------------------------------------------------------
    # Flow aliases — five-tuple keys to flow ids, linking the two ends
    # of the shim protocol.
    # ------------------------------------------------------------------
    def bind_flow(self, alias: str, flow_id: str) -> None:
        self._remember(self._aliases, alias, flow_id)

    def flow_for(self, alias: str) -> Optional[str]:
        return self._aliases.get(alias)

    # ------------------------------------------------------------------
    # Time-series rings
    # ------------------------------------------------------------------
    def ring(self, name: str) -> SampleRing:
        ring = self._rings.get(name)
        if ring is None:
            ring = self._rings[name] = SampleRing(name, self.ring_capacity)
        return ring

    def sample(self, name: str, value: float) -> None:
        self.ring(name).sample(self.clock(), float(value))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> List[JournalEvent]:
        return list(self._events)

    def snapshot(self) -> dict:
        """JSON-safe view of the whole journal (schema
        ``gq.journal/1``) — the unit the merge and the exporters
        consume."""
        return {
            "schema": JOURNAL_SCHEMA,
            "enabled": True,
            "time": round(self.clock(), 9),
            "recorded": self.recorded,
            "evicted": self.evicted,
            "events": [event.to_dict() for event in self._events],
            "rings": {name: self._rings[name].to_dict()
                      for name in sorted(self._rings)},
        }

    def digest(self) -> str:
        return journal_digest(self.snapshot())

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (f"<Journal events={len(self._events)} "
                f"recorded={self.recorded} evicted={self.evicted}>")


class NullJournal:
    """Do-nothing journal; the default on every simulator."""

    __slots__ = ()
    enabled = False
    recorded = 0
    evicted = 0

    def record(self, kind: str, flow: Optional[str] = None,
               vlan: Optional[int] = None, parent: Optional[int] = None,
               **fields) -> None:
        return None

    def bind_flow(self, alias: str, flow_id: str) -> None:
        pass

    def flow_for(self, alias: str) -> Optional[str]:
        return None

    def sample(self, name: str, value: float) -> None:
        pass

    def events(self) -> List[JournalEvent]:
        return []

    def snapshot(self) -> dict:
        return {
            "schema": JOURNAL_SCHEMA,
            "enabled": False,
            "time": 0.0,
            "recorded": 0,
            "evicted": 0,
            "events": [],
            "rings": {},
        }

    def digest(self) -> str:
        return journal_digest(self.snapshot())

    def __len__(self) -> int:
        return 0


NULL_JOURNAL = NullJournal()


def journal_digest(snapshot: dict) -> str:
    """sha256 over the canonical JSON of a journal snapshot — the
    event-stream identity the parity checks compare."""
    blob = json.dumps(snapshot, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_RING_CAPACITY",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalEvent",
    "NULL_JOURNAL",
    "NullJournal",
    "ROOT",
    "SampleRing",
    "journal_digest",
]
