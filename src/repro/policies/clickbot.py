"""Clickbot containment.

The clickbot study [21] needed to understand "the precise HTTP
context of some of the bots' C&C requests" (§7.1 "Exploratory
containment").  The policy forwards the task-list C&C but keeps the
actual click traffic inside the farm — clicking through would commit
live click fraud against advertisers.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.policy import PolicyContext, register_policy
from repro.core.verdicts import ContainmentDecision
from repro.policies.autoinfect import AutoInfectionPolicy


@register_policy
class ClickbotPolicy(AutoInfectionPolicy):
    """Task-list C&C forwarded; the clicks themselves contained."""

    name = "Clickbot"

    CNC_RE = re.compile(rb"^GET /click/tasks\?aff=[0-9a-f]+")

    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None  # C&C fetch or a click? decide on content
        if ctx.has_service("sink"):
            return self.reflect(ctx, "sink", annotation="non-HTTP to sink")
        return self.deny(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.CNC_RE.match(data):
            return self.forward(ctx, annotation="C&C task fetch")
        if (data.startswith(b"GET ") or data.startswith(b"POST ")) \
                and b"\r\n" in data:
            # A click: contain it.
            if ctx.has_service("sink"):
                return self.reflect(ctx, "sink",
                                    annotation="click traffic contained")
            return self.deny(ctx, annotation="click traffic")
        if len(data) >= 16:
            return self.fall_back(ctx)
        return None

    def fall_back(self, ctx: PolicyContext) -> ContainmentDecision:
        if ctx.has_service("sink"):
            return self.reflect(ctx, "sink", annotation="unrecognized")
        return self.deny(ctx)
