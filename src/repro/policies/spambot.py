"""Spambot containment policies.

The hierarchy the paper sketches: from the auto-infection base "we
derive ... a base class for spambots that reflects all outbound SMTP
traffic", and from it family leaves that open exactly the C&C
lifeline — the §3 methodology's end state.  The Figure 7 report shows
the resulting mix for Grum (FORWARD http C&C, REFLECT all SMTP,
REWRITE autoinfection) and Rustock (FORWARD https C&C, REFLECT SMTP,
REWRITE http C&C filtering, REWRITE autoinfection).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.policy import (
    PolicyContext,
    Rewriter,
    register_policy,
)
from repro.core.verdicts import ContainmentDecision
from repro.policies.autoinfect import AutoInfectionPolicy
from repro.world.cnc import MEGAD_MAGIC_REQ, MEGAD_PORT

SMTP_PORT = 25
DNS_PORT = 53


@register_policy
class SpambotPolicy(AutoInfectionPolicy):
    """Base class for spambots: reflect all outbound SMTP to the sink.

    Port 25 is never allowed out — period.  The C&C lifeline is left
    to family subclasses; anything not understood is denied or, when a
    catch-all sink is configured, reflected for inspection.
    """

    smtp_sink_service = "smtp_sink"
    fallback_sink_service = "sink"

    def smtp_decision(self, ctx: PolicyContext) -> ContainmentDecision:
        service = (self.smtp_sink_service
                   if ctx.has_service(self.smtp_sink_service)
                   else self.fallback_sink_service)
        return self.reflect(ctx, service, annotation="full SMTP containment")

    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == SMTP_PORT and ctx.flow.proto == 6:
            return self.smtp_decision(ctx)
        return self.decide_cnc(ctx)

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        """Family subclasses whitelist their C&C here."""
        return self.fallthrough(ctx)

    def fallthrough(self, ctx: PolicyContext) -> ContainmentDecision:
        if ctx.has_service(self.fallback_sink_service):
            return self.reflect(ctx, self.fallback_sink_service,
                                annotation="unrecognized traffic to sink")
        return self.deny(ctx, annotation="unrecognized traffic")


@register_policy
class Grum(SpambotPolicy):
    """Grum containment: forward only Grum-shaped HTTP C&C.

    Named bare "Grum" because Figure 6 keys the config file's
    ``Decider`` entries on these names.
    """

    name = "Grum"
    CNC_PATH = re.compile(rb"^GET /grum/spm\?id=[0-9a-f]+ HTTP/1\.[01]")

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None  # content-dependent: wait for the request line
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.CNC_PATH.match(data):
            return self.forward(ctx, annotation="C&C")
        if len(data) >= 16 or b"\r\n" in data:
            return self.fallthrough(ctx)
        return None  # not enough content yet


GrumPolicy = Grum


class _RustockStatFilter(Rewriter):
    """REWRITE filter for Rustock's plain-HTTP status beacons
    (Figure 7's "C&C filtering" rows): strips the bot's delivery
    statistics out of the beacon before letting it through, so the
    botmaster never learns the farm's true (sunk) spam volume."""

    STAT_RE = re.compile(rb"(sent=)(\d+)")

    def on_client_data(self, proxy, data: bytes) -> None:
        proxy.send_to_server(self.STAT_RE.sub(rb"\g<1>0", data))


@register_policy
class Rustock(SpambotPolicy):
    """Rustock: forward https C&C, REWRITE-filter http beacons."""

    name = "Rustock"
    CNC_TLS_PORT = 443
    BEACON_RE = re.compile(rb"^GET /stat\?r=\d+")

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == self.CNC_TLS_PORT and ctx.flow.proto == 6:
            return self.forward(ctx, annotation="C&C")
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None  # wait for content: beacon or something else?
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.BEACON_RE.match(data):
            return self.rewrite(ctx, annotation="C&C filtering")
        if len(data) >= 16 or b"\r\n" in data:
            return self.fallthrough(ctx)
        return None

    def make_other_rewriter(self, ctx: PolicyContext) -> Rewriter:
        return _RustockStatFilter()


RustockPolicy = Rustock


@register_policy
class Waledac(SpambotPolicy):
    """Waledac: forward the POST C&C; reflect SMTP to the banner-
    grabbing sink (after the blacklisting lesson, no real SMTP at
    all — not even "innocuous" test messages)."""

    name = "Waledac"
    CNC_RE = re.compile(rb"^POST /waledac/ctrl HTTP/1\.[01]")

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.CNC_RE.match(data):
            return self.forward(ctx, annotation="C&C")
        if len(data) >= 16 or b"\r\n" in data:
            return self.fallthrough(ctx)
        return None


WaledacPolicy = Waledac


@register_policy
class MegaDContainment(SpambotPolicy):
    """MegaD: forward only the proprietary binary C&C handshake."""

    name = "MegaD"

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == MEGAD_PORT and ctx.flow.proto == 6:
            return None  # verify the magic before forwarding
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if data.startswith(MEGAD_MAGIC_REQ):
            return self.forward(ctx, annotation="C&C")
        if len(data) >= len(MEGAD_MAGIC_REQ):
            return self.fallthrough(ctx)
        return None


MegadPolicy = MegaDContainment
