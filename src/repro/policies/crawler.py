"""Honeycrawler containment.

The crawl itself is the experiment's intent — HTTP fetches toward the
candidate sites must go out — but whatever the drive-by payload does
afterwards (C&C, spam) is exactly the activity that must stay inside.
Shape-gated: plain GETs with a browser User-Agent are the crawl;
everything else reflects.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.policy import ContainmentPolicy, PolicyContext, register_policy
from repro.core.verdicts import ContainmentDecision

SMTP_PORT = 25


@register_policy
class HoneycrawlerPolicy(ContainmentPolicy):
    """Crawl fetches go out; post-infection traffic stays in."""

    name = "Honeycrawler"

    CRAWL_RE = re.compile(
        rb"^GET /[^\s]* HTTP/1\.[01]\r\n(?:.*\r\n)*?"
        rb"User-Agent: [^\r\n]*vulnerable",
        re.DOTALL,
    )

    def decide(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if not ctx.inmate_is_originator:
            return self.deny(ctx, annotation="unsolicited inbound")
        if ctx.flow.resp_port == SMTP_PORT:
            service = "smtp_sink" if ctx.has_service("smtp_sink") else "sink"
            return self.reflect(ctx, service, annotation="SMTP containment")
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None  # crawl or post-infection traffic? check content
        return self.reflect(ctx, "sink", annotation="non-crawl to sink")

    def decide_content(self, ctx: PolicyContext,
                       data: bytes) -> Optional[ContainmentDecision]:
        if self.CRAWL_RE.match(data):
            return self.forward(ctx, annotation="crawl fetch")
        if b"\r\n\r\n" in data or len(data) >= 512:
            return self.reflect(ctx, "sink",
                                annotation="post-infection to sink")
        return None
