"""The worm honeyfarm policy (the predecessor system's job, §2, §7.1).

Inbound infection attempts are forwarded to the inmates (the
traditional honeyfarm model: external traffic directly infects
honeypot machines).  Outbound propagation attempts are redirected to
*fresh* inmates inside the farm — the conservative containment trick
Potemkin leaned on: "one can observe worm propagation even when
employing a very conservative containment policy of redirecting
outbound connections to additional analysis machines in the
honeyfarm."

The redirect is sticky per (source VLAN, scanned address): multi-
connection exploits (Table 1's # CONNS column) must land on the same
victim for the propagation to complete.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.policy import PolicyContext, register_policy, ContainmentPolicy
from repro.core.verdicts import ContainmentDecision
from repro.net.addresses import IPv4Address


@register_policy
class WormHoneyfarmPolicy(ContainmentPolicy):
    """Inbound infections in; outbound propagation redirected to
    fresh inmates."""

    name = "WormHoneyfarm"

    def __init__(self, services=None, config=None) -> None:
        super().__init__(services, config)
        # (source vlan, scanned destination) -> victim internal address
        self._redirects: Dict[Tuple[int, IPv4Address], IPv4Address] = {}
        self.redirects_issued = 0
        self.no_victim_available = 0

    # ------------------------------------------------------------------
    def decide(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if not ctx.inmate_is_originator:
            return self.forward(ctx, annotation="inbound infection attempt")
        victim = self._victim_for(ctx)
        if victim is None:
            self.no_victim_available += 1
            if ctx.has_service("sink"):
                return self.reflect(ctx, "sink",
                                    annotation="no fresh inmate; to sink")
            return self.deny(ctx, annotation="no fresh inmate available")
        self.redirects_issued += 1
        return self.redirect(ctx, victim,
                             annotation="propagation into farm")

    def decide_content(self, ctx, data):
        return self.decide(ctx)

    # ------------------------------------------------------------------
    def _victim_for(self, ctx: PolicyContext) -> Optional[IPv4Address]:
        key = (ctx.vlan_id, ctx.flow.resp_ip)
        if key in self._redirects:
            return self._redirects[key]
        victim = self._pick_fresh_inmate(ctx)
        if victim is not None:
            self._redirects[key] = victim
        return victim

    def _pick_fresh_inmate(self, ctx: PolicyContext) -> Optional[IPv4Address]:
        """Choose a running, not-yet-infected inmate other than the
        source.  Requires the subfarm handle in the context."""
        subfarm = ctx.subfarm
        if subfarm is None:
            return None
        candidates = []
        for vlan, inmate in sorted(subfarm.inmates.items()):
            if vlan == ctx.vlan_id:
                continue
            host = inmate.host
            if host is None or host.ip is None:
                continue
            vuln = getattr(host, "vuln", None)
            if vuln is not None and vuln.infected:
                continue
            # Skip inmates already promised to some other scan.
            if host.ip in self._redirects.values():
                continue
            candidates.append(host.ip)
        return candidates[0] if candidates else None
