"""Storm proxy-bot containment (§7.1 "Unexpected visitors").

"For the C&C-relaying proxy bots in the middle of the Storm hierarchy,
we preserved outside reachability of the bots (the requirement for
their becoming relay agents as opposed to spam-sourcing drones) and
redirected all outgoing activity other than the HTTP-borne C&C
protocol to our standard sink server."

That reflect-the-rest posture is exactly what caught the FTP
connection attempts: iframe-injection jobs pushed through the bots'
SOCKS capability landed at the sink instead of at the victim sites.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.policy import PolicyContext, register_policy
from repro.core.verdicts import ContainmentDecision
from repro.policies.autoinfect import AutoInfectionPolicy


@register_policy
class StormPolicy(AutoInfectionPolicy):
    """Reachability + HTTP C&C forwarded; everything else sinks."""

    name = "Storm"

    HTTP_CNC_RE = re.compile(rb"^(GET|POST) /storm/")

    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if not ctx.inmate_is_originator:
            # Outside reachability is the point: let the overlay in.
            return self.forward(ctx, annotation="inbound overlay reachability")
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None  # maybe the HTTP-borne C&C; check content
        return self.reflect(ctx, "sink",
                            annotation="non-C&C outbound to sink")

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.HTTP_CNC_RE.match(data):
            return self.forward(ctx, annotation="HTTP C&C")
        if len(data) >= 16 or b"\r\n" in data:
            return self.reflect(ctx, "sink",
                                annotation="non-C&C outbound to sink")
        return None
