"""The auto-infection policy (§6.6).

"Note that we can realize the HTTP server as a REWRITE containment,
simplifying the implementation substantially: the containment server
observes the attempted HTTP connection anyway, and can thus proceed to
impersonate the simple HTTP server needed to serve the infection.  We
implement this as a separate containment class that serves as a base
class for all policies that operate using auto-infection."

VLAN IDs drive sample selection (Figure 6): each VLAN range can carry
its own batch of binaries, served sequentially for batch processing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.policy import (
    ContainmentPolicy,
    PolicyContext,
    Rewriter,
    register_policy,
)
from repro.core.verdicts import ContainmentDecision
from repro.malware.corpus import Sample, SampleBatch
from repro.net.addresses import IPv4Address
from repro.net.http import HttpParser, HttpResponse


class _SampleServer(Rewriter):
    """Impersonates the infection HTTP server; serves one sample."""

    def __init__(self, policy: "AutoInfectionPolicy", ctx: PolicyContext,
                 sample: Optional[Sample]) -> None:
        self._policy = policy
        self._ctx = ctx
        self._sample = sample
        self._parser = HttpParser("request")

    def on_open(self, proxy) -> None:
        pass  # impersonation: never connect out

    def on_client_data(self, proxy, data: bytes) -> None:
        for request in self._parser.feed(data):
            if self._sample is None:
                proxy.send_to_client(HttpResponse(404).to_bytes())
                continue
            self._policy.record_serving(self._ctx.vlan_id, self._sample)
            proxy.send_to_client(
                HttpResponse(
                    200,
                    {"Content-Type": "application/octet-stream"},
                    body=self._sample.to_blob(),
                ).to_bytes()
            )

    def on_client_close(self, proxy) -> None:
        proxy.close_client()


@register_policy
class AutoInfectionPolicy(ContainmentPolicy):
    """Base class for all policies using auto-infection.

    Flows to the configured infection address/port get REWRITE
    containment with an impersonating HTTP server; everything else
    falls through to :meth:`decide_other`, which subclasses override
    (the base denies, staying faithful to default-deny roots).
    """

    def __init__(self, services=None, config=None) -> None:
        super().__init__(services, config)
        self.infect_address = IPv4Address(
            self.config.get("autoinfect_address", "10.9.8.7"))
        self.infect_port = int(self.config.get("autoinfect_port", 6543))
        self._batches: Dict[Tuple[int, int], SampleBatch] = {}
        self.servings: Dict[int, list] = {}
        self._pending_samples: Dict[tuple, Optional[Sample]] = {}

    # ------------------------------------------------------------------
    # Batch management (Figure 6: "Infection = rustock.100921.*.exe")
    # ------------------------------------------------------------------
    def set_batch(self, first_vlan: int, last_vlan: int,
                  batch: SampleBatch) -> None:
        self._batches[(first_vlan, last_vlan)] = batch

    def set_sample(self, first_vlan: int, last_vlan: int,
                   sample: Sample) -> None:
        self.set_batch(first_vlan, last_vlan,
                       SampleBatch(sample.md5, [sample]))

    def sample_for(self, vlan: int) -> Optional[Sample]:
        for (first, last), batch in self._batches.items():
            if first <= vlan <= last:
                return batch.next_sample()
        return None

    def record_serving(self, vlan: int, sample: Sample) -> None:
        self.servings.setdefault(vlan, []).append(sample)

    # ------------------------------------------------------------------
    def is_infection_flow(self, ctx: PolicyContext) -> bool:
        return (ctx.flow.resp_ip == self.infect_address
                and ctx.flow.resp_port == self.infect_port)

    def decide(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if self.is_infection_flow(ctx):
            # Pick the sample now so its MD5 rides in the annotation
            # (visible in the Figure 7 REWRITE rows) and the rewriter
            # serves exactly that binary.
            sample = self.sample_for(ctx.vlan_id)
            self._pending_samples[(ctx.vlan_id, ctx.flow)] = sample
            annotation = (f"autoinfection {sample.md5}" if sample
                          else "autoinfection (no batch)")
            return self.rewrite(ctx, annotation=annotation)
        return self.decide_other(ctx)

    def decide_content(self, ctx: PolicyContext,
                       data: bytes) -> Optional[ContainmentDecision]:
        return self.decide_other_content(ctx, data)

    def make_rewriter(self, ctx: PolicyContext) -> Rewriter:
        if self.is_infection_flow(ctx):
            sample = self._pending_samples.pop(
                (ctx.vlan_id, ctx.flow), None)
            if sample is None:
                sample = self.sample_for(ctx.vlan_id)
            return _SampleServer(self, ctx, sample)
        return self.make_other_rewriter(ctx)

    # ------------------------------------------------------------------
    # Subclass surface for non-infection traffic
    # ------------------------------------------------------------------
    def decide_other(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        return self.deny(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        return self.deny(ctx)

    def make_other_rewriter(self, ctx: PolicyContext) -> Rewriter:
        return Rewriter()
