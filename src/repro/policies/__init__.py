"""Concrete containment policies.

The library the paper's §6.2 describes: ~1,000 lines of policy classes
including content rewriters, organized as a specialization hierarchy —
default-deny at the root, per-verdict bases, a spambot base that
reflects all outbound SMTP, and family-specific leaves that open just
the C&C lifeline.
"""

from repro.policies.autoinfect import AutoInfectionPolicy
from repro.policies.spambot import (
    GrumPolicy,
    MegadPolicy,
    RustockPolicy,
    SpambotPolicy,
    WaledacPolicy,
)
from repro.policies.storm import StormPolicy
from repro.policies.worm import WormHoneyfarmPolicy
from repro.policies.clickbot import ClickbotPolicy
from repro.policies.ircbot import DgaBotPolicy, IrcBotPolicy

__all__ = [
    "IrcBotPolicy",
    "DgaBotPolicy",
    "AutoInfectionPolicy",
    "SpambotPolicy",
    "RustockPolicy",
    "GrumPolicy",
    "WaledacPolicy",
    "MegadPolicy",
    "StormPolicy",
    "WormHoneyfarmPolicy",
    "ClickbotPolicy",
]
