"""Containment policies for the §4 versatility families."""

from __future__ import annotations

import re
from typing import Optional

from repro.core.policy import PolicyContext, register_policy
from repro.core.verdicts import ContainmentDecision
from repro.policies.spambot import SpambotPolicy

IRC_PORT = 6667


@register_policy
class IrcBotPolicy(SpambotPolicy):
    """IRC-herded spambot: forward only the registration-shaped IRC
    connection; SMTP reflects as always."""

    name = "IrcBot"
    IRC_HELLO = re.compile(rb"^NICK gq[0-9a-f]+\r\n")

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == IRC_PORT and ctx.flow.proto == 6:
            return None  # check the registration shape first
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.IRC_HELLO.match(data):
            return self.forward(ctx, annotation="IRC C&C")
        if len(data) >= 16 or b"\r\n" in data:
            return self.fallthrough(ctx)
        return None


@register_policy
class DgaBotPolicy(SpambotPolicy):
    """DGA bot: the NXDOMAIN walk happens against the farm resolver
    (uncontained infra service); only the post-hit HTTP C&C needs a
    whitelist."""

    name = "DgaBot"
    CNC_RE = re.compile(rb"^GET /dga/cmd\?id=[0-9a-f]+ HTTP/1\.[01]")

    def decide_cnc(self, ctx: PolicyContext) -> Optional[ContainmentDecision]:
        if ctx.flow.resp_port == 80 and ctx.flow.proto == 6:
            return None
        return self.fallthrough(ctx)

    def decide_other_content(self, ctx: PolicyContext,
                             data: bytes) -> Optional[ContainmentDecision]:
        if self.CNC_RE.match(data):
            return self.forward(ctx, annotation="C&C (DGA-located)")
        if len(data) >= 16 or b"\r\n" in data:
            return self.fallthrough(ctx)
        return None
