"""repro.fuzz — the deterministic hostile-input fuzz plane.

GQ's inmates are live malware: every parser between them and the farm
fabric reads attacker-controlled bytes.  The containment story
therefore needs an adversary of its own, and this package is it — a
seed-driven fuzzing subsystem with three pieces:

* :mod:`repro.fuzz.mutate` — a deterministic mutation engine (bit
  flips, truncations, lying length fields, duplicated/overlapping
  slices, encapsulation padding) driven by one ``random.Random`` seed,
  so a corpus digest is reproducible byte-for-byte across runs.
* :mod:`repro.fuzz.generators` — grammar-aware malformed-input
  generators for every protocol the farm parses (DNS, SMTP, HTTP,
  IRC, FTP, SOCKS, DHCP, ARP, GRE, TCP options, Ethernet/IPv4 framing,
  and the shim protocol itself), registered as named
  :class:`~repro.fuzz.generators.FuzzTarget` entries.
* :mod:`repro.fuzz.corpus` + :mod:`repro.fuzz.runner` — a corpus
  store with a shrinking minimizer, a replay-regression runner (every
  crash found becomes a pinned test under ``tests/fuzz_corpus/``), and
  the parser- and farm-level fuzz loops.

The contract being enforced (docs/HARDENING.md): a parser given
hostile bytes either succeeds or raises
:class:`~repro.net.errors.ParseError`.  Any other exception escaping a
parser is by definition a bug, and the farm-level loop additionally
asserts that the gateway's malice barrier keeps the event loop alive
no matter what arrives on the trunk.

Virtual-clock safety: nothing in this package reads the wall clock or
global RNG state — all randomness flows from the caller's seed, so
``python -m repro.fuzz --quick`` produces a byte-identical corpus
digest on every machine (pinned in ``FUZZ_quick.json``).
"""

from repro.fuzz.corpus import CorpusStore, minimize, replay_corpus
from repro.fuzz.generators import TARGETS, FuzzTarget
from repro.fuzz.mutate import MutationEngine
from repro.fuzz.runner import fuzz_farm, fuzz_parsers, run_quick

__all__ = [
    "CorpusStore",
    "FuzzTarget",
    "MutationEngine",
    "TARGETS",
    "fuzz_farm",
    "fuzz_parsers",
    "minimize",
    "replay_corpus",
    "run_quick",
]
