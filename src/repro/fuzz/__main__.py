"""CLI for the fuzz plane.

Usage::

    python -m repro.fuzz --quick                    # make fuzz-quick
    python -m repro.fuzz --seed 7 --iterations 10000 --frames 2000
    python -m repro.fuzz --seed 7 --corpus tests/fuzz_corpus
    python -m repro.fuzz --replay tests/fuzz_corpus

``--quick`` runs the fixed-seed smoke (parser determinism replay,
farm loop under isolate and fail-stop, comparison against the tracked
``FUZZ_quick.json``) and exits non-zero on any violation.  ``--replay``
re-parses a pinned corpus directory and exits non-zero if any input
escapes the ParseError taxonomy.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.fuzz.corpus import replay_corpus
from repro.fuzz.runner import (
    QUICK_FRAMES,
    QUICK_ITERATIONS,
    QUICK_SEED,
    fuzz_farm,
    fuzz_parsers,
    run_quick,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="deterministic hostile-input fuzzing of farm "
                    "parsers and the gateway malice barrier")
    parser.add_argument("--quick", action="store_true",
                        help="fixed-seed smoke vs FUZZ_quick.json "
                             "(make fuzz-quick)")
    parser.add_argument("--seed", type=int, default=QUICK_SEED)
    parser.add_argument("--iterations", type=int,
                        default=QUICK_ITERATIONS,
                        help="parser-loop inputs (round-robin targets)")
    parser.add_argument("--frames", type=int, default=QUICK_FRAMES,
                        help="hostile wire frames for the farm loop")
    parser.add_argument("--corpus", metavar="DIR",
                        help="pin minimized escapes into this corpus "
                             "directory")
    parser.add_argument("--replay", metavar="DIR",
                        help="replay a pinned corpus directory instead "
                             "of fuzzing")
    parser.add_argument("--indent", type=int, default=2)
    args = parser.parse_args(argv)

    if args.replay:
        summary = replay_corpus(args.replay)
        print(json.dumps(summary, indent=args.indent, sort_keys=True))
        if summary["escapes"]:
            print(f"FUZZ REPLAY ESCAPES: {len(summary['escapes'])}",
                  file=sys.stderr)
            return 1
        return 0

    if args.quick:
        summary = run_quick(seed=args.seed, iterations=args.iterations,
                            frames=args.frames)
        print(json.dumps(summary, indent=args.indent, sort_keys=True))
        if summary["violations"]:
            print(f"FUZZ VIOLATIONS: {len(summary['violations'])}",
                  file=sys.stderr)
            return 1
        return 0

    parsers = fuzz_parsers(args.seed, args.iterations,
                           corpus_dir=args.corpus)
    try:
        farm = fuzz_farm(args.seed, args.frames)
    except Exception as exc:  # noqa: BLE001 - containment failure
        farm = {"survived": False,
                "error": f"{type(exc).__name__}: {exc}"}
    summary = {"parsers": parsers, "farm": farm}
    print(json.dumps(summary, indent=args.indent, sort_keys=True))
    if parsers["escapes"] or not farm.get("survived"):
        print(f"FUZZ ESCAPES: {len(parsers['escapes'])} parser, "
              f"farm survived={farm.get('survived')}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
