"""Grammar-aware malformed-input generators, one per farm parser.

Random bytes mostly die in the first length check; inputs that are
*almost* right — valid framing with one lying field, a compression
pointer that almost terminates, an options list one byte short — are
what reach the deep branches.  Each generator here builds a valid
message with the real serializers, then breaks it in a
protocol-specific way chosen by the caller's ``random.Random``.

Every generator is paired with the parser it attacks in
:data:`TARGETS`.  The parser contract under test: *succeed, or raise*
:class:`~repro.net.errors.ParseError`.  The stream engines (SMTP, IRC,
FTP) have a stronger contract — they must never raise at all; feeding
them is still routed through the same harness, which simply observes
that nothing escapes.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, NamedTuple

from repro.core.shim import RequestShim, ResponseShim, peek_length
from repro.core.verdicts import Verdict
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.arp import ArpMessage
from repro.net.dns import DnsMessage, DnsRecord, encode_name, decode_name
from repro.net.flow import FiveTuple
from repro.net.ftp import FtpServerEngine
from repro.net.gre import GRE_PROTO_IPV4, PROTO_GRE, encapsulate, unwrap
from repro.net.http import HttpParser, MAX_HEADER_BYTES
from repro.net.irc import IrcNetwork, IrcServerEngine
from repro.net.packet import (
    ACK,
    EthernetFrame,
    IPv4Packet,
    PROTO_TCP,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.net.smtp import SmtpServerEngine, Strictness
from repro.net.socks import Socks4Reply, Socks4Request
from repro.services.dhcp import DhcpMessage


class FuzzTarget(NamedTuple):
    """A named (generator, parser) pair the fuzz loops iterate over."""

    name: str
    generate: Callable[[random.Random], bytes]
    parse: Callable[[bytes], object]


# ----------------------------------------------------------------------
# Valid-message builders (broken afterwards by the generators)
# ----------------------------------------------------------------------
def _ip(rng: random.Random) -> IPv4Address:
    return IPv4Address(rng.randrange(1, 0xFFFFFFFE))


def _mac(rng: random.Random) -> MacAddress:
    return MacAddress(rng.randrange(1, 1 << 48))


def _tcp(rng: random.Random) -> TCPSegment:
    return TCPSegment(rng.randrange(1, 65536), rng.randrange(1, 65536),
                      seq=rng.randrange(1 << 32), ack=rng.randrange(1 << 32),
                      flags=rng.choice((SYN, ACK, SYN | ACK, 0)),
                      payload=bytes(rng.randrange(256)
                                    for _ in range(rng.randrange(32))))


def _udp(rng: random.Random) -> UDPDatagram:
    return UDPDatagram(rng.randrange(1, 65536), rng.randrange(1, 65536),
                       bytes(rng.randrange(256)
                             for _ in range(rng.randrange(64))))


def _packet(rng: random.Random) -> IPv4Packet:
    transport = _tcp(rng) if rng.random() < 0.5 else _udp(rng)
    return IPv4Packet(_ip(rng), _ip(rng), transport)


def _flow(rng: random.Random) -> FiveTuple:
    return FiveTuple(_ip(rng), rng.randrange(1, 65536),
                     _ip(rng), rng.randrange(1, 65536), PROTO_TCP)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def gen_ethernet(rng: random.Random) -> bytes:
    wire = bytearray(EthernetFrame(_mac(rng), _mac(rng), _packet(rng),
                                   vlan=rng.randrange(1, 4095)).to_bytes())
    case = rng.randrange(5)
    if case == 0:                       # truncated header / tag
        del wire[rng.randrange(1, 18):]
    elif case == 1:                     # reserved VID 4095 / priority tag
        wire[14:16] = struct.pack("!H", rng.choice((4095, 0)))
    elif case == 2:                     # lying ethertype
        wire[16:18] = struct.pack("!H", rng.randrange(1 << 16))
    elif case == 3:                     # inner IPv4 corrupted
        if len(wire) > 20:
            wire[18] = rng.randrange(256)   # version/IHL byte
    # case 4: leave valid (parsers must also accept good input)
    return bytes(wire)


def gen_ipv4(rng: random.Random) -> bytes:
    wire = bytearray(_packet(rng).to_bytes())
    case = rng.randrange(5)
    if case == 0:                       # IHL lies (too small / too big)
        wire[0] = (4 << 4) | rng.choice((0, 1, 4, 15))
    elif case == 1:                     # total-length lies
        wire[2:4] = struct.pack("!H", rng.choice((0, 1, 19, 0xFFFF)))
    elif case == 2:                     # wrong version
        wire[0] = (rng.choice((0, 5, 6, 15)) << 4) | 5
    elif case == 3:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def gen_tcp(rng: random.Random) -> bytes:
    src, dst = _ip(rng), _ip(rng)
    wire = bytearray(_tcp(rng).to_bytes(src, dst))
    case = rng.randrange(5)
    if case == 0:                       # lying data offset
        offset_words = rng.choice((0, 1, 4, 15))
        wire[12] = offset_words << 4
    elif case == 1:                     # options: TLV with lying length
        options = bytearray()
        for _ in range(rng.randrange(1, 4)):
            kind = rng.choice((2, 3, 4, 8, 254))
            length = rng.choice((0, 1, 2, 4, 40))
            options += bytes((kind, length))
            options += bytes(rng.randrange(256)
                             for _ in range(rng.randrange(4)))
        while len(options) % 4:
            options.append(rng.choice((0, 1)))
        header_len = 20 + len(options)
        if header_len <= 60:
            wire[12] = (header_len // 4) << 4
            wire[20:20] = options
    elif case == 2:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    elif case == 3:                     # EOL / NOP padding soup
        wire[12] = 8 << 4
        wire[20:20] = bytes(rng.choice((0, 1)) for _ in range(12))
    return bytes(wire)


def gen_udp(rng: random.Random) -> bytes:
    wire = bytearray(_udp(rng).to_bytes(_ip(rng), _ip(rng)))
    case = rng.randrange(4)
    if case == 0:                       # length field below minimum
        wire[4:6] = struct.pack("!H", rng.randrange(8))
    elif case == 1:                     # length field beyond the data
        wire[4:6] = struct.pack("!H", rng.randrange(len(wire), 0xFFFF))
    elif case == 2:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def gen_dns(rng: random.Random) -> bytes:
    message = DnsMessage.query(rng.randrange(1 << 16), "fuzz.example.com")
    if rng.random() < 0.5:
        message = message.reply([DnsRecord.a("fuzz.example.com", _ip(rng)),
                                 DnsRecord.mx("fuzz.example.com",
                                              "mx.example.com")])
    wire = bytearray(message.to_bytes())
    case = rng.randrange(7)
    if case == 0:                       # qdcount lies
        wire[4:6] = struct.pack("!H", rng.choice((0, 2, 0xFFFF)))
    elif case == 1:                     # self/forward compression pointer
        pointer = rng.choice((12, 13, len(wire) - 1, 0x3FFF))
        wire[12:14] = struct.pack("!H", 0xC000 | pointer)
        del wire[14:]
    elif case == 2:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    elif case == 3:                     # rdlength lies (answers only)
        index = wire.rfind(b"\x00\x04")
        if index > 0:
            wire[index:index + 2] = struct.pack(
                "!H", rng.choice((0, 3, 200, 0xFFFF)))
    elif case == 4:                     # reserved label type 0b01/0b10
        wire[12] = rng.choice((0x40, 0x80)) | rng.randrange(0x3F)
    elif case == 5:                     # unsupported record type
        wire[-14:-12] = struct.pack("!H", rng.choice((5, 16, 255)))
    return bytes(wire)


def gen_dns_name(rng: random.Random) -> bytes:
    """Raw name blobs attacking decode_name's pointer/length guards."""
    case = rng.randrange(5)
    if case == 0:
        # Backward pointer chain: entry at the end hops through every
        # pair; >16 pairs trips the hop cap (and a chain reaching
        # offset 0 trips the strictly-backward rule).
        pairs = rng.randrange(2, 24)
        blob = bytearray(b"\x01a\x00")
        for _ in range(pairs):
            target = len(blob) - rng.choice((2, 3))
            blob += struct.pack("!H", 0xC000 | max(0, target))
        return bytes(blob)
    if case == 1:                       # name-length bomb: 63-byte labels
        labels = rng.randrange(3, 8)
        return b"".join(b"\x3f" + bytes(63) for _ in range(labels)) + b"\x00"
    if case == 2:                       # truncated label / pointer
        blob = encode_name("long-label-for-truncation.example.com")
        return blob[:rng.randrange(1, len(blob))]
    if case == 3:                       # non-ascii label bytes
        return b"\x04\xff\xfe\xfd\xfc\x00"
    return encode_name("ok.example.com")


def _parse_dns_name(data: bytes) -> object:
    # Enter at the tail so backward pointer chains are reachable.
    return decode_name(data, max(0, len(data) - 2))


def gen_request_shim(rng: random.Random) -> bytes:
    wire = bytearray(RequestShim(_flow(rng), rng.randrange(4096),
                                 rng.randrange(40000, 60000)).to_bytes())
    case = rng.randrange(5)
    if case == 0:                       # corrupt magic
        wire[rng.randrange(4)] ^= 0xFF
    elif case == 1:                     # lying length field
        wire[4:6] = struct.pack("!H", rng.choice((0, 8, 56, 0xFFFF)))
    elif case == 2:                     # bad version / type
        wire[rng.choice((6, 7))] = rng.randrange(256)
    elif case == 3:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def gen_response_shim(rng: random.Random) -> bytes:
    shim = ResponseShim(_flow(rng), rng.choice(
        (Verdict.FORWARD, Verdict.DROP, Verdict.REWRITE, Verdict.REFLECT)),
        policy="fuzz", annotation="x" * rng.randrange(8),
        rate=rng.choice((None, 1000.0)))
    wire = bytearray(shim.to_bytes())
    case = rng.randrange(6)
    if case == 0:                       # invalid verdict opcode
        wire[20:24] = struct.pack("!I", rng.choice((0, 3, 0xFF, 1 << 31)))
    elif case == 1:                     # lying length field
        wire[4:6] = struct.pack("!H", rng.choice((0, 24, 55, 0xFFFF)))
    elif case == 2:                     # malformed rate annotation
        index = bytes(wire).find(b"rate=")
        if index >= 0:
            wire[index + 5] = 0x78      # "rate=x..."
    elif case == 3:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    elif case == 4:                     # corrupt preamble
        wire[rng.randrange(8)] ^= rng.randrange(1, 256)
    return bytes(wire)


def _parse_request_shim(data: bytes) -> object:
    peek_length(data)
    return RequestShim.from_bytes(data)


def _parse_response_shim(data: bytes) -> object:
    peek_length(data)
    return ResponseShim.from_bytes(data)


def gen_arp(rng: random.Random) -> bytes:
    wire = bytearray(ArpMessage.request(_mac(rng), _ip(rng),
                                        _ip(rng)).to_bytes())
    case = rng.randrange(4)
    if case == 0:                       # exotic hardware/protocol combos
        wire[rng.randrange(6)] = rng.randrange(256)
    elif case == 1:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def gen_dhcp(rng: random.Random) -> bytes:
    wire = bytearray(DhcpMessage.discover(rng.randrange(1 << 32),
                                          _mac(rng)).to_bytes())
    case = rng.randrange(4)
    if case == 0:                       # bad op / kind
        wire[rng.choice((0, 1))] = rng.randrange(256)
    elif case == 1:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def gen_socks(rng: random.Random) -> bytes:
    request = Socks4Request(_ip(rng), rng.randrange(1, 65536),
                            user_id=b"bot" * rng.randrange(4))
    wire = bytearray(request.to_bytes())
    case = rng.randrange(4)
    if case == 0:                       # wrong version
        wire[0] = rng.randrange(256)
    elif case == 1:                     # user-id flood, no terminator
        wire = wire[:8] + bytes(b % 255 + 1 for b in bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 700))))
    elif case == 2:                     # truncation
        del wire[rng.randrange(1, len(wire)):]
    return bytes(wire)


def _parse_socks(data: bytes) -> object:
    Socks4Request.parse(data)
    return Socks4Reply.parse(data)


def gen_http(rng: random.Random) -> bytes:
    case = rng.randrange(5)
    if case == 0:                       # unterminated header flood
        return b"GET / HTTP/1.1\r\nX-Flood: " + \
            b"A" * (MAX_HEADER_BYTES + rng.randrange(64))
    if case == 1:                       # malformed Content-Length
        value = rng.choice((b"banana", b"-5", b"1e9", b"0x10"))
        return (b"POST / HTTP/1.1\r\nContent-Length: " + value
                + b"\r\n\r\nbody")
    if case == 2:                       # non-numeric status
        return b"HTTP/1.1 TEAPOT Fine\r\n\r\n"
    if case == 3:                       # header soup
        return bytes(rng.randrange(256) for _ in range(rng.randrange(128))) \
            + b"\r\n\r\n"
    return (b"GET /ok HTTP/1.1\r\nHost: fuzz\r\n\r\n")


def _parse_http(data: bytes) -> object:
    role = "response" if data[:5] == b"HTTP/" else "request"
    parser = HttpParser(role)
    parser.feed(data)
    return parser


def gen_gre(rng: random.Random) -> bytes:
    inner = _packet(rng)
    depth = rng.randrange(1, 13)        # beyond MAX_NESTING sometimes
    packet = inner
    for _ in range(depth):
        packet = encapsulate(packet, _ip(rng), _ip(rng))
    wire = bytearray(packet.to_bytes())
    if rng.random() < 0.3:              # corrupt a GRE header en route
        index = bytes(wire).find(struct.pack("!HH", 0, GRE_PROTO_IPV4))
        if index >= 0:
            wire[index + rng.randrange(4)] = rng.randrange(256)
    return bytes(wire)


def _parse_gre(data: bytes) -> object:
    packet = IPv4Packet.from_bytes(data)
    if packet.proto == PROTO_GRE:
        return unwrap(packet)
    return packet


def _gen_lines(rng: random.Random, verbs) -> bytes:
    out = bytearray()
    for _ in range(rng.randrange(1, 6)):
        case = rng.randrange(4)
        if case == 0:                   # oversized line
            out += rng.choice(verbs) + b" " + \
                bytes(rng.choice(b"abcdefgh")
                      for _ in range(rng.randrange(8000, 10000)))
        elif case == 1:                 # binary garbage
            out += bytes(rng.randrange(256)
                         for _ in range(rng.randrange(64)))
        else:
            out += rng.choice(verbs) + b" fuzz"
        out += rng.choice((b"\r\n", b"\n", b""))  # incl. bare LF
    return bytes(out)


def gen_smtp(rng: random.Random) -> bytes:
    return _gen_lines(rng, (b"HELO", b"MAIL FROM:<a@b>", b"RCPT TO:<c@d>",
                            b"DATA", b"QUIT", b"XFUZZ"))


def _parse_smtp(data: bytes) -> object:
    strictness = Strictness.STRICT if len(data) % 2 else Strictness.LENIENT
    engine = SmtpServerEngine(send=lambda _b: None, strictness=strictness)
    engine.feed(data)
    return engine


def gen_irc(rng: random.Random) -> bytes:
    return _gen_lines(rng, (b"NICK bot", b"USER a b c d", b"JOIN #fuzz",
                            b"PRIVMSG #fuzz :hi", b"TOPIC #fuzz", b"PING"))


def _parse_irc(data: bytes) -> object:
    engine = IrcServerEngine(IrcNetwork(), send=lambda _b: None)
    engine.feed(data)
    return engine


def gen_ftp(rng: random.Random) -> bytes:
    return _gen_lines(rng, (b"USER bot", b"PASS hunter2", b"STOR loot.bin",
                            b"RETR config", b"LIST", b"QUIT"))


def _parse_ftp(data: bytes) -> object:
    engine = FtpServerEngine(send=lambda _b: None,
                             accounts={"bot": "hunter2"})
    engine.feed(data)
    return engine


def hostile_frame(rng: random.Random) -> bytes:
    """A wire frame for farm-level fuzzing via ``ingest_wire``."""
    case = rng.randrange(4)
    if case == 0:
        return gen_ethernet(rng)
    if case == 1:                       # raw garbage
        return bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 96)))
    if case == 2:                       # GRE bomb on the trunk
        packet = _packet(rng)
        for _ in range(rng.randrange(1, 12)):
            packet = encapsulate(packet, _ip(rng), _ip(rng))
        return EthernetFrame(_mac(rng), _mac(rng), packet,
                             vlan=rng.randrange(1, 4095)).to_bytes()
    # Plausible SYN from an inmate (well-formed: must be forwarded).
    syn = TCPSegment(rng.randrange(1024, 65536), 80,
                     seq=rng.randrange(1 << 32), flags=SYN)
    packet = IPv4Packet(IPv4Address(f"10.100.0.{rng.randrange(2, 250)}"),
                        _ip(rng), syn)
    return EthernetFrame(_mac(rng), _mac(rng), packet,
                         vlan=rng.randrange(2, 30)).to_bytes()


#: Every (generator, parser) pair the fuzz loops iterate, sorted by
#: name for deterministic round-robin scheduling.
TARGETS: Dict[str, FuzzTarget] = {
    target.name: target for target in [
        FuzzTarget("arp", gen_arp, ArpMessage.from_bytes),
        FuzzTarget("dhcp", gen_dhcp, DhcpMessage.from_bytes),
        FuzzTarget("dns", gen_dns, DnsMessage.from_bytes),
        FuzzTarget("dns-name", gen_dns_name, _parse_dns_name),
        FuzzTarget("ethernet", gen_ethernet, EthernetFrame.from_bytes),
        FuzzTarget("ftp", gen_ftp, _parse_ftp),
        FuzzTarget("gre", gen_gre, _parse_gre),
        FuzzTarget("http", gen_http, _parse_http),
        FuzzTarget("ipv4", gen_ipv4, IPv4Packet.from_bytes),
        FuzzTarget("irc", gen_irc, _parse_irc),
        FuzzTarget("shim-request", gen_request_shim, _parse_request_shim),
        FuzzTarget("shim-response", gen_response_shim, _parse_response_shim),
        FuzzTarget("smtp", gen_smtp, _parse_smtp),
        FuzzTarget("socks", gen_socks, _parse_socks),
        FuzzTarget("tcp", gen_tcp, TCPSegment.from_bytes),
        FuzzTarget("udp", gen_udp, UDPDatagram.from_bytes),
    ]
}

__all__ = ["FuzzTarget", "TARGETS", "hostile_frame"]
