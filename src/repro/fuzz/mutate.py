"""Deterministic byte-level mutation engine.

Every operator draws exclusively from the engine's own
``random.Random`` instance (Mersenne Twister — stable output across
supported Python versions), so a seed fully determines the mutation
stream and corpus digests are reproducible anywhere.

The operator set targets the failure modes network parsers actually
have: flipped bits, truncations at field boundaries, *lying* length
fields (a 16-bit big-endian value overwritten with an extreme), the
duplicated and overlapping segments of hostile TCP reassembly, and
zero-fill / garbage-insertion to upset delimiter scans.
"""

from __future__ import annotations

import random
from typing import Callable, List

MAX_GROWTH = 4096  # mutations never grow an input beyond input+this


class MutationEngine:
    """Seed-driven mutator: ``mutate()`` applies 1–3 random operators."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self._ops: List[Callable[[bytearray], None]] = [
            self._bit_flip,
            self._byte_set,
            self._truncate,
            self._lie_length,
            self._duplicate_slice,
            self._overlap_slice,
            self._delete_slice,
            self._zero_fill,
            self._insert_garbage,
        ]

    def mutate(self, data: bytes) -> bytes:
        buf = bytearray(data)
        for _ in range(self.rng.randint(1, 3)):
            self.rng.choice(self._ops)(buf)
        return bytes(buf)

    # -- operators -----------------------------------------------------
    def _bit_flip(self, buf: bytearray) -> None:
        if not buf:
            return
        index = self.rng.randrange(len(buf))
        buf[index] ^= 1 << self.rng.randrange(8)

    def _byte_set(self, buf: bytearray) -> None:
        if not buf:
            return
        index = self.rng.randrange(len(buf))
        buf[index] = self.rng.choice((0x00, 0xFF, 0x7F, 0x80,
                                      self.rng.randrange(256)))

    def _truncate(self, buf: bytearray) -> None:
        if len(buf) < 2:
            return
        del buf[self.rng.randrange(1, len(buf)):]

    def _lie_length(self, buf: bytearray) -> None:
        """Overwrite a 16-bit big-endian window with an extreme value —
        the classic lying length field."""
        if len(buf) < 2:
            return
        offset = self.rng.randrange(len(buf) - 1)
        value = self.rng.choice((0, 1, 0x7FFF, 0xFFFF,
                                 len(buf) * 2, len(buf) // 2))
        buf[offset:offset + 2] = (value & 0xFFFF).to_bytes(2, "big")

    def _duplicate_slice(self, buf: bytearray) -> None:
        if not buf or len(buf) > MAX_GROWTH:
            return
        start = self.rng.randrange(len(buf))
        end = min(len(buf), start + self.rng.randint(1, 64))
        at = self.rng.randrange(len(buf) + 1)
        buf[at:at] = buf[start:end]

    def _overlap_slice(self, buf: bytearray) -> None:
        """Copy one region onto another — overlapping-segment data."""
        if len(buf) < 4:
            return
        length = self.rng.randint(1, max(1, len(buf) // 2))
        src = self.rng.randrange(len(buf) - length + 1)
        dst = self.rng.randrange(len(buf) - length + 1)
        buf[dst:dst + length] = buf[src:src + length]

    def _delete_slice(self, buf: bytearray) -> None:
        if len(buf) < 2:
            return
        start = self.rng.randrange(len(buf))
        end = min(len(buf), start + self.rng.randint(1, 32))
        del buf[start:end]

    def _zero_fill(self, buf: bytearray) -> None:
        if not buf:
            return
        start = self.rng.randrange(len(buf))
        end = min(len(buf), start + self.rng.randint(1, 32))
        buf[start:end] = bytes(end - start)

    def _insert_garbage(self, buf: bytearray) -> None:
        if len(buf) > MAX_GROWTH:
            return
        at = self.rng.randrange(len(buf) + 1)
        chunk = bytes(self.rng.randrange(256)
                      for _ in range(self.rng.randint(1, 16)))
        buf[at:at] = chunk


__all__ = ["MutationEngine", "MAX_GROWTH"]
