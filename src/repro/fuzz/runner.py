"""Parser-level and farm-level fuzz loops, plus the pinned quick mode.

Two loops, one contract (docs/HARDENING.md):

* :func:`fuzz_parsers` drives every registered
  :class:`~repro.fuzz.generators.FuzzTarget` round-robin with
  generated-then-mutated inputs.  A parser may succeed or raise
  :class:`~repro.net.errors.ParseError`; anything else is an *escape*,
  which gets minimized and pinned into a corpus directory.
* :func:`fuzz_farm` builds a whole farm and feeds
  :func:`~repro.fuzz.generators.hostile_frame` bytes straight into the
  gateway trunk (``SubfarmRouter.ingest_wire``).  The malice barrier
  must absorb everything — the run itself completing *is* the
  assertion that no hostile input unwinds the event loop.

Determinism: both loops draw all randomness from ``random.Random``
instances derived from the caller's seed, so the corpus digest (a
sha256 over every generated input) is byte-identical across machines.
:func:`run_quick` asserts this by running the parser loop twice and by
comparing against the digests tracked in ``FUZZ_quick.json``
(``make fuzz-quick``).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Dict, List, Optional

from repro.fuzz.corpus import CorpusStore, minimize
from repro.fuzz.generators import TARGETS, hostile_frame
from repro.fuzz.mutate import MutationEngine
from repro.net.errors import ParseError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
PINNED_NAME = "FUZZ_quick.json"

QUICK_SEED = 1211
QUICK_ITERATIONS = 2000
QUICK_FRAMES = 300

#: Fraction of parser-loop inputs that get a second, grammar-blind
#: mutation pass on top of the grammar-aware generator output.
MUTATE_RATE = 0.5


def _escape_of(parse, data: bytes) -> Optional[BaseException]:
    """The exception ``parse`` leaks for ``data``, if it breaks the
    succeed-or-ParseError contract; None otherwise."""
    try:
        parse(data)
    except ParseError:
        return None
    except Exception as exc:  # noqa: BLE001 - the hunted signal
        return exc
    return None


def fuzz_parsers(seed: int, iterations: int,
                 corpus_dir: Optional[str] = None) -> dict:
    """Round-robin every target for ``iterations`` inputs; minimize and
    pin any escape into ``corpus_dir`` (when given)."""
    rng = random.Random(seed)
    engine = MutationEngine(seed ^ 0x5EED5EED)
    names = sorted(TARGETS)
    store = CorpusStore(corpus_dir) if corpus_dir else None

    digest = hashlib.sha256()
    ok = parse_errors = mutated = 0
    escapes: List[dict] = []
    for index in range(iterations):
        name = names[index % len(names)]
        target = TARGETS[name]
        data = target.generate(rng)
        if rng.random() < MUTATE_RATE:
            data = engine.mutate(data)
            mutated += 1
        digest.update(name.encode())
        digest.update(len(data).to_bytes(4, "big"))
        digest.update(data)

        exc = _escape_of(target.parse, data)
        if exc is None:
            try:
                target.parse(data)
                ok += 1
            except ParseError:
                parse_errors += 1
            continue

        shrunk = minimize(
            data, lambda d: _escape_of(target.parse, d) is not None)
        entry = {
            "protocol": name,
            "iteration": index,
            "exception": type(exc).__name__,
            "message": str(exc)[:200],
            "input_len": len(data),
            "minimized_len": len(shrunk),
        }
        if store is not None:
            entry["pinned"] = os.path.basename(store.add(name, shrunk))
        escapes.append(entry)

    return {
        "seed": seed,
        "iterations": iterations,
        "targets": len(names),
        "ok": ok,
        "parse_errors": parse_errors,
        "mutated": mutated,
        "escapes": escapes,
        "digest": digest.hexdigest(),
    }


def fuzz_farm(seed: int, frames: int, policy: str = "isolate",
              spacing: float = 0.05, settle: float = 30.0) -> dict:
    """Feed ``frames`` hostile wire frames into a live subfarm trunk.

    Returning at all means the event loop survived; the barrier summary
    says what it absorbed.  Any exception unwinding ``farm.run`` is a
    containment failure and propagates to the caller.
    """
    from repro.farm import Farm, FarmConfig

    rng = random.Random(seed ^ 0xF00DF00D)
    # The journal rides along so every quarantine decision is audited
    # (docs/OBSERVABILITY.md); it never feeds the frame/barrier digest,
    # so pinned digests are unaffected.
    farm = Farm(FarmConfig(seed=seed, malice_policy=policy,
                           journal=True))
    sub = farm.create_subfarm("fuzz")
    router = sub.router

    digest = hashlib.sha256()
    when = 1.0
    for _ in range(frames):
        data = hostile_frame(rng)
        vlan = rng.randrange(1, 31)
        digest.update(vlan.to_bytes(2, "big"))
        digest.update(len(data).to_bytes(4, "big"))
        digest.update(data)
        farm.sim.schedule(when,
                          lambda v=vlan, d=data: router.ingest_wire(v, d),
                          label="fuzz-frame")
        when += spacing
    farm.run(until=when + settle)

    summary = router.barrier.summary()
    digest.update(json.dumps(summary, sort_keys=True).encode())
    journal = farm.journal
    quarantine_events = sum(
        1 for event in journal.events()
        if event.kind == "barrier.quarantine")
    return {
        "seed": seed,
        "policy": policy,
        "frames": frames,
        "virtual_seconds": farm.sim.now,
        "events": farm.sim.events_processed,
        "barrier": summary,
        "survived": True,
        "digest": digest.hexdigest(),
        "journal_events": journal.recorded,
        "journal_quarantines": quarantine_events,
        "journal_digest": journal.digest(),
    }


def run_quick(seed: int = QUICK_SEED, iterations: int = QUICK_ITERATIONS,
              frames: int = QUICK_FRAMES,
              pinned_path: Optional[str] = None) -> dict:
    """The ``make fuzz-quick`` smoke: parser loop (twice, for the
    determinism digest), farm loop under both isolate and fail-stop,
    all compared against the tracked ``FUZZ_quick.json``."""
    violations: List[str] = []

    parsers = fuzz_parsers(seed, iterations)
    replay = fuzz_parsers(seed, iterations)
    determinism = parsers["digest"] == replay["digest"]
    if not determinism:
        violations.append(
            f"parser corpus digest drifts across identical runs "
            f"({parsers['digest']} != {replay['digest']})")
    if parsers["escapes"]:
        for escape in parsers["escapes"]:
            violations.append(
                f"{escape['protocol']}: {escape['exception']} escaped "
                f"the parser ({escape['message']})")

    farm_runs: Dict[str, dict] = {}
    for policy in ("isolate", "fail-stop"):
        try:
            farm_runs[policy] = fuzz_farm(seed, frames, policy=policy)
        except Exception as exc:  # noqa: BLE001 - containment failure
            violations.append(
                f"farm fuzz under policy={policy} crashed the event "
                f"loop: {type(exc).__name__}: {exc}")
    isolate = farm_runs.get("isolate")
    if isolate is not None and not isolate["barrier"]["parse_errors"]:
        violations.append(
            "farm fuzz recorded zero parse errors — the hostile frame "
            "stream is not reaching the barrier")
    for policy, run in sorted(farm_runs.items()):
        if run["journal_quarantines"] != run["barrier"]["parse_errors"]:
            violations.append(
                f"journal audit mismatch under policy={policy}: "
                f"{run['journal_quarantines']} barrier.quarantine "
                f"events vs {run['barrier']['parse_errors']} parse "
                f"errors — a quarantine went unjournaled")

    summary = {
        "experiment": "fuzz-quick",
        "seed": seed,
        "parsers": {
            "iterations": parsers["iterations"],
            "targets": parsers["targets"],
            "ok": parsers["ok"],
            "parse_errors": parsers["parse_errors"],
            "escapes": len(parsers["escapes"]),
            "digest": parsers["digest"],
        },
        "farm": {
            policy: {
                "frames": run["frames"],
                "parse_errors": run["barrier"]["parse_errors"],
                "isolated_flows": run["barrier"]["isolated_flows"],
                "fail_stopped": run["barrier"]["fail_stopped"],
                "quarantined": run["barrier"]["quarantined"],
                "digest": run["digest"],
                "journal_quarantines": run["journal_quarantines"],
                "journal_digest": run["journal_digest"],
            }
            for policy, run in sorted(farm_runs.items())
        },
        "determinism": {"match": determinism},
        "violations": violations,
    }

    path = pinned_path if pinned_path is not None \
        else os.path.join(REPO_ROOT, PINNED_NAME)
    if os.path.exists(path):
        with open(path) as handle:
            tracked = json.load(handle)
        pinned_parser = tracked.get("parsers", {}).get("digest")
        if pinned_parser and pinned_parser != parsers["digest"]:
            violations.append(
                f"parser corpus digest drifted from {PINNED_NAME} "
                f"({pinned_parser} != {parsers['digest']})")
        for policy, cell in tracked.get("farm", {}).items():
            current = summary["farm"].get(policy, {}).get("digest")
            if cell.get("digest") and current and \
                    cell["digest"] != current:
                violations.append(
                    f"farm fuzz digest for policy={policy} drifted "
                    f"from {PINNED_NAME}")
            current_journal = summary["farm"].get(policy, {}) \
                .get("journal_digest")
            if cell.get("journal_digest") and current_journal and \
                    cell["journal_digest"] != current_journal:
                violations.append(
                    f"quarantine journal digest for policy={policy} "
                    f"drifted from {PINNED_NAME}")
        summary["pinned"] = {"path": os.path.basename(path),
                             "match": not any(
                                 "drifted" in v for v in violations)}
    return summary


__all__ = [
    "QUICK_FRAMES",
    "QUICK_ITERATIONS",
    "QUICK_SEED",
    "fuzz_farm",
    "fuzz_parsers",
    "run_quick",
]
