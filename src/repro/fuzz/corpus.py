"""Corpus store, shrinking minimizer, and replay-regression runner.

Every input that makes a parser misbehave is first *shrunk* (greedy
ddmin-style chunk removal while the misbehaviour reproduces) and then
*pinned* as ``<protocol>__<sha8>.bin`` in a corpus directory.  The
repository tracks such a directory under ``tests/fuzz_corpus/``;
``tests/test_fuzz_regressions.py`` replays it on every CI run, so a
crash found once can never quietly return.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Dict, List, Tuple

from repro.fuzz.generators import TARGETS
from repro.net.errors import ParseError


def minimize(data: bytes, still_fails: Callable[[bytes], bool],
             max_rounds: int = 8) -> bytes:
    """Greedy shrink: drop chunks while ``still_fails`` keeps holding.

    Not a full ddmin — a few halving passes are enough to turn a
    multi-kilobyte mutated frame into a readable regression input, and
    determinism matters more here than minimality.
    """
    if not still_fails(data):
        return data
    current = data
    for _ in range(max_rounds):
        if len(current) <= 1:
            break
        chunk = max(1, len(current) // 4)
        shrunk = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate != current and still_fails(candidate):
                current = candidate
                shrunk = True
            else:
                start += chunk
        if not shrunk:
            break
    return current


class CorpusStore:
    """A directory of pinned fuzz inputs, named ``protocol__sha8.bin``."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def add(self, protocol: str, data: bytes) -> str:
        digest = hashlib.sha256(data).hexdigest()[:8]
        path = os.path.join(self.directory, f"{protocol}__{digest}.bin")
        if not os.path.exists(path):
            with open(path, "wb") as handle:
                handle.write(data)
        return path

    def entries(self) -> List[Tuple[str, str, bytes]]:
        """(protocol, filename, data) triples in sorted filename order."""
        out = []
        for filename in sorted(os.listdir(self.directory)):
            if not filename.endswith(".bin") or "__" not in filename:
                continue
            protocol = filename.split("__", 1)[0]
            with open(os.path.join(self.directory, filename), "rb") as handle:
                out.append((protocol, filename, handle.read()))
        return out


def replay_corpus(directory: str) -> Dict[str, object]:
    """Re-parse every pinned input; report anything escaping the
    ParseError taxonomy.  An empty ``escapes`` list means every
    historical crash stays fixed."""
    store = CorpusStore(directory)
    replayed = 0
    skipped: List[str] = []
    escapes: List[dict] = []
    for protocol, filename, data in store.entries():
        target = TARGETS.get(protocol)
        if target is None:
            skipped.append(filename)
            continue
        replayed += 1
        try:
            target.parse(data)
        except ParseError:
            pass
        except Exception as exc:  # noqa: BLE001 - the regression signal
            escapes.append({
                "file": filename,
                "protocol": protocol,
                "exception": type(exc).__name__,
                "message": str(exc)[:200],
            })
    return {"replayed": replayed, "skipped": skipped, "escapes": escapes}


__all__ = ["CorpusStore", "minimize", "replay_corpus"]
