"""The baseline policies themselves."""

from __future__ import annotations

from typing import Set

from repro.core.policy import PolicyContext, register_policy
from repro.core.verdicts import ContainmentDecision
from repro.policies.autoinfect import AutoInfectionPolicy

#: Ports Botlab's description singles out: privileged ports are
#: blanket-dropped; these are the "ports associated with known
#: vulnerabilities" above 1024.
KNOWN_VULNERABLE_PORTS: Set[int] = {1433, 2967, 5554, 9996, 4444}


@register_policy
class UnconstrainedPolicy(AutoInfectionPolicy):
    """Everything out, unchanged.  Maximum behaviour, maximum harm."""

    name = "Unconstrained"

    def decide_other(self, ctx: PolicyContext) -> ContainmentDecision:
        return self.forward(ctx, annotation="unconstrained")

    def decide_other_content(self, ctx, data):
        return self.forward(ctx, annotation="unconstrained")


@register_policy
class FullIsolationPolicy(AutoInfectionPolicy):
    """No external connectivity whatsoever (beyond auto-infection,
    which is farm-internal).  Safe and nearly useless: C&C-dependent
    malware never comes alive."""

    name = "FullIsolation"

    def decide_other(self, ctx: PolicyContext) -> ContainmentDecision:
        return self.deny(ctx, annotation="full isolation")

    def decide_other_content(self, ctx, data):
        return self.deny(ctx, annotation="full isolation")


@register_policy
class BotlabStaticPolicy(AutoInfectionPolicy):
    """Botlab's static containment (§2): "traffic destined to
    privileged ports, or ports associated with known vulnerabilities,
    is automatically dropped, and limits are enforced on connection
    rates, data transmission, and the total window of time in which we
    allow a binary to execute."

    Static rules cut both ways: port-80 C&C dies with the privileged-
    port blanket, while malicious traffic on unprivileged ports leaks
    out (merely rate-limited).
    """

    name = "BotlabStatic"

    def __init__(self, services=None, config=None,
                 rate_limit: float = 10000.0) -> None:
        super().__init__(services, config)
        self.rate_limit = rate_limit

    def decide_other(self, ctx: PolicyContext) -> ContainmentDecision:
        port = ctx.flow.resp_port
        if port < 1024 or port in KNOWN_VULNERABLE_PORTS:
            return self.deny(ctx, annotation="static rule: privileged/vuln port")
        return self.limit(ctx, self.rate_limit,
                          annotation="static rule: rate-limited")

    def decide_other_content(self, ctx, data):
        return self.decide_other(ctx)
