"""Baseline containment regimes from the related work (§2).

These exist so the benchmarks can show *why* GQ's per-flow,
iteratively developed containment matters:

* :class:`UnconstrainedPolicy` — no containment at all (the
  researcher-on-their-desktop anti-pattern the Anubis paper warns of).
* :class:`FullIsolationPolicy` — complete containment, no external
  connectivity (SLINGbot / Botnet Mesocosms style).
* :class:`BotlabStaticPolicy` — Botlab's static rules: drop privileged
  and known-vulnerable ports, rate-limit the rest.
"""

from repro.baselines.policies import (
    BotlabStaticPolicy,
    FullIsolationPolicy,
    UnconstrainedPolicy,
)

__all__ = [
    "UnconstrainedPolicy",
    "FullIsolationPolicy",
    "BotlabStaticPolicy",
]
