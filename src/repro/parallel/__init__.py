"""Sharded campaign execution: parallel farm runs, deterministic merge.

GQ's subfarms are independent habitats so that experiments can proceed
in parallel (§3); this package gives the reproduction the same
property at the *campaign* level — seed sweeps, config sweeps, and
named experiments fan out across a spawn-safe worker pool and merge
back into one deterministic result.

* :mod:`repro.parallel.campaign` — :class:`Campaign`/:class:`ShardSpec`
  descriptions and :func:`derive_seed`,
* :mod:`repro.parallel.pool` — the warm worker pool
  (:func:`run_campaign`), with chunked batching, per-shard timeouts,
  and crash isolation,
* :mod:`repro.parallel.merge` — the ordered merge and campaign digest,
* :mod:`repro.parallel.tasks` — reference shard tasks.

See ``docs/PARALLELISM.md`` for the sharding model and the determinism
contract.
"""

from repro.parallel.campaign import (
    Campaign,
    ShardSpec,
    derive_seed,
    resolve_task,
    task_name,
)
from repro.parallel.merge import CampaignResult, campaign_digest
from repro.parallel.pool import ShardResult, run_campaign

__all__ = [
    "Campaign",
    "CampaignResult",
    "ShardResult",
    "ShardSpec",
    "campaign_digest",
    "derive_seed",
    "resolve_task",
    "run_campaign",
    "task_name",
]
