"""Sharded campaign execution: parallel farm runs, deterministic merge.

GQ's subfarms are independent habitats so that experiments can proceed
in parallel (§3); this package gives the reproduction the same
property at the *campaign* level — seed sweeps, config sweeps, and
named experiments fan out across worker processes on one or many
hosts and merge back into one deterministic result.

* :mod:`repro.parallel.campaign` — :class:`Campaign`/:class:`ShardSpec`
  descriptions and :func:`derive_seed`,
* :mod:`repro.parallel.topology` — declarative farm-of-farms layouts
  lowered by compiler passes into a concrete :class:`Placement`,
* :mod:`repro.parallel.pool` — the adaptive work-stealing scheduler
  (:func:`run_campaign`): shared shard queue, per-worker cost
  estimates, speculative tail re-dispatch, per-shard timeouts, crash
  isolation,
* :mod:`repro.parallel.transport` — how shards reach workers:
  :class:`LocalTransport` (warm spawn pool) and
  :class:`SocketTransport` (length-prefixed JSON frames to
  ``python -m repro.parallel.worker`` host agents),
* :mod:`repro.parallel.worker` — shard execution and the multi-host
  worker agent,
* :mod:`repro.parallel.merge` — the ordered merge and campaign digest,
* :mod:`repro.parallel.tasks` — reference shard tasks.

See ``docs/PARALLELISM.md`` for the sharding model, the wire protocol,
and the determinism contract.
"""

from repro.parallel.campaign import (
    Campaign,
    ShardSpec,
    derive_seed,
    resolve_task,
    task_name,
)
from repro.parallel.merge import CampaignResult, campaign_digest
from repro.parallel.pool import SCHEDULERS, ShardResult, run_campaign
from repro.parallel.topology import (
    FarmTopology,
    HostSpec,
    Placement,
    TopologyError,
)
from repro.parallel.transport import (
    LocalTransport,
    SocketTransport,
    Transport,
    TransportError,
    local_agents,
    start_local_agent,
)
from repro.parallel.worker import execute_spec, host_info

__all__ = [
    "Campaign",
    "CampaignResult",
    "FarmTopology",
    "HostSpec",
    "LocalTransport",
    "Placement",
    "SCHEDULERS",
    "ShardResult",
    "ShardSpec",
    "SocketTransport",
    "TopologyError",
    "Transport",
    "TransportError",
    "campaign_digest",
    "derive_seed",
    "execute_spec",
    "host_info",
    "local_agents",
    "resolve_task",
    "run_campaign",
    "start_local_agent",
    "task_name",
]
