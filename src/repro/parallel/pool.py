"""The sharded campaign runner: an adaptive scheduler over pluggable
worker transports.

Design (mirrors the farm itself: independent habitats, one merge
point):

* **Transport-agnostic.**  The scheduler talks to
  :class:`repro.parallel.transport.WorkerHandle` slots.
  ``LocalTransport`` is the warm spawn-based process pool;
  ``SocketTransport`` reaches ``python -m repro.parallel.worker`` host
  agents over length-prefixed JSON frames (``hosts=`` or an explicit
  ``transport=``).  Digests are byte-identical across transports
  because the JSON round trip has been the wire contract since the
  pool existed.
* **Work stealing, not static chunks.**  The default scheduler
  (``scheduler="steal"``) keeps one shared shard queue and dispatches
  a single shard per idle slot: fast workers automatically drain the
  work a slow host would otherwise straggle.  Per-worker EWMA
  shard-cost estimates feed a deficit counter (faster-than-average
  workers accumulate first claim on the queue) and, once the queue is
  dry, **speculative re-dispatch**: a tail shard that has been running
  far beyond its worker's estimate is duplicated onto an idle slot and
  the first completion wins — results are unchanged because shards are
  deterministic, so the twin's payload is byte-identical.
  ``scheduler="static"`` keeps the classic contiguous pre-partition
  (one block per worker) for comparison; the scaling benchmark records
  both.
* **Crash isolation.**  A worker announces each shard before executing
  it, so when a slot dies — crash, OOM-kill, or the scheduler
  enforcing a shard timeout — the master knows exactly which shard was
  in flight: that shard fails with a structured error (unless a
  speculative twin is still running it), the unstarted remainder of a
  static chunk is requeued, and a replacement slot is launched under a
  bounded respawn budget.  A dead worker fails its shard, never the
  campaign.
* **Round-trip timeouts.**  Per-shard timeouts are measured on the
  master's monotonic clock around the full transport round trip
  (serialize → dispatch → result).  Before killing a slot the
  scheduler drains its connection once more, so a result that is
  already on the wire of a slow link is recorded as the success it is,
  never misreported as a ``timeout`` failure.
* **Scheduling honesty.**  Every worker's ``ready`` frame reports its
  host's ``host_cpus``/``sched_cpus``; the merge persists them per
  host in the campaign metadata and the runner emits a one-line
  warning when a host runs more workers than schedulable cpus.
* **Serial fallback.**  ``workers=1`` (or 0) with no transport runs
  every shard in-process through the *same* execution function workers
  use (:func:`repro.parallel.worker.execute_spec`) — no subprocess, no
  pipes — so tests stay hermetic and digests comparable.

Wall-clock timeouts are only enforceable when shards run in worker
slots; the serial path documents rather than enforces them.
"""

from __future__ import annotations

import socket as socket_module
import time
import warnings
from collections import deque
from typing import Dict, List, Optional

from repro.parallel.campaign import Campaign, ShardSpec
from repro.parallel.merge import CampaignResult, merge_results
from repro.parallel.worker import execute_spec, host_info

__all__ = [
    "ShardResult",
    "run_campaign",
    "SCHEDULERS",
]

SCHEDULERS = ("steal", "static")

# EWMA smoothing for per-worker shard-cost estimates.
EWMA_ALPHA = 0.4
# A tail shard becomes a speculation candidate once it has run this
# many times its worker's estimated cost (and at least the floor).
SPECULATION_FACTOR = 2.0
SPECULATION_FLOOR_SECONDS = 0.2


class ShardResult:
    """Outcome of one shard: payload on success, structured error not
    an exception on failure (``kind``: error | payload | timeout |
    crash | pool).  ``worker`` is the slot id, ``host`` the worker
    host that produced (or lost) the shard."""

    __slots__ = ("index", "label", "ok", "payload", "error", "seconds",
                 "worker", "host")

    def __init__(self, index: int, label: str, ok: bool,
                 payload: Optional[dict], error: Optional[dict],
                 seconds: float, worker: Optional[int] = None,
                 host: Optional[str] = None) -> None:
        self.index = index
        self.label = label
        self.ok = ok
        self.payload = payload
        self.error = error
        self.seconds = seconds
        self.worker = worker
        self.host = host

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "ok": self.ok,
            "payload": self.payload,
            "error": self.error,
            "seconds": round(self.seconds, 6),
            "worker": self.worker,
            "host": self.host,
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else (self.error or {}).get("kind", "failed")
        return f"<ShardResult {self.index} {self.label} {state}>"


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def run_campaign(campaign: Campaign, workers: int = 1,
                 chunk_size: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 max_respawns: Optional[int] = None,
                 fault_plan=None,
                 transport=None,
                 hosts=None,
                 scheduler: str = "steal",
                 speculate: bool = True) -> CampaignResult:
    """Run every shard of ``campaign`` and merge deterministically.

    ``workers <= 1`` with no transport is the hermetic serial fallback
    (same execution function, no subprocesses).  ``hosts`` (a list of
    ``"host:port"`` agent endpoints, or one comma-separated string)
    selects :class:`~repro.parallel.transport.SocketTransport`; an
    explicit ``transport=`` overrides both.  ``scheduler`` is
    ``"steal"`` (adaptive work stealing, the default) or ``"static"``
    (contiguous pre-partition; ``chunk_size`` overrides the block
    size).  ``default_timeout`` applies to shards whose spec does not
    set its own timeout.  ``fault_plan`` (a
    :class:`repro.faults.FaultPlan` or its dict form) stamps
    worker-process faults onto the matching shard specs.
    """
    from repro.faults.plan import FaultPlan

    if scheduler not in SCHEDULERS:
        raise ValueError(f"scheduler must be one of {SCHEDULERS}, "
                         f"got {scheduler!r}")
    started = time.perf_counter()
    overlay = FaultPlan.coerce(fault_plan).worker_faults()
    owns_transport = False
    if transport is None and hosts:
        from repro.parallel.transport import SocketTransport

        transport = SocketTransport(hosts)
        owns_transport = True
    if transport is None and (workers <= 1 or len(campaign) <= 1):
        shard_results = _run_serial(campaign, overlay)
        info = host_info()
        hosts_info = {info["host"]: {
            "host_cpus": info["host_cpus"],
            "sched_cpus": info["sched_cpus"],
            "workers": 1,
            "shards": len(shard_results),
        }}
        sched_stats = None
        effective_workers = 1
    else:
        if transport is None:
            from repro.parallel.transport import LocalTransport

            transport = LocalTransport()
            owns_transport = True
        try:
            shard_results, hosts_info, sched_stats = _run_scheduled(
                campaign, max(1, workers), transport,
                scheduler=scheduler, chunk_size=chunk_size,
                default_timeout=default_timeout,
                max_respawns=max_respawns, overlay=overlay,
                speculate=speculate)
        finally:
            if owns_transport:
                transport.close()
        effective_workers = max(1, workers)
    _warn_oversubscribed(hosts_info)
    return merge_results(campaign, shard_results,
                         workers=effective_workers,
                         wall_seconds=time.perf_counter() - started,
                         hosts=hosts_info,
                         scheduler_stats=sched_stats)


def _warn_oversubscribed(hosts_info: Dict[str, dict]) -> None:
    """One line of scheduling honesty: flag hosts running more workers
    than schedulable cpus (speedups will not track worker count)."""
    offenders = [
        f"{host}: {info['workers']} workers > {info['sched_cpus']} "
        f"schedulable cpus"
        for host, info in sorted(hosts_info.items())
        if info.get("sched_cpus") and info.get("workers", 0) > 1
        and info["workers"] > info["sched_cpus"]
    ]
    if offenders:
        warnings.warn(
            "campaign oversubscribed — " + "; ".join(offenders)
            + " (cpu-bound speedup will not track worker count; "
              "see docs/PARALLELISM.md)",
            RuntimeWarning, stacklevel=3)


def _spec_dicts(campaign: Campaign, overlay: Dict[int, dict]) -> List[dict]:
    out = []
    for spec in campaign:
        spec_dict = spec.to_dict()
        fault = overlay.get(spec.index)
        if fault is not None:
            spec_dict["fault"] = fault
        out.append(spec_dict)
    return out


def _run_serial(campaign: Campaign,
                overlay: Dict[int, dict]) -> List[ShardResult]:
    host = socket_module.gethostname()
    out = []
    for spec, spec_dict in zip(campaign, _spec_dicts(campaign, overlay)):
        result = execute_spec(spec_dict)
        out.append(ShardResult(spec.index, spec.label, result["ok"],
                               result["payload"], result["error"],
                               result["seconds"], worker=0, host=host))
    return out


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class _Slot:
    """Master-side view of one worker slot, any transport."""

    __slots__ = ("handle", "chunk", "done", "current", "shard_clock",
                 "ewma", "deficit", "completed", "busy_seconds",
                 "speculative", "host_key")

    def __init__(self, handle) -> None:
        self.handle = handle
        self.chunk: Optional[List[dict]] = None  # specs last dispatched
        self.done: set = set()
        self.current: Optional[int] = None       # last announced shard
        self.shard_clock: float = 0.0            # monotonic, round-trip
        self.ewma: Optional[float] = None        # est. shard cost (s)
        self.deficit: float = 0.0
        self.completed: int = 0
        self.busy_seconds: float = 0.0
        self.speculative: bool = False           # current dispatch a twin
        self.host_key: Optional[str] = None      # set by the ready frame

    @property
    def idle(self) -> bool:
        return self.chunk is None

    def next_pending(self) -> Optional[dict]:
        """The chunk spec currently executing (or next to): dispatch
        order, skipping completed ones.  This is what a timeout or a
        death is charged against — it does not rely on the ``start``
        announcement having crossed a slow link yet."""
        if not self.chunk:
            return None
        for spec in self.chunk:
            if spec["index"] not in self.done:
                return spec
        return None


def _run_scheduled(campaign: Campaign, workers: int, transport,
                   scheduler: str,
                   chunk_size: Optional[int],
                   default_timeout: Optional[float],
                   max_respawns: Optional[int],
                   overlay: Dict[int, dict],
                   speculate: bool):
    from multiprocessing.connection import wait as connection_wait

    from repro.parallel.transport import TransportError

    specs: Dict[int, ShardSpec] = {s.index: s for s in campaign}
    total = len(specs)
    workers = min(workers, total)
    if max_respawns is None:
        max_respawns = total  # every shard may kill at most one worker

    ordered = _spec_dicts(campaign, overlay)
    pending: deque = deque()
    if scheduler == "static":
        size = chunk_size or -(-total // workers)  # ceil
        for at in range(0, total, size):
            pending.append(ordered[at:at + size])
    else:
        pending.extend([spec] for spec in ordered)

    results: Dict[int, ShardResult] = {}
    inflight: Dict[int, set] = {}       # index -> slots running it
    speculated: set = set()             # indexes already twinned once
    live_per_host: Dict[str, int] = {}
    hosts_info: Dict[str, dict] = {}
    stats = {
        "mode": scheduler,
        "transport": transport.kind,
        "workers": workers,
        "dispatches": 0,
        "requeues": 0,
        "respawns": 0,
        "speculations": 0,
        "speculation_wins": 0,
        "stale_kills": 0,
    }
    active: List[_Slot] = []
    all_slots: List[_Slot] = []
    spawned_total = 0
    respawns_left = max_respawns

    # ------------------------------------------------------------------
    def fail_shard(index: int, kind: str, message: str,
                   worker_id: int, host: Optional[str],
                   seconds: float = 0.0) -> None:
        spec = specs[index]
        results[index] = ShardResult(
            index, spec.label, False, None,
            {"kind": kind, "message": message}, seconds,
            worker=worker_id, host=host)

    def mean_cost() -> Optional[float]:
        known = [s.ewma for s in all_slots if s.ewma is not None]
        return sum(known) / len(known) if known else None

    def record_ready(slot: _Slot, info: dict) -> None:
        slot.handle.info = info
        host = info.get("host") or slot.handle.host
        slot.host_key = host
        live_per_host[host] = live_per_host.get(host, 0) + 1
        entry = hosts_info.setdefault(host, {
            "host_cpus": info.get("host_cpus"),
            "sched_cpus": info.get("sched_cpus"),
            "workers": 0,
            "shards": 0,
        })
        entry["workers"] = max(entry["workers"], live_per_host[host])

    def record_done(slot: _Slot, index: int, result: dict) -> None:
        slot.done.add(index)
        slot.current = None
        now = time.monotonic()
        round_trip = now - slot.shard_clock
        slot.shard_clock = now
        slot.busy_seconds += round_trip
        cost = result.get("seconds") or round_trip
        slot.ewma = cost if slot.ewma is None \
            else EWMA_ALPHA * cost + (1.0 - EWMA_ALPHA) * slot.ewma
        slot.completed += 1
        mean = mean_cost()
        if mean is not None and slot.ewma is not None:
            slot.deficit += max(0.0, mean - slot.ewma)
        runners = inflight.get(index)
        if runners is not None:
            runners.discard(slot)
        if slot.host_key and slot.host_key in hosts_info:
            hosts_info[slot.host_key]["shards"] += 1
        if index not in results:
            results[index] = ShardResult(
                index, specs[index].label, result["ok"],
                result["payload"], result["error"], result["seconds"],
                worker=slot.handle.id, host=slot.host_key)
            if slot.speculative:
                stats["speculation_wins"] += 1

    def ingest(slot: _Slot, messages) -> None:
        for message in messages:
            tag = message[0]
            if tag == "ready":
                record_ready(slot, message[1])
            elif tag == "start":
                slot.current = message[1]
            elif tag == "done":
                record_done(slot, message[1], message[2])
            elif tag == "idle":
                slot.chunk = None
                slot.done = set()
                slot.current = None
                slot.speculative = False

    def release_slot(slot: _Slot) -> None:
        if slot.host_key:
            live_per_host[slot.host_key] = max(
                0, live_per_host.get(slot.host_key, 1) - 1)

    def reap(slot: _Slot, kind: Optional[str], message: str,
             elapsed: float = 0.0,
             charge_unannounced: bool = False) -> None:
        """A slot died (crash) or was killed (timeout/stale): fail its
        in-flight shard unless a twin still runs it, requeue the
        unstarted rest of a static chunk.

        A crash only *charges* the shard the worker had announced
        (``start``) — a slot that dies before announcing anything gets
        its whole chunk requeued, exactly like the chunked pool did.
        Timeouts pass ``charge_unannounced=True``: the round-trip
        clock covers dispatch itself, so an unannounced shard that
        blew its deadline is a timeout, not a requeue.
        """
        failed = slot.next_pending()
        if slot.chunk:
            for spec in slot.chunk:
                runners = inflight.get(spec["index"])
                if runners is not None:
                    runners.discard(slot)
        charged = (failed is not None and kind is not None
                   and (charge_unannounced
                        or slot.current == failed["index"]))
        if charged:
            index = failed["index"]
            if index not in results and not inflight.get(index):
                fail_shard(index, kind, message, slot.handle.id,
                           slot.host_key, seconds=elapsed)
        if slot.chunk:
            leftover = [
                spec for spec in slot.chunk
                if spec["index"] not in slot.done
                and spec["index"] not in results
                and not (charged and spec["index"] == failed["index"])
                and not inflight.get(spec["index"])
            ]
            if leftover:
                pending.appendleft(leftover)
                stats["requeues"] += len(leftover)
        slot.chunk = None
        slot.current = None
        release_slot(slot)
        slot.handle.kill()
        slot.handle.close()

    def dispatch(slot: _Slot, chunk: List[dict],
                 speculative: bool = False) -> bool:
        chunk = [spec for spec in chunk
                 if spec["index"] not in results]
        if not chunk:
            return False
        slot.chunk = chunk
        slot.done = set()
        slot.current = None
        slot.speculative = speculative
        # Round-trip clock starts at serialization time (satellite
        # contract: serialize → dispatch → result on one monotonic
        # clock); record_done re-arms it per shard within a chunk.
        slot.shard_clock = time.monotonic()
        try:
            slot.handle.send(("run", chunk))
        except TransportError as exc:
            reap(slot, "crash", str(exc))
            if slot in active:
                active.remove(slot)
            return False
        for spec in chunk:
            inflight.setdefault(spec["index"], set()).add(slot)
        stats["dispatches"] += 1
        if speculative:
            stats["speculations"] += 1
        return True

    def launch_slot() -> Optional[_Slot]:
        nonlocal spawned_total
        try:
            handle = transport.launch()
        except TransportError:
            return None
        slot = _Slot(handle)
        spawned_total += 1
        active.append(slot)
        all_slots.append(slot)
        return slot

    def idle_slots_by_priority() -> List[_Slot]:
        """Deficit-based dispatch order: workers whose EWMA beats the
        pool mean accumulated deficit — they get first claim, so fast
        hosts drain the queue (and stragglers' leftovers) first."""
        return sorted((s for s in active if s.idle),
                      key=lambda s: (-s.deficit, s.ewma or 0.0,
                                     s.handle.id))

    # ------------------------------------------------------------------
    try:
        while len(results) < total:
            # Keep the pool at strength while unassigned work remains:
            # the initial `workers` spawns are free, every further
            # launch (replacement or retry after a failed launch)
            # consumes the respawn budget so a dying pool terminates.
            while pending and len(active) < workers and \
                    (respawns_left > 0 or spawned_total < workers):
                replacement = spawned_total >= workers
                slot = launch_slot()
                if slot is None:
                    respawns_left -= 1
                    if active or respawns_left <= 0:
                        break
                    continue
                if replacement:
                    respawns_left -= 1
                    stats["respawns"] += 1
            if not active:
                # Every slot is gone and none can be launched: fail
                # whatever is left, structured, and finish.
                for index in specs:
                    if index not in results:
                        fail_shard(index, "pool",
                                   "worker pool exhausted its respawn "
                                   "budget", -1, None)
                break

            # Dispatch work to idle slots, fastest-estimate first.
            for slot in idle_slots_by_priority():
                if not pending:
                    break
                dispatch(slot, pending.popleft())

            # Tail speculation: queue dry, idle capacity, and a shard
            # far beyond its worker's cost estimate still in flight.
            if (speculate and scheduler == "steal" and not pending
                    and len(results) < total):
                _speculate_tail(active, inflight, results, specs,
                                speculated, dispatch, mean_cost)

            if len(results) >= total:
                break

            busy = [slot for slot in active if not slot.idle]
            if not busy:
                if not pending:
                    # Defensive refill: no runner owns the remainder
                    # (e.g. every twin died) — requeue what is missing.
                    missing = [spec for spec in ordered
                               if spec["index"] not in results
                               and not inflight.get(spec["index"])]
                    pending.extend([spec] for spec in missing)
                    if not missing:
                        continue
                continue

            connection_wait([slot.handle.waitable for slot in busy],
                            timeout=0.05)
            dead: List[_Slot] = []
            for slot in busy:
                try:
                    ingest(slot, slot.handle.drain())
                except TransportError as exc:
                    dead.append((slot, str(exc)))

            # Timeouts: full-round-trip monotonic clock per shard.
            now = time.monotonic()
            for slot in list(active):
                if any(slot is candidate for candidate, _ in dead):
                    continue
                spec = slot.next_pending()
                if spec is None:
                    # A slot that silently died between shards: its
                    # chunk simply gets requeued.
                    if not slot.idle and not slot.handle.alive():
                        dead.append((slot, "worker died between shards"))
                    continue
                timeout = spec.get("timeout")
                if timeout is None:
                    timeout = default_timeout
                if timeout is None or now - slot.shard_clock <= timeout:
                    continue
                # Final drain before judging: a result already on the
                # wire of a slow link must be recorded as the success
                # it is, not misreported as a timeout.
                try:
                    ingest(slot, slot.handle.drain())
                except TransportError as exc:
                    dead.append((slot, str(exc)))
                    continue
                spec = slot.next_pending()
                if spec is None or now - slot.shard_clock <= timeout:
                    continue
                elapsed = now - slot.shard_clock
                if spec["index"] in results:
                    # Stale speculative twin overstaying: reclaim the
                    # slot without failing anything.
                    stats["stale_kills"] += 1
                    reap(slot, None, "stale twin reclaimed", elapsed)
                else:
                    reap(slot, "timeout",
                         f"shard exceeded its {timeout:.3f}s timeout "
                         f"({elapsed:.3f}s round trip) and its worker "
                         "was killed", elapsed, charge_unannounced=True)
                active.remove(slot)

            for slot, message in dead:
                if slot not in active:
                    continue
                reap(slot, "crash", message)
                active.remove(slot)
    finally:
        for slot in active:
            try:
                slot.handle.send(("stop",))
            except Exception:  # noqa: BLE001 — already dying
                pass
        for slot in active:
            release_slot(slot)
            slot.handle.close()

    stats["per_worker"] = [
        {
            "worker": slot.handle.id,
            "host": slot.host_key,
            "shards": slot.completed,
            "busy_seconds": round(slot.busy_seconds, 4),
            "ewma_seconds": round(slot.ewma, 6)
            if slot.ewma is not None else None,
        }
        for slot in all_slots
    ]
    shard_results = [results[index] for index in sorted(results)]
    return shard_results, hosts_info, stats


def _speculate_tail(active, inflight, results, specs, speculated,
                    dispatch, mean_cost) -> None:
    """Duplicate the most-overdue tail shard onto an idle slot."""
    idle = [slot for slot in active if slot.idle]
    if not idle:
        return
    now = time.monotonic()
    mean = mean_cost()
    candidates = []
    for index, runners in inflight.items():
        if index in results or index in speculated or not runners:
            continue
        if len(runners) > 1:
            continue
        (runner,) = runners
        spec = runner.next_pending()
        if spec is None or spec["index"] != index:
            continue
        if spec.get("fault") is not None:
            continue  # deliberately-faulted shards are not re-run
        estimate = runner.ewma if runner.ewma is not None else mean
        if estimate is None:
            continue  # no cost baseline anywhere yet
        elapsed = now - runner.shard_clock
        threshold = max(SPECULATION_FLOOR_SECONDS,
                        SPECULATION_FACTOR * estimate)
        if elapsed > threshold:
            candidates.append((elapsed / max(estimate, 1e-9),
                               index, spec))
    candidates.sort(key=lambda item: -item[0])
    for slot, (_, index, spec) in zip(idle, candidates):
        twin = dict(spec)
        if dispatch(slot, [twin], speculative=True):
            speculated.add(index)
