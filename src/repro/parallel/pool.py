"""The sharded campaign runner: a spawn-safe warm worker pool.

Design (mirrors the farm itself: independent habitats, one merge
point):

* **Spawn-safe.**  Workers are started with the ``spawn`` start
  method, so each worker is a fresh interpreter that imports shard
  tasks by name — no reliance on fork-inherited state, identical
  behaviour on Linux/macOS/Windows, and no risk of a forked copy of a
  half-built farm.
* **Warm reuse.**  A worker stays alive across shards; the interpreter
  and ``repro`` import cost is paid once per worker, not per shard.
* **Chunked batching.**  Shards are dispatched in chunks to bound
  round-trip chatter on large campaigns; chunking never changes
  results because shards are independent and the merge orders by
  index.
* **Crash isolation.**  Every worker owns a private duplex pipe.  A
  worker announces each shard (``start``) before executing it, so when
  a worker dies — crash, OOM-kill, or the pool enforcing a shard
  timeout — the master knows exactly which shard was in flight: that
  shard fails with a structured error, the unstarted remainder of its
  chunk is requeued, and a replacement worker is spawned.  A dead
  worker fails its shard, never the campaign.
* **Serial fallback.**  ``workers=1`` (or 0) runs every shard in-process
  through the *same* execution function workers use — no subprocess,
  no pipes — so tests stay hermetic and digests comparable.

Wall-clock timeouts are only enforceable when shards run in
subprocesses; the serial path documents rather than enforces them.
"""

from __future__ import annotations

import json
import time
import traceback
from collections import deque
from typing import Dict, List, Optional

from repro.parallel.campaign import Campaign, ShardSpec, resolve_task
from repro.parallel.merge import CampaignResult, merge_results

__all__ = [
    "ShardResult",
    "run_campaign",
    "DEFAULT_CHUNK_FACTOR",
]

# Chunks per worker the auto chunk size aims for: small enough that a
# late straggler cannot hold a whole campaign's tail, large enough to
# amortize dispatch round trips.
DEFAULT_CHUNK_FACTOR = 4

# True only inside a spawned worker process.  Worker-process faults
# (repro.faults) behave destructively there — os._exit, a real hang —
# and degrade to structured failures on the serial path so the test
# process itself never dies.
_IN_WORKER = False


class ShardResult:
    """Outcome of one shard: payload on success, structured error not
    an exception on failure (``kind``: error | payload | timeout |
    crash | pool)."""

    __slots__ = ("index", "label", "ok", "payload", "error", "seconds",
                 "worker")

    def __init__(self, index: int, label: str, ok: bool,
                 payload: Optional[dict], error: Optional[dict],
                 seconds: float, worker: Optional[int] = None) -> None:
        self.index = index
        self.label = label
        self.ok = ok
        self.payload = payload
        self.error = error
        self.seconds = seconds
        self.worker = worker

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "ok": self.ok,
            "payload": self.payload,
            "error": self.error,
            "seconds": round(self.seconds, 6),
            "worker": self.worker,
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else (self.error or {}).get("kind", "failed")
        return f"<ShardResult {self.index} {self.label} {state}>"


# ----------------------------------------------------------------------
# Shard execution — shared by the serial path and worker processes
# ----------------------------------------------------------------------
def _execute_spec(spec_dict: dict) -> dict:
    """Run one shard spec; always returns a structured result dict."""
    started = time.perf_counter()

    def failure(kind: str, exc: BaseException) -> dict:
        return {
            "ok": False,
            "payload": None,
            "error": {
                "kind": kind,
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=20),
            },
            "seconds": time.perf_counter() - started,
        }

    fault = spec_dict.get("fault")
    if fault is not None:
        outcome = _apply_worker_fault(fault, started)
        if outcome is not None:
            return outcome

    try:
        fn = resolve_task(spec_dict["task"])
        payload = fn(**spec_dict.get("params", {}))
    except Exception as exc:  # noqa: BLE001 — becomes a structured error
        return failure("error", exc)
    try:
        if not isinstance(payload, dict):
            raise TypeError(
                f"shard task returned {type(payload).__name__}, "
                "expected a JSON-safe dict")
        # The JSON round trip is the wire contract: whatever crosses
        # process boundaries must survive it, so enforce it in both
        # the serial and subprocess paths for identical behaviour.
        payload = json.loads(json.dumps(payload))
    except Exception as exc:  # noqa: BLE001
        return failure("payload", exc)
    return {"ok": True, "payload": payload, "error": None,
            "seconds": time.perf_counter() - started}


def _apply_worker_fault(fault: dict, started: float) -> Optional[dict]:
    """Enact a worker-process fault stamped onto a shard spec.

    In a real worker the crash and hang are genuine (the pool's crash
    isolation and timeout machinery must recover); on the serial path
    they degrade to the structured failure the pool would eventually
    record, so running with ``workers=1`` stays hermetic.
    """
    kind = fault.get("kind")
    if kind == "worker_crash":
        if _IN_WORKER:
            import os

            os._exit(int(fault.get("exitcode", 134)))
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "crash",
                      "message": "injected worker crash (serial path)"},
            "seconds": time.perf_counter() - started,
        }
    if kind == "worker_hang":
        if _IN_WORKER:
            time.sleep(float(fault.get("wall_seconds", 3600.0)))
            return None  # killed long before this on any sane timeout
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "timeout",
                      "message": "injected worker hang (serial path)"},
            "seconds": time.perf_counter() - started,
        }
    if kind == "worker_error":
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "error",
                      "message": str(fault.get("message",
                                               "injected worker error"))},
            "seconds": time.perf_counter() - started,
        }
    return None


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: receive chunks of spec dicts, announce and run each
    shard, report results, idle until the next chunk or ``stop``."""
    global _IN_WORKER
    _IN_WORKER = True
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            assert message[0] == "run", message
            for spec_dict in message[1]:
                conn.send(("start", spec_dict["index"]))
                result = _execute_spec(spec_dict)
                conn.send(("done", spec_dict["index"], result))
            conn.send(("idle", worker_id))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """Master-side handle: process, pipe, and in-flight accounting."""

    __slots__ = ("id", "proc", "conn", "chunk", "current", "started",
                 "done")

    def __init__(self, wid: int, proc, conn) -> None:
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.chunk: Optional[List[dict]] = None  # specs last dispatched
        self.current: Optional[int] = None       # shard index in flight
        self.started: float = 0.0                # monotonic start time
        self.done: set = set()

    @property
    def idle(self) -> bool:
        return self.chunk is None


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
def run_campaign(campaign: Campaign, workers: int = 1,
                 chunk_size: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 max_respawns: Optional[int] = None,
                 fault_plan=None) -> CampaignResult:
    """Run every shard of ``campaign`` and merge deterministically.

    ``workers <= 1`` is the hermetic serial fallback (same execution
    function, no subprocesses).  ``default_timeout`` applies to shards
    whose spec does not set its own timeout.  ``fault_plan`` (a
    :class:`repro.faults.FaultPlan` or its dict form) stamps
    worker-process faults onto the matching shard specs.
    """
    from repro.faults.plan import FaultPlan

    started = time.perf_counter()
    overlay = FaultPlan.coerce(fault_plan).worker_faults()
    if workers <= 1 or len(campaign) <= 1:
        shard_results = _run_serial(campaign, overlay)
        effective_workers = 1
    else:
        shard_results = _run_pool(campaign, workers, chunk_size,
                                  default_timeout, max_respawns, overlay)
        effective_workers = workers
    return merge_results(campaign, shard_results,
                         workers=effective_workers,
                         wall_seconds=time.perf_counter() - started)


def _spec_dicts(campaign: Campaign, overlay: Dict[int, dict]) -> List[dict]:
    out = []
    for spec in campaign:
        spec_dict = spec.to_dict()
        fault = overlay.get(spec.index)
        if fault is not None:
            spec_dict["fault"] = fault
        out.append(spec_dict)
    return out


def _run_serial(campaign: Campaign,
                overlay: Dict[int, dict]) -> List[ShardResult]:
    out = []
    for spec, spec_dict in zip(campaign, _spec_dicts(campaign, overlay)):
        result = _execute_spec(spec_dict)
        out.append(ShardResult(spec.index, spec.label, result["ok"],
                               result["payload"], result["error"],
                               result["seconds"], worker=0))
    return out


def _run_pool(campaign: Campaign, workers: int,
              chunk_size: Optional[int],
              default_timeout: Optional[float],
              max_respawns: Optional[int],
              overlay: Dict[int, dict]) -> List[ShardResult]:
    import multiprocessing as mp
    from multiprocessing.connection import wait as connection_wait

    ctx = mp.get_context("spawn")
    specs: Dict[int, ShardSpec] = {s.index: s for s in campaign}
    total = len(specs)
    workers = min(workers, total)
    if chunk_size is None:
        chunk_size = max(1, total // (workers * DEFAULT_CHUNK_FACTOR) or 1)
    if max_respawns is None:
        max_respawns = total  # every shard may kill at most one worker

    pending: deque = deque()
    ordered = _spec_dicts(campaign, overlay)
    for at in range(0, total, chunk_size):
        pending.append(ordered[at:at + chunk_size])

    results: Dict[int, ShardResult] = {}
    next_wid = 0
    respawns_left = max_respawns

    def spawn_worker() -> _Worker:
        nonlocal next_wid
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(target=_worker_main,
                           args=(child_conn, next_wid),
                           name=f"gq-shard-worker-{next_wid}",
                           daemon=True)
        proc.start()
        child_conn.close()  # EOF on parent_conn when the child dies
        worker = _Worker(next_wid, proc, parent_conn)
        next_wid += 1
        return worker

    def fail_shard(index: int, kind: str, message: str,
                   worker_id: int) -> None:
        spec = specs[index]
        results[index] = ShardResult(
            index, spec.label, False, None,
            {"kind": kind, "message": message}, 0.0, worker=worker_id)

    def reap(worker: _Worker, kind: str, message: str) -> None:
        """A worker died (crash) or was killed (timeout): fail the
        in-flight shard, requeue the unstarted rest of its chunk."""
        if worker.current is not None:
            fail_shard(worker.current, kind, message, worker.id)
        if worker.chunk:
            leftover = [spec for spec in worker.chunk
                        if spec["index"] not in results
                        and spec["index"] not in worker.done]
            if leftover:
                pending.appendleft(leftover)
        worker.chunk = None
        worker.current = None
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)

    active: List[_Worker] = [spawn_worker() for _ in range(workers)]

    try:
        while len(results) < total:
            # Keep the pool at strength while unassigned work remains.
            while pending and respawns_left > 0 and len(active) < workers:
                active.append(spawn_worker())
                respawns_left -= 1
            if not active:
                # Every worker died and the respawn budget is gone:
                # fail whatever is left, structured, and finish.
                for index in specs:
                    if index not in results:
                        fail_shard(index, "pool",
                                   "worker pool exhausted its respawn "
                                   "budget", -1)
                break

            # Dispatch chunks to idle workers.
            for worker in list(active):
                if worker.idle and pending:
                    chunk = [spec for spec in pending.popleft()
                             if spec["index"] not in results]
                    if not chunk:
                        continue
                    worker.chunk = chunk
                    worker.done = set()
                    worker.current = None
                    try:
                        worker.conn.send(("run", chunk))
                    except (OSError, BrokenPipeError):
                        reap(worker, "crash",
                             "worker died before accepting its chunk")
                        active.remove(worker)
                        respawns_left -= 1

            if len(results) >= total:
                break

            busy = [worker for worker in active if not worker.idle]
            if not busy:
                continue

            ready = connection_wait([worker.conn for worker in busy],
                                    timeout=0.05)
            dead: List[_Worker] = []
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                try:
                    while worker.conn.poll():
                        message = worker.conn.recv()
                        tag = message[0]
                        if tag == "start":
                            worker.current = message[1]
                            worker.started = time.monotonic()
                        elif tag == "done":
                            index, result = message[1], message[2]
                            spec = specs[index]
                            results[index] = ShardResult(
                                index, spec.label, result["ok"],
                                result["payload"], result["error"],
                                result["seconds"], worker=worker.id)
                            worker.done.add(index)
                            worker.current = None
                        elif tag == "idle":
                            worker.chunk = None
                            worker.done = set()
                except (EOFError, OSError):
                    dead.append(worker)

            now = time.monotonic()
            for worker in list(active):
                if worker in dead:
                    continue
                if worker.current is None:
                    # A worker that silently died between shards: its
                    # chunk simply gets requeued.
                    if not worker.idle and not worker.proc.is_alive():
                        dead.append(worker)
                    continue
                timeout = specs[worker.current].timeout
                if timeout is None:
                    timeout = default_timeout
                if timeout is not None and now - worker.started > timeout:
                    index = worker.current
                    worker.proc.kill()
                    reap(worker, "timeout",
                         f"shard exceeded its {timeout:.3f}s timeout "
                         "and its worker was killed")
                    active.remove(worker)
                    dead = [w for w in dead if w is not worker]

            for worker in dead:
                if worker not in active:
                    continue
                worker.proc.join(timeout=1.0)
                exitcode = worker.proc.exitcode
                reap(worker, "crash",
                     f"worker process died (exitcode={exitcode})")
                active.remove(worker)
    finally:
        for worker in active:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in active:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    return [results[index] for index in sorted(results)]
