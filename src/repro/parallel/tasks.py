"""Reference shard tasks: whole-farm runs shaped for campaigns.

A *shard task* is a module-level function a spawn-started worker can
import by name (``"repro.parallel.tasks:streaming_farm_shard"``); it
takes JSON-safe keyword arguments and returns a JSON-safe dict.  The
tasks here are the workloads the parallel benchmark and the parity
tests share; experiments define their own next to the harness they
wrap (see :mod:`repro.experiments.scalability`).

``streaming_farm_shard`` is the canonical one: a complete farm —
gateway, subfarm routers, containment servers, host TCP stacks — under
a streaming workload, returning counters, a telemetry snapshot, and a
determinism digest covering flow logs, counters, upstream trace bytes,
and the metric surface (the same recipe as ``bench_hotpath``).

``detonation_wait`` models the *real-time* cost that dominates
production campaigns — §6.3's multi-hour malware runs and §7.3's 6-10
minute raw-iron reimage cycles are wall-clock time during which the
coordinating process just waits.  The simulation itself runs on a
virtual clock, so the wait is an explicit, clearly-labeled stand-in
for that operational reality; it never affects results or digests.

The ``*_shard`` helpers at the bottom exist for failure-mode tests and
pool smoke checks only.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.core.policy import AllowAll
from repro.farm import Farm, FarmConfig
from repro.net.addresses import IPv4Address
from repro.services.dhcp import DhcpClient

__all__ = [
    "streaming_farm_shard",
    "noop_shard",
    "sleepy_shard",
    "crashing_shard",
    "failing_shard",
]

TARGET_IP = "203.0.113.80"
TARGET_PORT = 80


def _streaming_image(rounds: int, chunk: int = 512):
    """An inmate that opens one connection and ping-pongs ``rounds``
    chunks over it — post-verdict forwarding dominates."""

    def image(host):
        def configured(h):
            def start():
                conn = h.tcp.connect(IPv4Address(TARGET_IP), TARGET_PORT)
                state = {"rounds": 0}

                def on_data(c, data):
                    state["rounds"] += 1
                    if state["rounds"] >= rounds:
                        c.close()
                    else:
                        c.send(b"x" * chunk)

                conn.on_established = lambda c: c.send(b"x" * chunk)
                conn.on_data = on_data

            h.sim.schedule(1.0, start, label="stream-start")

        DhcpClient(host, on_configured=configured).start()

    return image


def _echo_server(host) -> None:
    def on_accept(conn):
        conn.on_data = lambda c, data: c.send(data)
        conn.on_remote_close = lambda c: c.close()

    host.tcp.listen(TARGET_PORT, on_accept)


def streaming_farm_shard(seed: int, subfarms: int = 2, inmates: int = 2,
                         rounds: int = 60, duration: float = 120.0,
                         telemetry: bool = True, journal: bool = False,
                         detonation_wait: float = 0.0) -> dict:
    """One complete farm run: N subfarms of streaming inmates against
    an external echo server, digested deterministically."""
    farm = Farm(FarmConfig(seed=seed, telemetry=telemetry,
                           journal=journal))
    _echo_server(farm.add_external_host("echo", TARGET_IP))
    subs = []
    for index in range(subfarms):
        sub = farm.create_subfarm(f"shard-sub-{index}")
        sub.set_default_policy(AllowAll())
        for _ in range(inmates):
            sub.create_inmate(image_factory=_streaming_image(rounds))
        subs.append(sub)
    farm.run(until=duration)

    digest = hashlib.sha256()
    counters = {}
    flows_created = packets_relayed = 0
    for sub in subs:
        sub_counters = dict(sub.router.counters)
        counters[sub.name] = sub_counters
        flows_created += sub_counters.get("flows_created", 0)
        packets_relayed += sub_counters.get("packets_relayed", 0)
        digest.update(json.dumps({sub.name: sub_counters},
                                 sort_keys=True).encode())
        for entry in sub.router.flow_log:
            digest.update(
                f"{entry.timestamp:.9f}|{entry.vlan}|{entry.verdict}"
                f"|{entry.orig}|{entry.policy}".encode())
    for rec in farm.gateway.upstream_trace.records:
        digest.update(rec.frame.to_bytes())
    # flowtable.* instruments exist only when the fast path is enabled;
    # the shard digest excludes them (matching bench_hotpath.run_farm)
    # so the tracked baselines stay mode-independent.
    snapshot = farm.telemetry_snapshot(include_traces=False)
    for family in ("counters", "gauges"):
        snapshot[family] = {k: v for k, v in snapshot[family].items()
                            if not k.startswith("flowtable.")}
    digest.update(json.dumps(snapshot, sort_keys=True).encode())

    if detonation_wait > 0:
        time.sleep(detonation_wait)

    result = {
        "seed": seed,
        "virtual_seconds": farm.sim.now,
        "metrics": {
            "events": farm.sim.events_processed,
            "flows_created": flows_created,
            "packets_relayed": packets_relayed,
        },
        "counters": counters,
        "telemetry": snapshot,
        "digest": digest.hexdigest(),
    }
    if journal:
        # The journal rides alongside the determinism digest, never
        # inside it: journal=True must not change "digest".
        from repro.obs.journal import journal_digest

        journal_snap = farm.journal_snapshot()
        result["journal"] = journal_snap
        result["journal_digest"] = journal_digest(journal_snap)
    return result


# ----------------------------------------------------------------------
# Failure-mode / smoke tasks (tests and pool diagnostics only)
# ----------------------------------------------------------------------
def noop_shard(seed: int, value: int = 0) -> dict:
    """Instant success — pool plumbing smoke checks."""
    return {"seed": seed, "value": value,
            "digest": hashlib.sha256(f"{seed}:{value}".encode())
            .hexdigest()}


def sleepy_shard(seed: int, wall_seconds: float = 60.0) -> dict:
    """Burn real wall-clock time — shard-timeout tests."""
    time.sleep(wall_seconds)
    return {"seed": seed, "slept": wall_seconds}


def crashing_shard(seed: int, exitcode: int = 134) -> dict:
    """Kill the worker process outright (no exception to catch) —
    crash-isolation tests."""
    import os

    os._exit(exitcode)


def failing_shard(seed: int, message: str = "boom") -> dict:
    """Raise inside the task — structured in-task error tests."""
    raise RuntimeError(message)
