"""Shard execution and the multi-host worker agent.

This module is the *execution* half of ``repro.parallel`` — everything
that runs on the machine that owns the shard, as opposed to the
scheduler (:mod:`repro.parallel.pool`) that decides where shards go.
Three layers share one execution function:

* :func:`execute_spec` — run one shard spec, always returning a
  structured result dict.  The serial fallback calls it in-process;
  every worker process calls it behind a pipe or a socket.
* :func:`pipe_worker_main` — the worker loop over a duplex
  :mod:`multiprocessing` pipe.  ``LocalTransport`` spawns processes
  whose target is this function; the socket agent spawns the *same*
  function behind a relay, so local and remote shards execute through
  byte-identical machinery.
* :func:`serve` / ``python -m repro.parallel.worker`` — the **host
  agent** for multi-host campaigns.  It listens on TCP; every accepted
  connection becomes one worker *slot*: a freshly spawned subprocess
  wired to the connection through a relay thread.  A slot that dies
  mid-shard (crash, OOM kill) only drops its own connection — the
  master sees EOF, fails the in-flight shard, reconnects, and the
  agent spawns a fresh slot.  SSH (or any launcher) only needs to
  start the agent; the wire contract is the same length-prefixed JSON
  either way (see docs/PARALLELISM.md, "Multi-host dispatch").

Every message a worker sends or receives is JSON-safe; the socket
framing lives in :mod:`repro.parallel.transport`.
"""

from __future__ import annotations

import json
import os
import socket as socket_module
import sys
import time
import traceback
from typing import Optional

from repro.parallel.campaign import resolve_task

__all__ = [
    "execute_spec",
    "host_info",
    "pipe_worker_main",
    "serve",
]

# True only inside a worker process.  Worker-process faults
# (repro.faults) behave destructively there — os._exit, a real hang —
# and degrade to structured failures on the serial path so the test
# process itself never dies.
_IN_WORKER = False


def host_info() -> dict:
    """What a worker announces about its host in the ``ready`` frame.

    ``host_cpus``/``sched_cpus`` feed the scheduling-honesty record the
    campaign merge persists per host (docs/PARALLELISM.md): a campaign
    that ran 8 workers on a 1-cpu box should say so next to its
    numbers.
    """
    try:
        sched = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        sched = None
    return {
        "host": socket_module.gethostname(),
        "pid": os.getpid(),
        "host_cpus": os.cpu_count(),
        "sched_cpus": sched,
    }


# ----------------------------------------------------------------------
# Shard execution — shared by the serial path and every worker kind
# ----------------------------------------------------------------------
def execute_spec(spec_dict: dict) -> dict:
    """Run one shard spec; always returns a structured result dict."""
    started = time.perf_counter()

    def failure(kind: str, exc: BaseException) -> dict:
        return {
            "ok": False,
            "payload": None,
            "error": {
                "kind": kind,
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=20),
            },
            "seconds": time.perf_counter() - started,
        }

    fault = spec_dict.get("fault")
    if fault is not None:
        outcome = _apply_worker_fault(fault, started)
        if outcome is not None:
            return outcome

    try:
        fn = resolve_task(spec_dict["task"])
        payload = fn(**spec_dict.get("params", {}))
    except Exception as exc:  # noqa: BLE001 — becomes a structured error
        return failure("error", exc)
    try:
        if not isinstance(payload, dict):
            raise TypeError(
                f"shard task returned {type(payload).__name__}, "
                "expected a JSON-safe dict")
        # The JSON round trip is the wire contract: whatever crosses
        # process boundaries must survive it, so enforce it in both
        # the serial and subprocess paths for identical behaviour.
        payload = json.loads(json.dumps(payload))
    except Exception as exc:  # noqa: BLE001
        return failure("payload", exc)
    return {"ok": True, "payload": payload, "error": None,
            "seconds": time.perf_counter() - started}


def _apply_worker_fault(fault: dict, started: float) -> Optional[dict]:
    """Enact a worker-process fault stamped onto a shard spec.

    In a real worker the crash and hang are genuine (the scheduler's
    crash isolation and timeout machinery must recover); on the serial
    path they degrade to the structured failure the scheduler would
    eventually record, so running with ``workers=1`` stays hermetic.
    """
    kind = fault.get("kind")
    if kind == "worker_crash":
        if _IN_WORKER:
            os._exit(int(fault.get("exitcode", 134)))
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "crash",
                      "message": "injected worker crash (serial path)"},
            "seconds": time.perf_counter() - started,
        }
    if kind == "worker_hang":
        if _IN_WORKER:
            time.sleep(float(fault.get("wall_seconds", 3600.0)))
            return None  # killed long before this on any sane timeout
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "timeout",
                      "message": "injected worker hang (serial path)"},
            "seconds": time.perf_counter() - started,
        }
    if kind == "worker_error":
        return {
            "ok": False,
            "payload": None,
            "error": {"kind": "error",
                      "message": str(fault.get("message",
                                               "injected worker error"))},
            "seconds": time.perf_counter() - started,
        }
    return None


# ----------------------------------------------------------------------
# The pipe worker loop (LocalTransport processes and agent slots)
# ----------------------------------------------------------------------
def pipe_worker_main(conn, worker_id: int) -> None:
    """Worker loop: announce the host, receive chunks of spec dicts,
    announce and run each shard, report results, idle until the next
    chunk or ``stop``."""
    global _IN_WORKER
    _IN_WORKER = True
    try:
        conn.send(("ready", host_info()))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            assert message[0] == "run", message
            for spec_dict in message[1]:
                conn.send(("start", spec_dict["index"]))
                result = execute_spec(spec_dict)
                conn.send(("done", spec_dict["index"], result))
            conn.send(("idle", worker_id))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# The host agent: TCP listener, one spawned slot per connection
# ----------------------------------------------------------------------
def _serve_session(ctx, sock, session_id: int) -> None:
    """Relay one master connection to a freshly spawned worker slot.

    The slot is a real subprocess so a crashing shard kills only the
    slot: its pipe EOFs, the relay closes the socket, and the master's
    crash isolation takes over.  A master that closes the socket
    (timeout kill, campaign end) gets the symmetric treatment — the
    slot process is killed so a hung shard cannot leak.
    """
    from multiprocessing.connection import wait as connection_wait

    from repro.parallel.transport import FrameDecoder, encode_frame

    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(target=pipe_worker_main,
                       args=(child_conn, session_id),
                       name=f"gq-agent-slot-{session_id}",
                       daemon=True)
    proc.start()
    child_conn.close()
    decoder = FrameDecoder()
    try:
        while True:
            ready = connection_wait([sock, parent_conn], timeout=1.0)
            if sock in ready:
                try:
                    data = sock.recv(1 << 16)
                except OSError:
                    break
                if not data:
                    break  # master gone: kill the slot below
                for message in decoder.feed(data):
                    parent_conn.send(tuple(message))
            if parent_conn in ready:
                try:
                    while parent_conn.poll():
                        sock.sendall(encode_frame(parent_conn.recv()))
                except (EOFError, OSError):
                    break  # slot died (or stopped): drop the socket
            if not ready and not proc.is_alive():
                break
    finally:
        try:
            sock.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
        try:
            parent_conn.close()
        except OSError:
            pass
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)


def serve(host: str = "127.0.0.1", port: int = 0,
          max_sessions: Optional[int] = None,
          announce=print) -> None:
    """Run the host agent: accept connections forever (or for
    ``max_sessions``), one spawned worker slot per connection.

    ``port=0`` binds an ephemeral port; the agent announces
    ``gq-worker listening on HOST:PORT`` on stdout either way so a
    launcher (SSH script, :func:`repro.parallel.transport.start_local_agent`,
    a test) can discover the address.
    """
    import multiprocessing as mp
    import threading

    ctx = mp.get_context("spawn")
    listener = socket_module.socket(socket_module.AF_INET,
                                    socket_module.SOCK_STREAM)
    listener.setsockopt(socket_module.SOL_SOCKET,
                        socket_module.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen()
    bound_host, bound_port = listener.getsockname()[:2]
    announce(f"gq-worker listening on {bound_host}:{bound_port}",
             flush=True)
    sessions = 0
    threads = []
    try:
        while max_sessions is None or sessions < max_sessions:
            conn, _addr = listener.accept()
            thread = threading.Thread(
                target=_serve_session, args=(ctx, conn, sessions),
                name=f"gq-agent-session-{sessions}", daemon=True)
            thread.start()
            threads.append(thread)
            sessions += 1
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
        for thread in threads:
            thread.join(timeout=5.0)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.worker",
        description="GQ campaign worker agent: serves shard execution "
                    "slots over TCP (one spawned subprocess per "
                    "connection; see docs/PARALLELISM.md)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to listen on (default 127.0.0.1; "
                             "use 0.0.0.0 behind a trusted network "
                             "only — frames are not authenticated)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, announced on "
                             "stdout)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="exit after serving this many "
                             "connections (default: serve forever)")
    args = parser.parse_args(argv)
    serve(host=args.host, port=args.port,
          max_sessions=args.max_sessions)
    return 0


if __name__ == "__main__":
    sys.exit(main())
