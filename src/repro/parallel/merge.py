"""Ordered merge of per-shard results into one campaign result.

The merge is the determinism anchor: shard results may arrive in any
order from any number of workers, but the merge always

* orders shards by index,
* folds per-shard determinism digests into one **campaign digest**
  (sha256 over ``"index:shard_digest"`` lines in index order), and
* merges shard telemetry snapshots with a ``shard=N`` label on every
  metric identity (:func:`repro.obs.merge.merge_snapshots`),

so a parallel run of a campaign is byte-identical to a serial run of
the same spec — the property the benchmark and the parity tests
assert.

Shard payload conventions (all optional):

``digest``
    the shard's own determinism digest (hex string); payloads without
    one are digested canonically (sorted-key JSON).
``metrics``
    a flat ``{name: number}`` dict; merged by summation into
    ``merged["metrics"]``.
``telemetry``
    a :func:`repro.obs.export.snapshot` dict; merged shard-labeled
    into ``merged["telemetry"]``.
``journal``
    a :meth:`repro.obs.journal.Journal.snapshot` dict; merged
    shard-labeled (:func:`repro.obs.merge.merge_journals`) into
    ``merged["journal"]``, with the merged journal's digest in
    ``merged["journal_digest"]``.
``certificate``
    an isolation certificate (schema ``gq.verify/1``); per-shard
    certificates merge deterministically
    (:func:`repro.verify.merge_certificates` — shards sorted by
    label, grants deduplicated) into a campaign certificate under
    ``merged["certificate"]``.  The merge is order-independent, so a
    serial and a parallel run of the same spec produce the same
    campaign-certificate digest.  Like ``hosts``/``scheduler``, the
    merged certificate stays outside the campaign digest (shard
    certificates already ride inside shard payloads).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

__all__ = ["CampaignResult", "campaign_digest", "merge_results"]


def _payload_digest(payload: dict) -> str:
    digest = payload.get("digest")
    if isinstance(digest, str) and digest:
        return digest
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def campaign_digest(shard_results) -> str:
    """Fold per-shard digests, in index order, into one hex digest."""
    h = hashlib.sha256()
    for result in sorted(shard_results, key=lambda r: r.index):
        if result.ok:
            h.update(f"{result.index}:{_payload_digest(result.payload)}\n"
                     .encode())
        else:
            kind = (result.error or {}).get("kind", "failed")
            h.update(f"{result.index}:failed:{kind}\n".encode())
    return h.hexdigest()


class CampaignResult:
    """Everything one campaign run produced, merge included."""

    def __init__(self, name: str, spec_digest: str,
                 shard_results: List, workers: int,
                 wall_seconds: float, merged: dict) -> None:
        self.name = name
        self.spec_digest = spec_digest
        self.shard_results = sorted(shard_results, key=lambda r: r.index)
        self.workers = workers
        self.wall_seconds = wall_seconds
        self.merged = merged
        self.digest = campaign_digest(self.shard_results)

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.shard_results)

    @property
    def failures(self) -> List[dict]:
        return [
            {"shard": result.index, "label": result.label,
             **(result.error or {"kind": "unknown"})}
            for result in self.shard_results if not result.ok
        ]

    def payloads(self) -> List[Optional[dict]]:
        """Per-shard payloads in index order (``None`` for failures)."""
        return [result.payload for result in self.shard_results]

    def payload_for(self, index: int) -> Optional[dict]:
        for result in self.shard_results:
            if result.index == index:
                return result.payload
        raise KeyError(index)

    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "spec_digest": self.spec_digest,
            "digest": self.digest,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 4),
            "ok": self.ok,
            "failures": self.failures,
            "merged": self.merged,
            "shards": [result.to_dict() for result in self.shard_results],
        }

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.failures)} failed"
        return (f"<CampaignResult {self.name!r} "
                f"shards={len(self.shard_results)} {state} "
                f"workers={self.workers}>")


def merge_results(campaign, shard_results, workers: int,
                  wall_seconds: float,
                  hosts: Optional[Dict[str, dict]] = None,
                  scheduler_stats: Optional[dict] = None
                  ) -> CampaignResult:
    """Aggregate shard payloads into the campaign-level view.

    ``hosts`` is the scheduling-honesty record: per worker host, the
    ``host_cpus``/``sched_cpus`` its workers reported in their
    ``ready`` frames plus how many workers ran there — persisted under
    ``merged["hosts"]`` so a result file states the hardware its
    wall-clock numbers were measured on.  ``scheduler_stats`` (the
    ``parallel.*`` dispatch/steal counters) lands under
    ``merged["scheduler"]``.  Neither enters the campaign digest: the
    digest covers shard payloads only, so it stays byte-identical
    across serial, local, and socket runs of the same spec.
    """
    merged: dict = {"shards_ok": 0, "shards_failed": 0}
    metrics: Dict[str, float] = {}
    snapshots = []
    snapshot_labels = []
    snapshot_sources = []
    journals = []
    journal_labels = []
    journal_sources = []
    certificates = []
    for result in sorted(shard_results, key=lambda r: r.index):
        if not result.ok:
            merged["shards_failed"] += 1
            continue
        merged["shards_ok"] += 1
        payload = result.payload or {}
        source = f"shard {result.index}" + (
            f" @ {result.host}" if getattr(result, "host", None) else "")
        for name, value in (payload.get("metrics") or {}).items():
            if isinstance(value, (int, float)):
                metrics[name] = metrics.get(name, 0) + value
        telemetry = payload.get("telemetry")
        if isinstance(telemetry, dict):
            snapshots.append(telemetry)
            snapshot_labels.append({"shard": str(result.index)})
            snapshot_sources.append(source)
        journal = payload.get("journal")
        if isinstance(journal, dict):
            journals.append(journal)
            journal_labels.append({"shard": str(result.index)})
            journal_sources.append(source)
        certificate = payload.get("certificate")
        if isinstance(certificate, dict):
            certificates.append(certificate)
    merged["metrics"] = dict(sorted(metrics.items()))
    if certificates:
        from repro.verify import merge_certificates

        merged["certificate"] = merge_certificates(
            certificates, label=campaign.name)
    if hosts:
        merged["hosts"] = {host: dict(info)
                           for host, info in sorted(hosts.items())}
    if scheduler_stats:
        merged["scheduler"] = scheduler_stats
    if snapshots:
        from repro.obs.merge import merge_snapshots

        merged["telemetry"] = merge_snapshots(snapshots,
                                              labels=snapshot_labels,
                                              sources=snapshot_sources)
    if journals:
        from repro.obs.journal import journal_digest
        from repro.obs.merge import merge_journals

        merged["journal"] = merge_journals(journals,
                                           labels=journal_labels,
                                           sources=journal_sources)
        merged["journal_digest"] = journal_digest(merged["journal"])
    return CampaignResult(campaign.name, campaign.spec_digest(),
                          list(shard_results), workers, wall_seconds,
                          merged)
